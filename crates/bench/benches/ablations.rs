//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Besides timing, each ablation prints a one-line *quality* comparison
//! (test time achieved) before benchmarking, so `cargo bench` output also
//! documents why the chosen design wins:
//!
//! 1. scheduling order — the paper's longest-first greedy vs. identity and
//!    shortest-first orders;
//! 2. `m` policy — searching the width class for the best `m` (the paper's
//!    point in Fig. 2) vs. pinning `m` to the class maximum;
//! 3. encoder modes — full selective encoding vs. single-bit mode only;
//! 4. architecture refinement — hill-climbing on vs. off.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use selenc::{cube_cost_policy, evaluate_point, SliceCode};
use tam::{
    anneal_architecture, greedy_schedule, longest_first_order, optimize_architecture,
    schedule_in_order, AnnealOptions, ArchitectureOptions, CostModel,
};
use tdcsoc::{CompressionMode, DecisionConfig, DecisionTable};
use wrapper::design_wrapper;

fn scheduling_cost_model() -> CostModel {
    let soc = bench::system1();
    let cfg = DecisionConfig {
        pattern_sample: Some(8),
        m_candidates: 8,
    };
    let mut cost = CostModel::new(24);
    for core in soc.cores() {
        let t = DecisionTable::build(core, CompressionMode::PerCore, 24, &cfg);
        cost.push_core(core.name(), t.time_row());
    }
    cost
}

fn ablate_order(c: &mut Criterion) {
    let cost = scheduling_cost_model();
    let widths = [8u32, 8, 8];
    let n = cost.core_count();
    let identity: Vec<usize> = (0..n).collect();
    let mut shortest = longest_first_order(&cost, &widths);
    shortest.reverse();

    let paper = greedy_schedule(&cost, &widths).unwrap().makespan();
    let ident = schedule_in_order(&cost, &widths, &identity)
        .unwrap()
        .makespan();
    let worst = schedule_in_order(&cost, &widths, &shortest)
        .unwrap()
        .makespan();
    println!("[ablation:order] longest-first {paper} | identity {ident} | shortest-first {worst}");
    assert!(
        paper <= ident.max(worst),
        "the paper's order should not lose"
    );

    let mut g = c.benchmark_group("ablation_order");
    g.bench_function("longest_first", |b| {
        b.iter(|| greedy_schedule(black_box(&cost), &widths).unwrap())
    });
    g.bench_function("identity_order", |b| {
        b.iter(|| schedule_in_order(black_box(&cost), &widths, &identity).unwrap())
    });
    g.finish();
}

fn ablate_m_policy(c: &mut Criterion) {
    let core = bench::ckt7();
    // Best-m search vs. max-m pin at w = 10 (the Fig. 2 insight).
    let class = SliceCode::feasible_chains(10);
    let max_m = (*class.end()).min(core.max_wrapper_chains());
    let pinned = evaluate_point(&core, max_m, Some(16)).expect("max m realizable");
    let searched = class
        .clone()
        .step_by(4)
        .filter_map(|m| evaluate_point(&core, m, Some(16)))
        .min_by_key(|c| c.test_time)
        .expect("class nonempty");
    println!(
        "[ablation:m-policy] best-m {} vs max-m {} ({:.1}% worse)",
        searched.test_time,
        pinned.test_time,
        100.0 * (pinned.test_time as f64 / searched.test_time as f64 - 1.0)
    );
    assert!(searched.test_time <= pinned.test_time);

    let mut g = c.benchmark_group("ablation_m_policy");
    g.sample_size(10);
    g.bench_function("pin_max_m", |b| {
        b.iter(|| evaluate_point(black_box(&core), max_m, Some(16)))
    });
    g.bench_function("search_class", |b| {
        b.iter(|| {
            class
                .clone()
                .step_by(16)
                .filter_map(|m| evaluate_point(black_box(&core), m, Some(8)))
                .min_by_key(|c| c.test_time)
        })
    });
    g.finish();
}

fn ablate_group_copy(c: &mut Criterion) {
    let core = bench::small_core(3_000, 20, 0.2);
    let design = design_wrapper(&core, 200);
    let code = SliceCode::for_chains(design.chain_count());
    let ts = core.test_set().unwrap();
    let full: u64 = ts
        .iter()
        .map(|p| cube_cost_policy(code, &design, p, true))
        .sum();
    let single: u64 = ts
        .iter()
        .map(|p| cube_cost_policy(code, &design, p, false))
        .sum();
    println!(
        "[ablation:group-copy] full encoder {full} codewords vs single-bit-only {single} \
         ({:.1}% saved by group-copy mode)",
        100.0 * (1.0 - full as f64 / single as f64)
    );
    assert!(full <= single);

    let mut g = c.benchmark_group("ablation_group_copy");
    g.sample_size(10);
    let cube = ts.pattern(0).unwrap();
    g.bench_function("full_encoder", |b| {
        b.iter(|| cube_cost_policy(code, black_box(&design), cube, true))
    });
    g.bench_function("single_bit_only", |b| {
        b.iter(|| cube_cost_policy(code, black_box(&design), cube, false))
    });
    g.finish();
}

fn ablate_refinement(c: &mut Criterion) {
    let cost = scheduling_cost_model();
    let on = ArchitectureOptions::default();
    let off = ArchitectureOptions {
        refine_steps: 0,
        ..Default::default()
    };
    let with = optimize_architecture(&cost, 24, &on).unwrap().test_time;
    let without = optimize_architecture(&cost, 24, &off).unwrap().test_time;
    println!("[ablation:refinement] hill-climb on {with} vs off {without}");
    assert!(with <= without);

    let mut g = c.benchmark_group("ablation_refinement");
    g.bench_function("refine_on", |b| {
        b.iter(|| optimize_architecture(black_box(&cost), 24, &on).unwrap())
    });
    g.bench_function("refine_off", |b| {
        b.iter(|| optimize_architecture(black_box(&cost), 24, &off).unwrap())
    });
    g.finish();
}

fn ablate_search_strategy(c: &mut Criterion) {
    let cost = scheduling_cost_model();
    let hill = optimize_architecture(&cost, 24, &ArchitectureOptions::default())
        .unwrap()
        .test_time;
    let sa = anneal_architecture(&cost, 24, &AnnealOptions::default())
        .unwrap()
        .test_time;
    println!("[ablation:search] hill-climb {hill} vs simulated annealing {sa}");

    let mut g = c.benchmark_group("ablation_search");
    g.sample_size(10);
    g.bench_function("hill_climb", |b| {
        b.iter(|| optimize_architecture(black_box(&cost), 24, &ArchitectureOptions::default()))
    });
    g.bench_function("anneal_500", |b| {
        let opts = AnnealOptions {
            iterations: 500,
            ..Default::default()
        };
        b.iter(|| anneal_architecture(black_box(&cost), 24, &opts))
    });
    g.finish();
}

fn ablate_compaction(c: &mut Criterion) {
    // The compaction-vs-compression tension: static compaction shrinks the
    // pattern count but raises care density, hurting selective encoding.
    use soc_model::compaction::compact;
    let core = bench::small_core(2_000, 60, 0.02);
    let ts = core.test_set().unwrap();
    let compacted = compact(ts);
    let design = design_wrapper(&core, 128);
    let code = SliceCode::for_chains(design.chain_count());
    let raw_cw: u64 = ts
        .iter()
        .map(|p| cube_cost_policy(code, &design, p, true))
        .sum();
    let cmp_cw: u64 = compacted
        .test_set
        .iter()
        .map(|p| cube_cost_policy(code, &design, p, true))
        .sum();
    println!(
        "[ablation:compaction] {} patterns → {} after compaction; codewords {} → {}          (density {:.3} → {:.3})",
        ts.pattern_count(),
        compacted.test_set.pattern_count(),
        raw_cw,
        cmp_cw,
        ts.care_density(),
        compacted.test_set.care_density(),
    );

    let mut g = c.benchmark_group("ablation_compaction");
    g.sample_size(10);
    g.bench_function("compact_60x2k", |b| b.iter(|| compact(black_box(ts))));
    g.finish();
}

criterion_group!(
    benches,
    ablate_order,
    ablate_m_policy,
    ablate_group_copy,
    ablate_refinement,
    ablate_search_strategy,
    ablate_compaction
);
criterion_main!(benches);
