//! Figure 2 bench: cost of evaluating one (w, m) operating point — the
//! inner loop of the per-core lookup-table builder.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use selenc::evaluate_point;

fn bench(c: &mut Criterion) {
    let core = bench::ckt7();
    let mut g = c.benchmark_group("fig2");
    g.sample_size(20);
    for m in [128u32, 192, 255] {
        g.bench_function(format!("evaluate_point_m{m}"), |b| {
            b.iter(|| evaluate_point(black_box(&core), black_box(m), Some(16)))
        });
    }
    // The full Fig. 2 sweep at reduced granularity.
    g.sample_size(10);
    g.bench_function("sweep_w10_stride8", |b| {
        b.iter(|| {
            (128..=255u32)
                .step_by(8)
                .filter_map(|m| evaluate_point(&core, m, Some(8)))
                .map(|c| c.test_time)
                .min()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
