//! Figure 3 bench: building a complete per-core (w, m) lookup table —
//! the paper's §3 steps 1–2 for one core.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use selenc::{CoreProfile, ProfileConfig};

fn bench(c: &mut Criterion) {
    let big = bench::ckt7();
    let small = bench::small_core(2_000, 40, 0.03);
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("profile_ckt7_sampled", |b| {
        b.iter(|| {
            CoreProfile::build(
                black_box(&big),
                &ProfileConfig::new(12).pattern_sample(8).m_candidates(8),
            )
        })
    });
    g.bench_function("profile_small_exact", |b| {
        b.iter(|| CoreProfile::build(black_box(&small), &ProfileConfig::new(10)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
