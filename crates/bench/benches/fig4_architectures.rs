//! Figure 4 bench: planning the same industrial design under the three
//! architecture styles (no TDC / decompressor per TAM / per core).

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tdcsoc::{PlanRequest, Planner};

fn bench(c: &mut Criterion) {
    let soc = bench::fig4_soc();
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    let req31 = bench::bench_request(31);
    g.bench_function("plan_no_tdc", |b| {
        b.iter(|| Planner::no_tdc().plan(black_box(&soc), &req31).unwrap())
    });
    let ate = PlanRequest::ate_channels(31).with_decisions(req31.decisions.clone());
    g.bench_function("plan_per_tam", |b| {
        b.iter(|| Planner::per_tam_tdc().plan(black_box(&soc), &ate).unwrap())
    });
    g.bench_function("plan_per_core", |b| {
        b.iter(|| Planner::per_core_tdc().plan(black_box(&soc), &ate).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
