//! Substrate micro-benchmarks: the kernels every planning run is built
//! from. Useful for tracking performance regressions independently of the
//! experiment-level benches.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fdr::{compress_fdr, encode_run, Bits};
use lfsr::{Gf2Solver, Gf2Vec};
use selenc::{
    cube_cost, cube_cost_policy, cube_cost_scalar, CoreProfile, EvalCache, ProfileConfig, SliceCode,
};
use soc_model::{CubeSynthesis, SplitMix64, TritVec};
use wrapper::design_wrapper;

fn bench_trit_ops(c: &mut Criterion) {
    let core = bench::small_core(5_000, 1, 0.1);
    let cube = core.test_set().unwrap().pattern(0).unwrap().clone();
    let mut g = c.benchmark_group("kernel_trits");
    g.bench_function("count_cares_5k", |b| {
        b.iter(|| black_box(&cube).count_cares())
    });
    g.bench_function("parse_display_roundtrip_1k", |b| {
        let s: String = cube.iter().take(1000).map(|t| t.to_char()).collect();
        b.iter(|| s.parse::<TritVec>().unwrap().to_string())
    });
    g.finish();
}

fn bench_cube_cost(c: &mut Criterion) {
    let core = bench::small_core(10_000, 1, 0.02);
    let cube = core.test_set().unwrap().pattern(0).unwrap().clone();
    let mut g = c.benchmark_group("kernel_cube_cost");
    for m in [64u32, 256] {
        let design = design_wrapper(&core, m);
        let code = SliceCode::for_chains(design.chain_count());
        g.bench_function(format!("cost_10k_cells_m{m}"), |b| {
            b.iter(|| cube_cost(code, black_box(&design), &cube))
        });
    }
    g.finish();
}

fn bench_cube_cost_packed_vs_scalar(c: &mut Criterion) {
    // Head-to-head of the word-parallel kernel against the per-symbol
    // reference it is property-tested against; the ratio is the kernel's
    // whole reason to exist.
    let core = bench::small_core(10_000, 1, 0.02);
    let cube = core.test_set().unwrap().pattern(0).unwrap().clone();
    let mut g = c.benchmark_group("kernel_cost_packed_vs_scalar");
    for m in [64u32, 256] {
        let design = design_wrapper(&core, m);
        let code = SliceCode::for_chains(design.chain_count());
        g.bench_function(format!("packed_10k_m{m}"), |b| {
            b.iter(|| cube_cost_policy(code, black_box(&design), &cube, true))
        });
        g.bench_function(format!("scalar_10k_m{m}"), |b| {
            b.iter(|| cube_cost_scalar(code, black_box(&design), &cube, true))
        });
    }
    g.finish();
}

fn bench_profile_memoized_vs_cold(c: &mut Criterion) {
    // The profile builder evaluates overlapping (m, sample) points across
    // widths; the memoized path pays for each point once per core.
    let core = bench::small_core(6_000, 4, 0.05);
    let cfg = ProfileConfig::new(12).m_candidates(6);
    let mut g = c.benchmark_group("kernel_profile_memo");
    g.bench_function("cold_build_w12", |b| {
        b.iter(|| CoreProfile::build(black_box(&core), &cfg))
    });
    g.bench_function("warm_build_w12", |b| {
        let cache = EvalCache::new(&core);
        CoreProfile::build_cached(&cache, &cfg); // prime
        b.iter(|| CoreProfile::build_cached(black_box(&cache), &cfg))
    });
    g.finish();
}

fn bench_gf2(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_gf2");
    g.bench_function("solve_200x180", |b| {
        b.iter(|| {
            let mut rng = SplitMix64::new(9);
            let mut solver = Gf2Solver::new(200);
            for _ in 0..180 {
                let mut row = Gf2Vec::zero(200);
                for j in 0..200 {
                    if rng.next_bool(0.5) {
                        row.set(j, true);
                    }
                }
                let _ = solver.add_constraint(row, rng.next_bool(0.5));
            }
            solver.solution()
        })
    });
    g.finish();
}

fn bench_fdr(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_fdr");
    g.bench_function("encode_1k_runs", |b| {
        b.iter(|| {
            let mut bits = Bits::new();
            for i in 0..1000u64 {
                encode_run(black_box(i % 97), &mut bits);
            }
            bits.len()
        })
    });
    let core = bench::small_core(8_000, 4, 0.03);
    g.bench_function("compress_core_8k_cells", |b| {
        b.iter(|| compress_fdr(black_box(&core), 8, None))
    });
    g.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_generator");
    let core = soc_model::Core::builder("g")
        .inputs(50)
        .flexible_cells(20_000, 256)
        .pattern_count(10)
        .care_density(0.02)
        .build()
        .unwrap();
    g.bench_function("synthesize_200k_trits", |b| {
        b.iter(|| CubeSynthesis::new(0.02).synthesize(black_box(&core), 3))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_trit_ops,
    bench_cube_cost,
    bench_cube_cost_packed_vs_scalar,
    bench_profile_memoized_vs_cold,
    bench_gf2,
    bench_fdr,
    bench_generator
);
criterion_main!(benches);
