//! Table 1 bench: ATE-channel-constrained planning on d695 for the
//! proposed method and both comparison baselines.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tdcsoc::{PlanRequest, Planner};

fn bench(c: &mut Criterion) {
    let soc = bench::d695();
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    for w in [16u32, 32] {
        let req =
            PlanRequest::ate_channels(w).with_decisions(bench::bench_request(w).decisions.clone());
        g.bench_function(format!("per_core_W{w}"), |b| {
            b.iter(|| Planner::per_core_tdc().plan(black_box(&soc), &req).unwrap())
        });
        g.bench_function(format!("per_tam_W{w}"), |b| {
            b.iter(|| Planner::per_tam_tdc().plan(black_box(&soc), &req).unwrap())
        });
        g.bench_function(format!("fixed4_W{w}"), |b| {
            b.iter(|| {
                Planner::fixed_width_tdc(4)
                    .plan(black_box(&soc), &req)
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
