//! Table 2 bench: TAM-width-constrained planning on d695, including the
//! LFSR-reseeding baseline (GF(2) solving dominates its cost).

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tdcsoc::{DecisionConfig, PlanRequest, Planner};

fn bench(c: &mut Criterion) {
    let soc = bench::d695();
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    let cfg = DecisionConfig {
        pattern_sample: Some(8),
        m_candidates: 8,
    };
    for w in [16u32, 32] {
        let req = PlanRequest::tam_width(w).with_decisions(cfg.clone());
        g.bench_function(format!("per_core_W{w}"), |b| {
            b.iter(|| Planner::per_core_tdc().plan(black_box(&soc), &req).unwrap())
        });
        g.bench_function(format!("per_tam_internal_W{w}"), |b| {
            b.iter(|| Planner::per_tam_tdc().plan(black_box(&soc), &req).unwrap())
        });
    }
    // Reseeding is far heavier; bench it once at the narrow budget.
    let req16 = PlanRequest::tam_width(16).with_decisions(DecisionConfig {
        pattern_sample: Some(4),
        m_candidates: 4,
    });
    g.bench_function("reseeding_W16", |b| {
        b.iter(|| {
            Planner::reseeding_tdc()
                .plan(black_box(&soc), &req16)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
