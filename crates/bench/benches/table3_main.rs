//! Table 3 bench: the headline with-vs-without-TDC planning runs on an
//! industrial-like SOC (the paper's "CPU time" columns).

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tdcsoc::Planner;

fn bench(c: &mut Criterion) {
    let soc = bench::system1();
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    for w in [16u32, 32] {
        let req = bench::bench_request(w);
        g.bench_function(format!("no_tdc_W{w}"), |b| {
            b.iter(|| Planner::no_tdc().plan(black_box(&soc), &req).unwrap())
        });
        g.bench_function(format!("per_core_W{w}"), |b| {
            b.iter(|| Planner::per_core_tdc().plan(black_box(&soc), &req).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
