//! Shared fixtures for the benchmark harness.
//!
//! Every table and figure of the paper has a matching Criterion bench in
//! `benches/`; this crate hosts the workload constructors they share. The
//! printable experiment rows themselves come from the `fig*`/`table*`
//! binaries of the root package — the benches measure the *cost* of
//! producing them (the paper's "CPU time" columns).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use soc_model::benchmarks::Design;
use soc_model::generator::synthesize_missing_test_sets;
use soc_model::{benchmarks, Core, Soc};
use tdcsoc::{DecisionConfig, PlanRequest};

/// The paper's evaluation seed: all workloads in the benches derive from
/// it so runs are comparable.
pub const SEED: u64 = 2008;

/// ckt-7 with cubes attached (the Figs. 2–3 subject).
pub fn ckt7() -> Core {
    let mut soc = Soc::new("bench", vec![benchmarks::ckt(7)]);
    synthesize_missing_test_sets(&mut soc, SEED);
    soc.cores_mut()[0].clone()
}

/// A scaled-down industrial-like core for fast micro-benches.
pub fn small_core(cells: u32, patterns: u32, density: f64) -> Core {
    let mut core = Core::builder("small")
        .inputs(24)
        .outputs(24)
        .flexible_cells(cells, 512)
        .pattern_count(patterns)
        .care_density(density)
        .build()
        .expect("valid core");
    let cubes = soc_model::CubeSynthesis::new(density).synthesize(&core, SEED);
    core.attach_test_set(cubes).expect("shape matches");
    core
}

/// d695 with cubes.
pub fn d695() -> Soc {
    Design::D695.build_with_cubes(SEED)
}

/// System1 with cubes.
pub fn system1() -> Soc {
    Design::System1.build_with_cubes(SEED)
}

/// The Fig. 4 four-core industrial design.
pub fn fig4_soc() -> Soc {
    let mut soc = Soc::new(
        "fig4",
        vec![
            benchmarks::ckt(1),
            benchmarks::ckt(9),
            benchmarks::ckt(11),
            benchmarks::ckt(16),
        ],
    );
    synthesize_missing_test_sets(&mut soc, SEED);
    soc
}

/// The evaluation fidelity used by all benches (sampled, bounded search),
/// matching the binaries' settings closely enough for comparable times.
pub fn bench_request(width: u32) -> PlanRequest {
    PlanRequest::tam_width(width).with_decisions(DecisionConfig {
        pattern_sample: Some(16),
        m_candidates: 12,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert_eq!(ckt7().name(), "ckt-7");
        assert_eq!(d695().core_count(), 10);
        assert_eq!(system1().core_count(), 6);
        assert_eq!(fig4_soc().core_count(), 4);
        assert!(small_core(500, 10, 0.1).test_set().is_some());
    }
}
