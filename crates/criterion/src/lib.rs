//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of the criterion API the workspace's benches use:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark runs a short
//! warm-up, then `sample_size` timed samples, and prints the per-sample
//! mean. There is no statistical analysis, HTML report, or CLI parsing —
//! the goal is that `cargo bench` keeps working offline and reports
//! stable, comparable wall-clock numbers.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its mean sample time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        // Warm-up sample, discarded.
        f(&mut bencher);
        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            bencher.iterations = 0;
            f(&mut bencher);
            total += bencher.elapsed;
            iterations += bencher.iterations;
        }
        let mean = if iterations == 0 {
            Duration::ZERO
        } else {
            total / u32::try_from(iterations.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
        };
        println!(
            "{}/{id}: {mean:?} per iteration ({iterations} iterations)",
            self.name
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, preventing its result from being optimized away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // The vendored benchmark shim is measurement code: timing the
        // routine is its whole job.
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Bundles benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
