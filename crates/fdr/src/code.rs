//! The FDR (frequency-directed run-length) code of Chandra & Chakrabarty.
//!
//! Scan cubes are mostly-0 once don't-cares are 0-filled, so the stream is
//! a sequence of 0-runs, each terminated by a 1. FDR assigns short
//! codewords to short runs: group `A_k` covers run lengths
//! `2^k − 2 ..= 2^(k+1) − 3` and encodes them in `2k` bits — a `(k−1)`-one
//! prefix, a `0` separator, and a `k`-bit offset.
//!
//! | group | run lengths | codeword |
//! |-------|-------------|----------|
//! | A₁    | 0, 1        | `0` + 1 offset bit |
//! | A₂    | 2 … 5       | `10` + 2 offset bits |
//! | A₃    | 6 … 13      | `110` + 3 offset bits |
//! | A₄    | 14 … 29     | `1110` + 4 offset bits |

/// A growable bit string (MSB-first append order).
///
/// # Examples
///
/// ```
/// use fdr::Bits;
///
/// let mut b = Bits::new();
/// b.push(true);
/// b.push(false);
/// b.push(true);
/// assert_eq!(b.len(), 3);
/// assert_eq!(b.get(0), Some(true));
/// assert_eq!(b.to_string(), "101");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bits {
    words: Vec<u64>,
    len: usize,
}

impl Bits {
    /// An empty bit string.
    pub fn new() -> Self {
        Bits::default()
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if bit {
            *self.words.last_mut().expect("just ensured") |= 1 << (self.len % 64);
        }
        self.len += 1;
    }

    /// The bit at `idx`, or `None` past the end.
    pub fn get(&self, idx: usize) -> Option<bool> {
        (idx < self.len).then(|| self.words[idx / 64] >> (idx % 64) & 1 == 1)
    }

    /// Iterates over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(|i| self.get(i).expect("index in range"))
    }
}

impl std::fmt::Display for Bits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.iter() {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for Bits {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut b = Bits::new();
        for bit in iter {
            b.push(bit);
        }
        b
    }
}

/// The FDR group index `k` for a run of `length` zeros:
/// the unique `k ≥ 1` with `2^k − 2 ≤ length ≤ 2^(k+1) − 3`.
pub fn group_of(length: u64) -> u32 {
    // length + 2 ∈ [2^k, 2^(k+1) − 1] → k = floor(log2(length + 2)).
    (length + 2).ilog2()
}

/// Codeword length (in bits) for a run of `length` zeros: `2k`.
pub fn codeword_len(length: u64) -> u64 {
    2 * u64::from(group_of(length))
}

/// Appends the FDR codeword for a run of `length` zeros to `out`.
pub fn encode_run(length: u64, out: &mut Bits) {
    let k = group_of(length);
    let offset = length - ((1u64 << k) - 2);
    debug_assert!(offset < (1 << k));
    for _ in 0..k - 1 {
        out.push(true);
    }
    out.push(false);
    for i in (0..k).rev() {
        out.push(offset >> i & 1 == 1);
    }
}

/// Streaming FDR decoder: feed bits, collect decoded runs.
#[derive(Debug, Clone, Default)]
pub struct RunDecoder {
    ones: u32,
    tail: Option<(u32, u32, u64)>, // (k, bits read, accumulator)
}

impl RunDecoder {
    /// A fresh decoder at a codeword boundary.
    pub fn new() -> Self {
        RunDecoder::default()
    }

    /// Consumes one bit; returns a decoded run length when a codeword
    /// completes.
    pub fn feed(&mut self, bit: bool) -> Option<u64> {
        match &mut self.tail {
            None => {
                if bit {
                    self.ones += 1;
                    None
                } else {
                    let k = self.ones + 1;
                    self.ones = 0;
                    self.tail = Some((k, 0, 0));
                    None
                }
            }
            Some((k, read, acc)) => {
                *acc = (*acc << 1) | u64::from(bit);
                *read += 1;
                if read == k {
                    let length = ((1u64 << *k) - 2) + *acc;
                    self.tail = None;
                    Some(length)
                } else {
                    None
                }
            }
        }
    }

    /// Returns `true` at a codeword boundary (safe stream end).
    pub fn is_idle(&self) -> bool {
        self.ones == 0 && self.tail.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_match_the_published_table() {
        for (len, k) in [
            (0u64, 1u32),
            (1, 1),
            (2, 2),
            (5, 2),
            (6, 3),
            (13, 3),
            (14, 4),
            (29, 4),
            (30, 5),
        ] {
            assert_eq!(group_of(len), k, "run {len}");
            assert_eq!(codeword_len(len), 2 * u64::from(k));
        }
    }

    #[test]
    fn known_codewords() {
        let encode = |len: u64| {
            let mut b = Bits::new();
            encode_run(len, &mut b);
            b.to_string()
        };
        assert_eq!(encode(0), "00");
        assert_eq!(encode(1), "01");
        assert_eq!(encode(2), "1000");
        assert_eq!(encode(5), "1011");
        assert_eq!(encode(6), "110000");
        assert_eq!(encode(13), "110111");
    }

    #[test]
    fn roundtrip_all_small_runs() {
        for len in 0..2000u64 {
            let mut bits = Bits::new();
            encode_run(len, &mut bits);
            let mut dec = RunDecoder::new();
            let mut out = None;
            for b in bits.iter() {
                assert!(out.is_none(), "decoded early at run {len}");
                out = dec.feed(b);
            }
            assert_eq!(out, Some(len));
            assert!(dec.is_idle());
        }
    }

    #[test]
    fn roundtrip_concatenated_runs() {
        let runs = [0u64, 7, 1, 100, 3, 42, 0, 0, 999];
        let mut bits = Bits::new();
        for &r in &runs {
            encode_run(r, &mut bits);
        }
        let mut dec = RunDecoder::new();
        let decoded: Vec<u64> = bits.iter().filter_map(|b| dec.feed(b)).collect();
        assert_eq!(decoded, runs);
        assert!(dec.is_idle());
    }

    #[test]
    fn short_runs_get_short_codewords() {
        assert!(codeword_len(0) < codeword_len(100));
        assert_eq!(codeword_len(1), 2);
        // Long runs still compress: 1000 zeros in 2·9 = 18 bits.
        assert!(codeword_len(1000) <= 20);
    }

    #[test]
    fn bits_container_basics() {
        let b: Bits = [true, false, true, true].into_iter().collect();
        assert_eq!(b.len(), 4);
        assert_eq!(b.get(3), Some(true));
        assert_eq!(b.get(4), None);
        assert_eq!(b.to_string(), "1011");
        let long: Bits = (0..150).map(|i| i % 3 == 0).collect();
        assert_eq!(long.len(), 150);
        assert_eq!(long.get(147), Some(true));
        assert_eq!(long.get(148), Some(false));
    }
}
