//! Core-level FDR compression: one serial run-length decompressor per TAM
//! wire (the architecture class of Gonciari & Al-Hashimi's
//! compression-driven TAM design, the paper's reference [10]).
//!
//! A core on a `w`-wire TAM gets a wrapper with `m = w` chains; each
//! wire's serial load stream (don't-cares 0-filled) is FDR-encoded
//! independently. All wires shift concurrently, so each pattern costs the
//! *longest* of its per-wire codeword streams, and the tester stores the
//! *sum*.

use soc_model::{Core, Trit};
use wrapper::{design_wrapper, ChainLayout, WrapperDesign};

use crate::code::{codeword_len, encode_run, Bits, RunDecoder};

/// Outcome of FDR-compressing one core at a TAM width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdrResult {
    /// Wrapper chains (= TAM wires = serial decompressors).
    pub chains: u32,
    /// Total shift cycles over all patterns.
    pub shift_cycles: u64,
    /// Test time in cycles: `shift + p + min(s_i, s_o)`.
    pub test_time: u64,
    /// Tester data volume in bits (sum of all encoded streams).
    pub volume_bits: u64,
}

/// FDR-compresses `core` on a `width`-wire TAM, optionally sampling
/// `sample` evenly spaced patterns (scaled to the full set).
///
/// # Panics
///
/// Panics if the core has no attached test set or `width == 0`.
pub fn compress_fdr(core: &Core, width: u32, sample: Option<usize>) -> FdrResult {
    assert!(width > 0, "TAM width must be positive");
    let test_set = core
        .test_set()
        .expect("core must carry a test set; synthesize or attach cubes first");
    let design = design_wrapper(core, width);
    let p = test_set.pattern_count();

    let indices: Vec<usize> = match sample {
        Some(s) if s < p && s > 0 => {
            let mut v: Vec<usize> = (0..s).map(|i| i * p / s).collect();
            v.dedup();
            v
        }
        _ => (0..p).collect(),
    };

    let mut shift = 0u64;
    let mut volume = 0u64;
    for &pi in &indices {
        let cube = test_set.pattern(pi).expect("sampled index in range");
        let mut worst = 0u64;
        for chain in design.chains() {
            let bits = encoded_bits(chain, cube, design.scan_in_length());
            worst = worst.max(bits);
            volume += bits;
        }
        shift += worst;
    }
    // Scale sampled sums to the full pattern count.
    let n = indices.len() as u64;
    if (n as usize) < p {
        shift = (shift * p as u64 + n / 2) / n;
        volume = (volume * p as u64 + n / 2) / n;
    }

    let fill_drain = design.scan_in_length().min(design.scan_out_length());
    FdrResult {
        chains: design.chain_count(),
        shift_cycles: shift,
        test_time: shift + p as u64 + fill_drain,
        volume_bits: volume,
    }
}

/// Encoded length (bits) of one chain's serial stream for one pattern.
///
/// The stream is the chain's load sequence padded with 0 (don't-care fill)
/// to the design's scan-in length; runs of 0s are FDR-coded, and a
/// trailing 0-run is coded like any other (the decoder knows the stream
/// length and drops the phantom terminator).
fn encoded_bits(chain: &ChainLayout, cube: &soc_model::TritVec, s_i: u64) -> u64 {
    let mut bits = 0u64;
    let mut run = 0u64;
    for depth in 0..s_i {
        let one = chain
            .position_at(depth)
            .is_some_and(|pos| cube.get(pos as usize) == Trit::One);
        if one {
            bits += codeword_len(run);
            run = 0;
        } else {
            run += 1;
        }
    }
    if run > 0 {
        // The trailing run's terminator falls just past the stream end and
        // is dropped by the decoder, so the full length is coded.
        bits += codeword_len(run);
    }
    bits
}

/// Produces the actual encoded stream for one chain and pattern (used by
/// the verification path and tests; [`compress_fdr`] only counts).
pub fn encode_chain_stream(
    design: &WrapperDesign,
    chain_index: usize,
    cube: &soc_model::TritVec,
) -> Bits {
    let chain = &design.chains()[chain_index];
    let s_i = design.scan_in_length();
    let mut out = Bits::new();
    let mut run = 0u64;
    for depth in 0..s_i {
        let one = chain
            .position_at(depth)
            .is_some_and(|pos| cube.get(pos as usize) == Trit::One);
        if one {
            encode_run(run, &mut out);
            run = 0;
        } else {
            run += 1;
        }
    }
    if run > 0 {
        encode_run(run, &mut out);
    }
    out
}

/// Decodes a chain stream back into `expected_len` bits (0s and 1s), the
/// inverse of [`encode_chain_stream`].
///
/// # Panics
///
/// Panics if the stream is malformed or shorter than `expected_len`
/// implies.
pub fn decode_chain_stream(bits: &Bits, expected_len: u64) -> Vec<bool> {
    let mut dec = RunDecoder::new();
    let mut out = Vec::with_capacity(expected_len as usize);
    for b in bits.iter() {
        if let Some(run) = dec.feed(b) {
            out.resize(out.len() + run as usize, false);
            out.push(true); // run terminator (may be the phantom final one)
        }
    }
    assert!(dec.is_idle(), "stream ended mid-codeword");
    assert!(
        out.len() as u64 >= expected_len,
        "stream too short: {} < {expected_len}",
        out.len()
    );
    out.truncate(expected_len as usize);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_model::CubeSynthesis;

    fn prepared(cells: u32, patterns: u32, density: f64) -> Core {
        let mut core = Core::builder("f")
            .inputs(8)
            .outputs(8)
            .flexible_cells(cells, 64)
            .pattern_count(patterns)
            .care_density(density)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(density)
            .one_fraction(0.5)
            .synthesize(&core, 31);
        core.attach_test_set(ts).unwrap();
        core
    }

    #[test]
    fn sparse_cubes_compress_well() {
        let core = prepared(2000, 10, 0.02);
        let r = compress_fdr(&core, 8, None);
        assert!(
            r.volume_bits * 2 < core.initial_volume_bits(),
            "{} vs {}",
            r.volume_bits,
            core.initial_volume_bits()
        );
        assert_eq!(r.chains, 8);
        assert!(r.test_time > r.shift_cycles);
    }

    #[test]
    fn dense_cubes_expand() {
        // At ~50% ones FDR inflates — that is the expected failure mode and
        // exactly why technique selection matters.
        let core = prepared(500, 6, 0.9);
        let r = compress_fdr(&core, 8, None);
        assert!(r.volume_bits > core.initial_volume_bits() / 2);
    }

    #[test]
    fn streams_roundtrip_and_honor_care_bits() {
        let core = prepared(400, 5, 0.15);
        let design = design_wrapper(&core, 6);
        let ts = core.test_set().unwrap();
        for cube in ts.iter() {
            for k in 0..design.chains().len() {
                let bits = encode_chain_stream(&design, k, cube);
                let decoded = decode_chain_stream(&bits, design.scan_in_length());
                for (depth, &bit) in decoded.iter().enumerate() {
                    if let Some(pos) = design.chains()[k].position_at(depth as u64) {
                        assert!(
                            cube.get(pos as usize).accepts(bit),
                            "chain {k} depth {depth}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn counted_bits_match_real_encoding() {
        let core = prepared(300, 4, 0.2);
        let design = design_wrapper(&core, 5);
        let ts = core.test_set().unwrap();
        for cube in ts.iter() {
            for (k, chain) in design.chains().iter().enumerate() {
                let counted = encoded_bits(chain, cube, design.scan_in_length());
                let real = encode_chain_stream(&design, k, cube).len() as u64;
                assert_eq!(counted, real);
            }
        }
    }

    #[test]
    fn sampling_tracks_exact() {
        let core = prepared(600, 30, 0.05);
        let exact = compress_fdr(&core, 8, None);
        let sampled = compress_fdr(&core, 8, Some(6));
        let ratio = sampled.volume_bits as f64 / exact.volume_bits as f64;
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn wider_interfaces_cut_time_not_volume() {
        let core = prepared(1500, 8, 0.03);
        let narrow = compress_fdr(&core, 4, None);
        let wide = compress_fdr(&core, 16, None);
        assert!(wide.test_time < narrow.test_time);
        // Volume stays the same order (same data, different striping).
        let ratio = wide.volume_bits as f64 / narrow.volume_bits as f64;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "TAM width must be positive")]
    fn zero_width_panics() {
        compress_fdr(&prepared(100, 2, 0.1), 0, None);
    }
}
