//! Golomb run-length coding — the predecessor of FDR (Chandra &
//! Chakrabarty, VTS 2000) and a useful comparison point: Golomb needs its
//! group parameter tuned to the run-length distribution, while FDR adapts
//! automatically. The comparison reproduced in the tests: FDR beats every
//! single Golomb parameter on mixed-regime run distributions (real scan
//! data), and stays close to an ideally-tuned Golomb even on clean
//! geometric runs — with no tuning at all.
//!
//! A run of `L` zeros with parameter `m = 2^k` encodes as `⌊L/m⌋` ones, a
//! zero separator, and `k` remainder bits — `⌊L/m⌋ + 1 + k` bits total.

use crate::code::Bits;

/// Codeword length (bits) of a run of `length` zeros under parameter
/// `2^log2_m`.
pub fn golomb_codeword_len(length: u64, log2_m: u32) -> u64 {
    (length >> log2_m) + 1 + u64::from(log2_m)
}

/// Appends the Golomb codeword for a run of `length` zeros.
pub fn golomb_encode_run(length: u64, log2_m: u32, out: &mut Bits) {
    for _ in 0..(length >> log2_m) {
        out.push(true);
    }
    out.push(false);
    for i in (0..log2_m).rev() {
        out.push(length >> i & 1 == 1);
    }
}

/// Streaming Golomb decoder for a fixed parameter.
#[derive(Debug, Clone)]
pub struct GolombDecoder {
    log2_m: u32,
    quotient: u64,
    tail: Option<(u32, u64)>, // (bits read, accumulator)
}

impl GolombDecoder {
    /// A decoder for parameter `2^log2_m`.
    pub fn new(log2_m: u32) -> Self {
        GolombDecoder {
            log2_m,
            quotient: 0,
            tail: None,
        }
    }

    /// Consumes one bit; returns a run length when a codeword completes.
    pub fn feed(&mut self, bit: bool) -> Option<u64> {
        match &mut self.tail {
            None => {
                if bit {
                    self.quotient += 1;
                    None
                } else if self.log2_m == 0 {
                    let len = self.quotient;
                    self.quotient = 0;
                    Some(len)
                } else {
                    self.tail = Some((0, 0));
                    None
                }
            }
            Some((read, acc)) => {
                *acc = (*acc << 1) | u64::from(bit);
                *read += 1;
                if *read == self.log2_m {
                    let len = (self.quotient << self.log2_m) | *acc;
                    self.quotient = 0;
                    self.tail = None;
                    Some(len)
                } else {
                    None
                }
            }
        }
    }

    /// Returns `true` at a codeword boundary.
    pub fn is_idle(&self) -> bool {
        self.quotient == 0 && self.tail.is_none()
    }
}

/// Total Golomb-coded bits for a run-length multiset, at the *best*
/// power-of-two parameter in `0..=max_log2_m`; returns `(log2_m, bits)`.
pub fn best_golomb(runs: &[u64], max_log2_m: u32) -> (u32, u64) {
    (0..=max_log2_m)
        .map(|k| {
            (
                k,
                runs.iter().map(|&r| golomb_codeword_len(r, k)).sum::<u64>(),
            )
        })
        .min_by_key(|&(_, bits)| bits)
        .expect("range is nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::codeword_len as fdr_len;
    use soc_model::SplitMix64;

    #[test]
    fn known_codewords() {
        let encode = |len: u64, k: u32| {
            let mut b = Bits::new();
            golomb_encode_run(len, k, &mut b);
            b.to_string()
        };
        // m = 4 (k = 2): L = 9 → quotient 2, remainder 01.
        assert_eq!(encode(9, 2), "11001");
        assert_eq!(encode(0, 2), "000");
        // k = 0: pure unary.
        assert_eq!(encode(3, 0), "1110");
    }

    #[test]
    fn roundtrip_across_parameters() {
        for k in 0..6u32 {
            let runs = [0u64, 1, 5, 17, 100, 3, 64];
            let mut bits = Bits::new();
            for &r in &runs {
                golomb_encode_run(r, k, &mut bits);
            }
            let mut dec = GolombDecoder::new(k);
            let decoded: Vec<u64> = bits.iter().filter_map(|b| dec.feed(b)).collect();
            assert_eq!(decoded, runs, "k={k}");
            assert!(dec.is_idle());
        }
    }

    #[test]
    fn parameter_matters_for_golomb() {
        let runs: Vec<u64> = (0..200).map(|i| 40 + (i % 17)).collect();
        let (_, best) = best_golomb(&runs, 10);
        let worst: u64 = runs.iter().map(|&r| golomb_codeword_len(r, 0)).sum();
        assert!(best * 3 < worst, "tuning should matter: {best} vs {worst}");
    }

    #[test]
    fn fdr_competitive_with_tuned_golomb_on_scan_like_runs() {
        // Geometric run lengths (what sparse scan streams produce).
        let mut rng = SplitMix64::new(5);
        let runs: Vec<u64> = (0..2_000)
            .map(|_| {
                let mut l = 0u64;
                while rng.next_bool(0.97) && l < 4_000 {
                    l += 1;
                }
                l
            })
            .collect();
        let fdr_bits: u64 = runs.iter().map(|&r| fdr_len(r)).sum();
        let (k, golomb_bits) = best_golomb(&runs, 12);
        // On a *pure* geometric distribution an ideally-tuned Golomb code
        // is near-entropy, so FDR trails it somewhat — but stays within
        // 35% with no parameter at all, and crushes a mis-tuned Golomb.
        // (FDR's win in the literature is on real scan data, whose run
        // distribution mixes regimes no single Golomb parameter covers.)
        assert!(
            fdr_bits as f64 <= golomb_bits as f64 * 1.35,
            "FDR {fdr_bits} vs tuned Golomb(2^{k}) {golomb_bits}"
        );
        let mistuned: u64 = runs.iter().map(|&r| golomb_codeword_len(r, 0)).sum();
        assert!(fdr_bits * 2 < mistuned);

        // Mixed-regime runs (short bursts + occasional very long gaps):
        // here FDR beats every single Golomb parameter.
        let mut rng = SplitMix64::new(9);
        let mixed: Vec<u64> = (0..2_000)
            .map(|i| {
                if i % 10 == 0 {
                    500 + rng.next_below(3_000)
                } else {
                    rng.next_below(4)
                }
            })
            .collect();
        let fdr_mixed: u64 = mixed.iter().map(|&r| fdr_len(r)).sum();
        let (km, golomb_mixed) = best_golomb(&mixed, 12);
        assert!(
            fdr_mixed <= golomb_mixed,
            "FDR {fdr_mixed} vs tuned Golomb(2^{km}) {golomb_mixed} on mixed runs"
        );
    }

    #[test]
    fn shared_run_decoder_unaffected() {
        // Sanity: FDR's decoder still handles its own streams after Golomb
        // shares the Bits container.
        let mut bits = Bits::new();
        crate::code::encode_run(7, &mut bits);
        let mut dec = crate::code::RunDecoder::new();
        let out: Vec<u64> = bits.iter().filter_map(|b| dec.feed(b)).collect();
        assert_eq!(out, vec![7]);
    }
}
