//! Frequency-directed run-length (FDR) test-data compression.
//!
//! The run-length code of Chandra & Chakrabarty, used here as the
//! representative of the serial-decompressor architecture class
//! (compression-driven TAM design, the paper's reference \[10\]) and as one
//! of the candidate techniques for per-core compression-technique
//! selection (the authors' ATS 2008 follow-up work).
//!
//! * [`encode_run`]/[`RunDecoder`] — the code itself, bit-exact both ways;
//! * [`compress_fdr`] — core-level compression: one serial decompressor
//!   per TAM wire, test-time and volume accounting;
//! * [`encode_chain_stream`]/[`decode_chain_stream`] — the real streams,
//!   for verification.
//!
//! # Examples
//!
//! ```
//! use fdr::compress_fdr;
//! use soc_model::{Core, CubeSynthesis};
//!
//! let mut core = Core::builder("c")
//!     .inputs(8)
//!     .flexible_cells(1000, 32)
//!     .pattern_count(8)
//!     .care_density(0.03)
//!     .build()?;
//! let cubes = CubeSynthesis::new(0.03).synthesize(&core, 1);
//! core.attach_test_set(cubes)?;
//!
//! let r = compress_fdr(&core, 8, None);
//! assert!(r.volume_bits < core.initial_volume_bits());
//! # Ok::<(), soc_model::BuildCoreError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod code;
mod compress;
mod golomb;

pub use code::{codeword_len, encode_run, group_of, Bits, RunDecoder};
pub use compress::{compress_fdr, decode_chain_stream, encode_chain_stream, FdrResult};
pub use golomb::{best_golomb, golomb_codeword_len, golomb_encode_run, GolombDecoder};
