//! Batch planning over manifests of design instances (the "fleet").
//!
//! A fleet run plans hundreds or thousands of independent design
//! instances — ITC'02 benchmark files × width sweeps × synthetic-generator
//! seeds — in one process, with **two-level scheduling**: work-stealing at
//! design granularity on an outer [`parpool::Pool`], layered on the
//! planner's existing per-design table parallelism (the inner pool). The
//! split of the worker budget between the two levels is the deterministic
//! [`parpool::split_budget`] policy, and results are reported in manifest
//! order at any worker count, so a fleet run is bit-identical to planning
//! each instance alone, sequentially.
//!
//! Memory stays bounded: design instances built from the same source are
//! shared through an LRU [`robust::BoundedCache`], planner memo caches are
//! bounded per design, and the shared on-disk profile cache uses the
//! sharded concurrent-writer-safe layout from `tdcsoc` — so instances that
//! share cores (the same ITC'02 file at several widths) reuse each other's
//! operating-point profiles across the whole batch.
//!
//! ```
//! let manifest = fleet::Manifest::parse("design d695 widths=12 sample=4 mcand=4\n").unwrap();
//! let report = fleet::run_fleet(&manifest, &fleet::FleetOptions::default());
//! assert_eq!(report.summary.planned, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod manifest;
mod runner;

pub use manifest::{Instance, Manifest, ManifestError, SocSource};
pub use runner::{
    ndjson_line, run_fleet, run_fleet_with, FleetHooks, FleetOptions, FleetReport, FleetSummary,
    InstanceOutcome, InstanceReport,
};
