//! The fleet manifest format: a line-oriented, untrusted description of
//! the design instances a batch run should plan.
//!
//! Each non-comment line names one SOC source and the sweep to run over
//! it; the line expands into one [`Instance`] per `(width, seed)` pair:
//!
//! ```text
//! # source               options (any order, all optional)
//! design d695            widths=16,24 seeds=1..2
//! itc02 bench/p93791.soc widths=8..32:8 mode=per-core density=0.02
//! soc designs/mine.soc   widths=32 sample=8 mcand=8
//! ```
//!
//! * `design <name>` — a built-in benchmark ([`Design::ALL`] names,
//!   case-insensitive); `itc02 <path>` / `soc <path>` — a file in ITC'02
//!   or simple format, read when the fleet runs.
//! * `widths=` — comma-separated TAM widths and/or `lo..hi:step` ranges
//!   (inclusive; `:step` optional, default 1). Default `32`.
//! * `seeds=` — comma-separated synthesis seeds and/or inclusive
//!   `lo..hi` ranges. Default `2008` (the CLI default).
//! * `mode=` — planner mode keyword (`per-core`, `no-tdc`, …). Default
//!   `per-core`. `sample=`/`mcand=` — evaluation fidelity (defaults as
//!   the CLI); `exact` — full-fidelity evaluation; `density=` — ITC'02
//!   care-bit density (default 0.02).
//!
//! The parser is panic-free and bounds every expansion: a manifest that
//! would exceed [`Manifest::MAX_INSTANCES`] instances (or a single line
//! exceeding [`Manifest::MAX_PER_LINE`]) is rejected with an error naming
//! the line, never truncated silently.

use soc_model::benchmarks::Design;
use tdcsoc::DecisionConfig;

/// Where one instance's SOC comes from.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum SocSource {
    /// A built-in benchmark design, by canonical name.
    Builtin(String),
    /// An ITC'02-format file, read at fleet run time.
    Itc02File(String),
    /// A simple-format SOC file, read at fleet run time.
    SimpleFile(String),
}

impl SocSource {
    /// A short label for instance ids: the design name or the file stem.
    fn label(&self) -> String {
        match self {
            SocSource::Builtin(name) => name.clone(),
            SocSource::Itc02File(path) | SocSource::SimpleFile(path) => std::path::Path::new(path)
                .file_stem()
                .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned()),
        }
    }
}

/// One fully-expanded design instance: a single `(source, width, seed)`
/// planning job with its fidelity knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Deterministic human-readable label (`<source>-w<width>-seed<seed>`).
    pub id: String,
    /// The SOC to plan.
    pub source: SocSource,
    /// TAM width budget.
    pub width: u32,
    /// Test-set synthesis seed.
    pub seed: u64,
    /// Planner mode keyword (validated at parse time).
    pub mode: String,
    /// Evaluation fidelity.
    pub decisions: DecisionConfig,
    /// ITC'02 care-bit density.
    pub density: f64,
}

/// A parsed, fully-expanded fleet manifest.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Manifest {
    /// The instances to plan, in manifest order.
    pub instances: Vec<Instance>,
}

/// A manifest parse failure, naming the offending line (1-based; 0 for
/// whole-manifest failures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError {
    /// 1-based line number, 0 when the failure spans the whole manifest.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "manifest: {}", self.message)
        } else {
            write!(f, "manifest line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ManifestError {}

/// Planner mode keywords the CLI accepts; validated here so a typo fails
/// at parse time, not halfway through a thousand-instance run.
const MODES: &[&str] = &[
    "no-tdc", "per-core", "per-tam", "fixed4", "reseed", "fdr", "select",
];

impl Manifest {
    /// Hard cap on total expanded instances per manifest.
    pub const MAX_INSTANCES: usize = 65_536;
    /// Hard cap on instances expanded from a single line.
    pub const MAX_PER_LINE: usize = 4_096;

    /// Parses manifest `text`; see the module docs for the grammar.
    ///
    /// # Errors
    ///
    /// Returns a [`ManifestError`] naming the first offending line for
    /// unknown keywords, malformed values, unknown designs or modes, and
    /// expansions beyond the instance caps.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        let mut instances = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i.saturating_add(1);
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let expanded = parse_line(line, lineno)?;
            if expanded.len() > Self::MAX_PER_LINE {
                return Err(err(
                    lineno,
                    format!(
                        "line expands to {} instances (cap {})",
                        expanded.len(),
                        Self::MAX_PER_LINE
                    ),
                ));
            }
            instances.extend(expanded);
            if instances.len() > Self::MAX_INSTANCES {
                return Err(err(
                    lineno,
                    format!(
                        "manifest exceeds {} instances at this line",
                        Self::MAX_INSTANCES
                    ),
                ));
            }
        }
        Ok(Manifest { instances })
    }

    /// Total instance count.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the manifest expands to no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

fn err(line: usize, message: impl Into<String>) -> ManifestError {
    ManifestError {
        line,
        message: message.into(),
    }
}

/// Expands one source line into its `(width, seed)` instances.
fn parse_line(line: &str, lineno: usize) -> Result<Vec<Instance>, ManifestError> {
    let mut tokens = line.split_whitespace();
    let keyword = tokens
        .next()
        .ok_or_else(|| err(lineno, "empty line reached the parser"))?;
    let source = match keyword {
        "design" => {
            let name = tokens
                .next()
                .ok_or_else(|| err(lineno, "`design` needs a name"))?;
            let d = Design::ALL
                .into_iter()
                .find(|d| d.name().eq_ignore_ascii_case(name))
                .ok_or_else(|| err(lineno, format!("unknown design `{name}`")))?;
            SocSource::Builtin(d.name().to_string())
        }
        "itc02" => SocSource::Itc02File(
            tokens
                .next()
                .ok_or_else(|| err(lineno, "`itc02` needs a path"))?
                .to_string(),
        ),
        "soc" => SocSource::SimpleFile(
            tokens
                .next()
                .ok_or_else(|| err(lineno, "`soc` needs a path"))?
                .to_string(),
        ),
        other => {
            return Err(err(
                lineno,
                format!("unknown source keyword `{other}` (design|itc02|soc)"),
            ))
        }
    };

    let mut widths: Vec<u32> = vec![32];
    let mut seeds: Vec<u64> = vec![2008];
    let mut mode = "per-core".to_string();
    let mut sample: Option<usize> = Some(24);
    let mut mcand: usize = 24;
    let mut exact = false;
    let mut density: f64 = 0.02;

    for opt in tokens {
        if opt == "exact" {
            exact = true;
            continue;
        }
        let Some((key, value)) = opt.split_once('=') else {
            return Err(err(lineno, format!("expected key=value, got `{opt}`")));
        };
        match key {
            "widths" => {
                widths = parse_list(value, lineno, "widths", parse_width_range)?;
            }
            "seeds" => {
                seeds = parse_list(value, lineno, "seeds", parse_seed_range)?;
            }
            "mode" => {
                if !MODES.contains(&value) {
                    return Err(err(lineno, format!("unknown mode `{value}`")));
                }
                mode = value.to_string();
            }
            "sample" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| err(lineno, format!("sample: invalid number `{value}`")))?;
                if n == 0 {
                    return Err(err(lineno, "sample must be at least 1"));
                }
                sample = Some(n);
            }
            "mcand" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| err(lineno, format!("mcand: invalid number `{value}`")))?;
                if n < 2 {
                    return Err(err(lineno, "mcand must be at least 2"));
                }
                mcand = n;
            }
            "density" => {
                let d: f64 = value
                    .parse()
                    .map_err(|_| err(lineno, format!("density: invalid number `{value}`")))?;
                if !(d > 0.0 && d <= 1.0) {
                    return Err(err(lineno, "density must be in (0, 1]"));
                }
                density = d;
            }
            other => return Err(err(lineno, format!("unknown option `{other}`"))),
        }
    }

    let decisions = if exact {
        DecisionConfig::exact()
    } else {
        DecisionConfig {
            pattern_sample: sample,
            m_candidates: mcand,
        }
    };

    let label = source.label();
    let mut out = Vec::new();
    for &seed in &seeds {
        for &width in &widths {
            if out.len() >= Manifest::MAX_PER_LINE {
                // Caller reports the overflow with the exact count; stop
                // expanding so a hostile line cannot balloon memory first.
                return Err(err(
                    lineno,
                    format!(
                        "line expands past the per-line cap of {} instances",
                        Manifest::MAX_PER_LINE
                    ),
                ));
            }
            out.push(Instance {
                id: format!("{label}-w{width}-seed{seed}"),
                source: source.clone(),
                width,
                seed,
                mode: mode.clone(),
                decisions: decisions.clone(),
                density,
            });
        }
    }
    if out.is_empty() {
        return Err(err(lineno, "line expands to no instances"));
    }
    Ok(out)
}

/// Parses a comma-separated list whose items are single values or ranges,
/// via `item` (which returns the expanded values for one item).
fn parse_list<T>(
    value: &str,
    lineno: usize,
    what: &str,
    item: impl Fn(&str, usize, &str) -> Result<Vec<T>, ManifestError>,
) -> Result<Vec<T>, ManifestError> {
    let mut out = Vec::new();
    for part in value.split(',') {
        if part.is_empty() {
            return Err(err(lineno, format!("{what}: empty list item")));
        }
        out.extend(item(part, lineno, what)?);
        if out.len() > Manifest::MAX_PER_LINE {
            return Err(err(
                lineno,
                format!("{what}: expands past {} values", Manifest::MAX_PER_LINE),
            ));
        }
    }
    if out.is_empty() {
        return Err(err(lineno, format!("{what}: empty list")));
    }
    Ok(out)
}

/// One `widths=` item: `N` or `lo..hi` or `lo..hi:step` (inclusive).
fn parse_width_range(part: &str, lineno: usize, what: &str) -> Result<Vec<u32>, ManifestError> {
    let bad = |detail: &str| err(lineno, format!("{what}: {detail} in `{part}`"));
    let Some((lo, rest)) = part.split_once("..") else {
        let w: u32 = part.parse().map_err(|_| bad("invalid number"))?;
        if w == 0 {
            return Err(bad("width must be positive"));
        }
        return Ok(vec![w]);
    };
    let (hi, step) = match rest.split_once(':') {
        Some((hi, step)) => (hi, step.parse().map_err(|_| bad("invalid step"))?),
        None => (rest, 1u32),
    };
    let lo: u32 = lo.parse().map_err(|_| bad("invalid range start"))?;
    let hi: u32 = hi.parse().map_err(|_| bad("invalid range end"))?;
    if lo == 0 || hi < lo || step == 0 {
        return Err(bad("range must be 1 <= lo <= hi with step >= 1"));
    }
    let mut out = Vec::new();
    let mut w = lo;
    while w <= hi && out.len() <= Manifest::MAX_PER_LINE {
        out.push(w);
        let Some(next) = w.checked_add(step) else {
            break;
        };
        w = next;
    }
    Ok(out)
}

/// One `seeds=` item: `N` or inclusive `lo..hi`.
fn parse_seed_range(part: &str, lineno: usize, what: &str) -> Result<Vec<u64>, ManifestError> {
    let bad = |detail: &str| err(lineno, format!("{what}: {detail} in `{part}`"));
    let Some((lo, hi)) = part.split_once("..") else {
        return Ok(vec![part.parse().map_err(|_| bad("invalid number"))?]);
    };
    let lo: u64 = lo.parse().map_err(|_| bad("invalid range start"))?;
    let hi: u64 = hi.parse().map_err(|_| bad("invalid range end"))?;
    if hi < lo {
        return Err(bad("range end below start"));
    }
    let mut out = Vec::new();
    let mut s = lo;
    while s <= hi && out.len() <= Manifest::MAX_PER_LINE {
        out.push(s);
        let Some(next) = s.checked_add(1) else {
            break;
        };
        s = next;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sources_sweeps_and_defaults() {
        let m = Manifest::parse(
            "# a comment\n\
             design d695 widths=16,24 seeds=1..2\n\
             itc02 bench/p93791.soc widths=8..16:4 mode=no-tdc density=0.05\n\
             soc my.soc sample=8 mcand=8\n",
        )
        .unwrap();
        assert_eq!(m.len(), 4 + 3 + 1);
        assert_eq!(m.instances[0].id, "d695-w16-seed1");
        assert_eq!(m.instances[0].source, SocSource::Builtin("d695".into()));
        assert_eq!(m.instances[3].id, "d695-w24-seed2");
        let itc = &m.instances[4];
        assert_eq!(itc.source, SocSource::Itc02File("bench/p93791.soc".into()));
        assert_eq!(
            m.instances[4..7]
                .iter()
                .map(|i| i.width)
                .collect::<Vec<_>>(),
            [8, 12, 16]
        );
        assert_eq!(itc.mode, "no-tdc");
        assert!((itc.density - 0.05).abs() < 1e-12);
        let simple = &m.instances[7];
        assert_eq!(simple.width, 32, "default width");
        assert_eq!(simple.seed, 2008, "default seed");
        assert_eq!(simple.decisions.pattern_sample, Some(8));
        assert_eq!(simple.decisions.m_candidates, 8);
    }

    #[test]
    fn exact_overrides_fidelity() {
        let m = Manifest::parse("design d695 exact\n").unwrap();
        assert_eq!(m.instances[0].decisions, DecisionConfig::exact());
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (text, fragment) in [
            ("blueprint d695\n", "unknown source keyword"),
            ("design nope\n", "unknown design"),
            ("design d695 widths=0\n", "positive"),
            ("design d695 widths=9..3\n", "range"),
            ("design d695 widths=1..8:0\n", "range"),
            ("design d695 seeds=5..2\n", "range end below start"),
            ("design d695 mode=quantum\n", "unknown mode"),
            ("design d695 sample=0\n", "at least 1"),
            ("design d695 mcand=1\n", "at least 2"),
            ("design d695 density=7\n", "density"),
            ("design d695 widths\n", "key=value"),
            ("design d695 turbo=9\n", "unknown option"),
            ("design\n", "needs a name"),
        ] {
            let e = Manifest::parse(&format!("design d695\n{text}")).unwrap_err();
            assert_eq!(e.line, 2, "{text}");
            assert!(e.message.contains(fragment), "{text}: {}", e.message);
            assert!(e.to_string().contains("line 2"));
        }
    }

    #[test]
    fn caps_bound_expansion() {
        let e = Manifest::parse("design d695 widths=1..100000\n").unwrap_err();
        assert!(e.message.contains("widths"), "{}", e.message);
        // Many lines each under the per-line cap still trip the total cap.
        let line = "design d695 widths=1..64 seeds=1..64\n"; // 4096 per line
        let text = line.repeat(17);
        let e = Manifest::parse(&text).unwrap_err();
        assert!(e.message.contains("exceeds"), "{}", e.message);
    }

    #[test]
    fn file_sources_label_by_stem() {
        let m = Manifest::parse("itc02 deep/dir/p22810.soc widths=4\n").unwrap();
        assert_eq!(m.instances[0].id, "p22810-w4-seed2008");
    }
}
