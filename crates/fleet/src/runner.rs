//! The two-level fleet driver: outer work-stealing over design instances,
//! inner per-design table parallelism, shared bounded caches.
//!
//! Determinism argument (DESIGN.md §16): the outer [`parpool::Pool`]
//! returns results in task order at any worker count; each instance's
//! plan depends only on its own `(SOC, request, control)` inputs (the
//! planner's worker-count independence contract); and every shared cache
//! is *semantically transparent* — a hit returns exactly what a rebuild
//! would produce, and eviction merely forces the rebuild — so the worker
//! split and cache interleaving can change throughput and counters, never
//! plans.

use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::Arc;
// soclint: allow(wall-clock) -- fleet latency/throughput reporting only; no plan content derives from time
use std::time::Instant;

use parpool::{dsan, split_budget, Pool};
use robust::{BoundedCache, CacheLimits, CacheStats};
use soc_model::benchmarks::Design;
use soc_model::{format::parse_soc, generator::synthesize_missing_test_sets, itc02, Soc};
use tdcsoc::{Plan, PlanControl, PlanOutcome, PlanRequest, PlanStats, Planner};

use crate::manifest::{Instance, Manifest, SocSource};

/// Knobs for one fleet run.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Total worker budget across both scheduling levels; `0` auto-detects
    /// via [`std::thread::available_parallelism`]. The deterministic
    /// [`parpool::split_budget`] policy divides it into
    /// `outer × inner ≤ budget`.
    pub workers: usize,
    /// Root of the shared sharded on-disk profile cache, if any. Safe for
    /// concurrent writers — every fleet worker (and other processes) may
    /// point at the same root.
    pub profile_cache: Option<PathBuf>,
    /// LRU bounds on the shared in-memory design-instance cache (built
    /// SOCs with synthesized test sets, reused across width sweeps).
    pub soc_cache: CacheLimits,
    /// Skip the per-plan compressed-stream replay (faster; plans are
    /// unchanged — verification never alters a plan).
    pub skip_stream_verification: bool,
    /// Directory of plan files from a previous run (`soctdc fleet
    /// --resume`). An instance whose `ID.plan` round-trips byte-identical
    /// through `parse_plan → write_plan` is taken as already done and
    /// skipped; anything else — missing file, parse error, stale format —
    /// is planned from scratch.
    pub resume_plan_dir: Option<PathBuf>,
}

/// Streaming observers for a fleet run. Separate from [`FleetOptions`] so
/// the options stay plain data (`Debug + Clone`).
#[derive(Default)]
pub struct FleetHooks<'a> {
    /// Called once per instance **in completion order**, from the worker
    /// thread that finished it — this is how `--ndjson` streams progress
    /// while the batch is still running. The final report is still in
    /// manifest order.
    pub on_report: Option<&'a (dyn Fn(&InstanceReport) + Sync)>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            workers: 0,
            profile_cache: None,
            soc_cache: CacheLimits::new(32, 256 << 20),
            skip_stream_verification: false,
            resume_plan_dir: None,
        }
    }
}

/// How one instance concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceOutcome {
    /// The planner returned a plan (with its search outcome).
    Planned(PlanOutcome),
    /// A previous run's plan file round-tripped byte-identical, so the
    /// instance was skipped (`--resume`). The parsed plan is carried in
    /// the report like a freshly planned one.
    Resumed,
    /// The instance failed — unreadable source file, planning error. The
    /// rest of the fleet is unaffected.
    Failed(String),
}

impl InstanceOutcome {
    /// Stable keyword for per-outcome tallies (`optimal`, `degraded …`,
    /// `resumed`, `failed`).
    pub fn keyword(&self) -> String {
        match self {
            InstanceOutcome::Planned(o) => o.to_string(),
            InstanceOutcome::Resumed => "resumed".to_string(),
            InstanceOutcome::Failed(_) => "failed".to_string(),
        }
    }
}

/// One instance's result, in manifest order.
#[derive(Debug, Clone)]
pub struct InstanceReport {
    /// The instance's manifest id.
    pub id: String,
    /// How it concluded.
    pub outcome: InstanceOutcome,
    /// Wall-clock planning latency in milliseconds (reporting only; varies
    /// run to run, unlike the plan itself).
    pub latency_ms: f64,
    /// The planner's work accounting (zeroed for failed instances).
    pub stats: PlanStats,
    /// The finished plan (`None` for failed instances).
    pub plan: Option<Plan>,
}

/// Whole-run totals, computed deterministically from the ordered reports.
#[derive(Debug, Clone)]
pub struct FleetSummary {
    /// Instances in the manifest.
    pub instances: usize,
    /// Instances that produced a plan (freshly planned or resumed).
    pub planned: usize,
    /// Instances that failed.
    pub failed: usize,
    /// Instances skipped because a previous run's plan file round-tripped
    /// byte-identical (`--resume`). A subset of `planned`.
    pub resumed: usize,
    /// Tally of [`InstanceOutcome::keyword`] values.
    pub outcomes: BTreeMap<String, usize>,
    /// Total wall-clock seconds for the batch.
    pub elapsed_s: f64,
    /// Freshly planned designs per second. Resumed instances are
    /// excluded: they skipped planning entirely, so counting them would
    /// inflate throughput.
    pub designs_per_sec: f64,
    /// Median per-design plan latency (nearest rank over sorted
    /// latencies — deterministic given the latency multiset). Resumed
    /// instances contribute no latency sample; planned and failed do.
    pub p50_ms: f64,
    /// 99th-percentile per-design plan latency (nearest rank, same
    /// sample set as `p50_ms`).
    pub p99_ms: f64,
    /// Rolled-up [`PlanStats`] across every instance: profile-cache
    /// hits/misses/evictions, memo-cache counters, verification totals.
    pub stats: PlanStats,
    /// Counters of the shared design-instance cache (hits mean a SOC
    /// build + test-set synthesis was skipped).
    pub soc_cache: CacheStats,
    /// Outer (design-granularity) worker count actually used.
    pub outer_workers: usize,
    /// Inner (per-design table) worker count handed to each plan.
    pub inner_workers: usize,
    /// The resolved total budget (`outer × inner ≤ budget`).
    pub budget: usize,
}

impl std::fmt::Display for FleetSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fleet: {} instances, {} planned, {} failed, {} resumed in {:.2}s ({:.2} designs/sec)",
            self.instances,
            self.planned,
            self.failed,
            self.resumed,
            self.elapsed_s,
            self.designs_per_sec
        )?;
        writeln!(
            f,
            "workers: budget {} = {} outer x {} inner",
            self.budget, self.outer_workers, self.inner_workers
        )?;
        writeln!(
            f,
            "latency: p50 {:.1} ms, p99 {:.1} ms",
            self.p50_ms, self.p99_ms
        )?;
        let outcomes: Vec<String> = self
            .outcomes
            .iter()
            .map(|(k, n)| format!("{k} {n}"))
            .collect();
        writeln!(f, "outcomes: {}", outcomes.join(", "))?;
        writeln!(
            f,
            "profile cache: {} hits, {} partial, {} misses, {} evictions",
            self.stats.profile_hits,
            self.stats.profile_partial_hits,
            self.stats.profile_misses,
            self.stats.profile_evictions
        )?;
        writeln!(
            f,
            "memo caches: {} hits, {} misses, {} evictions",
            self.stats.memo.hits, self.stats.memo.misses, self.stats.memo.evictions
        )?;
        write!(
            f,
            "soc cache: {} hits, {} misses, {} evictions",
            self.soc_cache.hits, self.soc_cache.misses, self.soc_cache.evictions
        )
    }
}

/// A finished fleet run: per-instance reports in manifest order plus the
/// aggregate summary.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// One report per manifest instance, in manifest order at any worker
    /// count.
    pub instances: Vec<InstanceReport>,
    /// Aggregate totals.
    pub summary: FleetSummary,
}

/// Key of the shared design-instance cache: everything that shapes the
/// built SOC (density keyed by bit pattern — `f64` has no `Ord`).
type SocKey = (SocSource, u64, u64);

/// Plans every instance of `manifest` under `opts`, two-level scheduled.
///
/// The report's instances are in manifest order and each plan is
/// bit-identical to a standalone single-design run of the same instance,
/// at any worker budget — see the module docs for the argument.
pub fn run_fleet(manifest: &Manifest, opts: &FleetOptions) -> FleetReport {
    run_fleet_with(manifest, opts, &FleetHooks::default())
}

/// [`run_fleet`] with streaming observers attached.
pub fn run_fleet_with(manifest: &Manifest, opts: &FleetOptions, hooks: &FleetHooks) -> FleetReport {
    // soclint: allow(wall-clock) -- batch throughput reporting only
    #[allow(clippy::disallowed_methods)]
    let t0 = Instant::now();
    let budget = if opts.workers == 0 {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        opts.workers
    };
    let (outer, inner) = split_budget(budget, manifest.len());

    // Advisory dsan shadow: outer jobs race on this cache by design, and
    // a hit is equivalent to a rebuild (the transparency argument below).
    let socs: dsan::Cell<BoundedCache<SocKey, Arc<Soc>>> = dsan::Cell::new(
        "fleet.soc-cache",
        dsan::Policy::Advisory,
        BoundedCache::new(opts.soc_cache),
    );
    let tasks: Vec<_> = manifest
        .instances
        .iter()
        .map(|inst| {
            let socs = &socs;
            move || {
                let report = plan_instance(inst, inner, opts, socs);
                if let Some(on_report) = hooks.on_report {
                    on_report(&report);
                }
                report
            }
        })
        .collect();
    let instances = Pool::with_workers(outer).labeled("fleet").run(tasks);

    let elapsed_s = t0.elapsed().as_secs_f64();
    let soc_cache = socs.read(|cache| cache.stats());
    let summary = summarize(&instances, elapsed_s, soc_cache, outer, inner, budget);
    FleetReport { instances, summary }
}

/// Builds the aggregate summary from the ordered per-instance reports.
fn summarize(
    instances: &[InstanceReport],
    elapsed_s: f64,
    soc_cache: CacheStats,
    outer: usize,
    inner: usize,
    budget: usize,
) -> FleetSummary {
    let mut outcomes: BTreeMap<String, usize> = BTreeMap::new();
    let mut stats = PlanStats::default();
    let mut latencies: Vec<f64> = Vec::with_capacity(instances.len());
    let mut planned = 0usize;
    let mut resumed = 0usize;
    for report in instances {
        *outcomes.entry(report.outcome.keyword()).or_default() += 1;
        stats.absorb(&report.stats);
        match report.outcome {
            InstanceOutcome::Planned(_) => {
                planned += 1;
                latencies.push(report.latency_ms);
            }
            InstanceOutcome::Resumed => {
                // A resumed instance only read a plan file back; counting
                // its (near-zero) latency would sink p50/p99, and counting
                // it as planning throughput would inflate designs/s.
                planned += 1;
                resumed += 1;
            }
            InstanceOutcome::Failed(_) => latencies.push(report.latency_ms),
        }
    }
    latencies.sort_by(f64::total_cmp);
    let designs_per_sec = if elapsed_s > 0.0 {
        to_f64(planned - resumed) / elapsed_s
    } else {
        0.0
    };
    FleetSummary {
        instances: instances.len(),
        planned,
        failed: instances.len() - planned,
        resumed,
        outcomes,
        elapsed_s,
        designs_per_sec,
        p50_ms: nearest_rank(&latencies, 50),
        p99_ms: nearest_rank(&latencies, 99),
        stats,
        soc_cache,
        outer_workers: outer,
        inner_workers: inner,
        budget,
    }
}

/// Lossless `usize → f64` for the counts this crate handles (bounded by
/// [`Manifest::MAX_INSTANCES`], far under `2^32`), without an `as` cast.
fn to_f64(n: usize) -> f64 {
    f64::from(u32::try_from(n).unwrap_or(u32::MAX))
}

/// Nearest-rank percentile over latencies already sorted with
/// [`f64::total_cmp`]: index `round(p/100 × (n-1))`, in pure integer
/// arithmetic so the pick is exact.
fn nearest_rank(sorted: &[f64], percent: usize) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (percent * (sorted.len() - 1) + 50) / 100;
    sorted.get(idx).copied().unwrap_or(0.0)
}

/// Plans one instance with `inner` table workers, reusing the shared SOC
/// cache. Failures are confined to this instance's report.
fn plan_instance(
    inst: &Instance,
    inner: usize,
    opts: &FleetOptions,
    socs: &dsan::Cell<BoundedCache<SocKey, Arc<Soc>>>,
) -> InstanceReport {
    // soclint: allow(wall-clock) -- per-design latency reporting only
    #[allow(clippy::disallowed_methods)]
    let t0 = Instant::now();
    let failed = |message: String, t0: Instant| InstanceReport {
        id: inst.id.clone(),
        outcome: InstanceOutcome::Failed(message),
        latency_ms: t0.elapsed().as_secs_f64() * 1e3,
        stats: PlanStats::default(),
        plan: None,
    };
    if let Some(dir) = &opts.resume_plan_dir {
        if let Some(plan) = try_resume(dir, &inst.id) {
            return InstanceReport {
                id: inst.id.clone(),
                outcome: InstanceOutcome::Resumed,
                latency_ms: t0.elapsed().as_secs_f64() * 1e3,
                stats: PlanStats::default(),
                plan: Some(plan),
            };
        }
    }
    let soc = match shared_soc(socs, inst) {
        Ok(soc) => soc,
        Err(message) => return failed(message, t0),
    };
    let planner = match planner_for(&inst.mode) {
        Some(planner) => planner,
        None => return failed(format!("unknown mode `{}`", inst.mode), t0),
    };
    let mut request = PlanRequest::tam_width(inst.width);
    request.decisions = inst.decisions.clone();
    request.architecture.workers = Some(inner);
    let mut control = PlanControl::default();
    if opts.skip_stream_verification {
        control = control.without_stream_verification();
    }
    if let Some(dir) = &opts.profile_cache {
        // Same tag the CLI's `plan --profile-cache` uses, so fleet runs
        // and single-design runs share entries.
        let tag = format!("{}-seed{}-d{:.3}", soc.name(), inst.seed, inst.density);
        control = control.cache_profiles_in(dir, tag);
    }
    match planner.plan_with_stats(&soc, &request, &control) {
        Ok((plan, stats)) => InstanceReport {
            id: inst.id.clone(),
            outcome: InstanceOutcome::Planned(plan.outcome),
            latency_ms: t0.elapsed().as_secs_f64() * 1e3,
            stats,
            plan: Some(plan),
        },
        Err(e) => failed(e.to_string(), t0),
    }
}

/// The `--resume` probe: accept a previous run's `ID.plan` only if it
/// round-trips **byte-identical** through `parse_plan → write_plan`.
/// That single check subsumes "parses", "current format version", and
/// "not truncated mid-write" — any drift re-plans the instance.
fn try_resume(dir: &std::path::Path, id: &str) -> Option<Plan> {
    let text = std::fs::read_to_string(dir.join(format!("{id}.plan"))).ok()?;
    let plan = tdcsoc::parse_plan(&text).ok()?;
    (tdcsoc::write_plan(&plan) == text).then_some(plan)
}

/// Renders one instance report as a single NDJSON line (`--ndjson`):
/// stable key order, no trailing newline. Latency is wall-clock telemetry
/// and varies run to run; everything else is deterministic.
pub fn ndjson_line(r: &InstanceReport) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"id\":{},\"outcome\":{},\"latency_ms\":{:.3}",
        json_escape(&r.id),
        json_escape(&r.outcome.keyword()),
        r.latency_ms
    ));
    if let Some(plan) = &r.plan {
        out.push_str(&format!(
            ",\"test_time\":{},\"volume_bits\":{}",
            plan.test_time, plan.volume_bits
        ));
    }
    if let InstanceOutcome::Failed(message) = &r.outcome {
        out.push_str(&format!(",\"error\":{}", json_escape(message)));
    }
    out.push('}');
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Fetches (or builds and caches) the instance's SOC. The cache is
/// semantically transparent: builds are deterministic, so a hit, a miss,
/// or an eviction-forced rebuild all yield the identical SOC — racing
/// workers can at worst build the same SOC twice.
fn shared_soc(
    socs: &dsan::Cell<BoundedCache<SocKey, Arc<Soc>>>,
    inst: &Instance,
) -> Result<Arc<Soc>, String> {
    let key: SocKey = (inst.source.clone(), inst.seed, inst.density.to_bits());
    // soclint: allow(capture-mut) -- LRU bookkeeping only: a hit returns exactly what a rebuild would, so lock interleaving never reaches plan content
    if let Some(soc) = socs.write(|cache| cache.get(&key).map(Arc::clone)) {
        return Ok(soc);
    }
    let soc = Arc::new(build_soc(inst)?);
    // Weight ≈ the dominant allocation: the synthesized test cubes.
    let weight = usize::try_from(soc.initial_volume_bits() / 8)
        .unwrap_or(usize::MAX)
        .saturating_add(4096);
    // soclint: allow(capture-mut) -- same transparency argument as the lookup above
    socs.write(|cache| cache.insert(key, Arc::clone(&soc), weight));
    Ok(soc)
}

/// Builds an instance's SOC from its source and synthesizes missing test
/// sets — exactly what the CLI does for a single `plan` run.
fn build_soc(inst: &Instance) -> Result<Soc, String> {
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let mut soc = match &inst.source {
        SocSource::Builtin(name) => Design::ALL
            .into_iter()
            .find(|d| d.name().eq_ignore_ascii_case(name))
            .map(|d| d.build())
            .ok_or_else(|| format!("unknown design `{name}`"))?,
        SocSource::Itc02File(path) => {
            itc02::parse_itc02(&read(path)?, inst.density)
                .map_err(|e| format!("{path}: {e}"))?
                .soc
        }
        SocSource::SimpleFile(path) => {
            parse_soc(&read(path)?).map_err(|e| format!("{path}: {e}"))?
        }
    };
    synthesize_missing_test_sets(&mut soc, inst.seed);
    Ok(soc)
}

/// The CLI's mode keywords (mirrored; the manifest validates these at
/// parse time, this is the defensive second check).
fn planner_for(mode: &str) -> Option<Planner> {
    Some(match mode {
        "no-tdc" => Planner::no_tdc(),
        "per-core" => Planner::per_core_tdc(),
        "per-tam" => Planner::per_tam_tdc(),
        "fixed4" => Planner::fixed_width_tdc(4),
        "reseed" => Planner::reseeding_tdc(),
        "fdr" => Planner::fdr_tdc(),
        "select" => Planner::select_tdc(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_picks_deterministically() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(nearest_rank(&sorted, 50), 3.0);
        assert_eq!(nearest_rank(&sorted, 99), 5.0);
        assert_eq!(nearest_rank(&sorted, 0), 1.0);
        assert_eq!(nearest_rank(&[], 50), 0.0);
        assert_eq!(nearest_rank(&[7.5], 99), 7.5);
    }

    #[test]
    fn failed_sources_do_not_sink_the_fleet() {
        let manifest = Manifest::parse(
            "soc /nonexistent/fleet-test.soc widths=8\n\
             design d695 widths=10 sample=4 mcand=4\n",
        )
        .unwrap();
        let report = run_fleet(&manifest, &FleetOptions::default());
        assert_eq!(report.summary.instances, 2);
        assert_eq!(report.summary.planned, 1);
        assert_eq!(report.summary.failed, 1);
        assert!(matches!(
            report.instances[0].outcome,
            InstanceOutcome::Failed(ref m) if m.contains("cannot read")
        ));
        assert!(report.instances[1].plan.is_some());
        assert_eq!(report.summary.outcomes.get("failed"), Some(&1));
        assert_eq!(report.summary.outcomes.get("optimal"), Some(&1));
    }

    #[test]
    fn width_sweeps_share_the_cached_soc() {
        let manifest = Manifest::parse("design d695 widths=8,10,12 sample=4 mcand=4\n").unwrap();
        // One outer worker: the cache counters are exact (concurrent
        // outer workers may race to the first build, which is harmless
        // but makes hit counts host-dependent).
        let opts = FleetOptions {
            workers: 1,
            ..FleetOptions::default()
        };
        let report = run_fleet(&manifest, &opts);
        assert_eq!(report.summary.planned, 3);
        // One build, two hits: all three widths reuse the same instance.
        assert_eq!(report.summary.soc_cache.misses, 1);
        assert_eq!(report.summary.soc_cache.hits, 2);
        // Summary display mentions the load-bearing numbers.
        let text = report.summary.to_string();
        assert!(text.contains("3 planned"), "{text}");
        assert!(text.contains("designs/sec"), "{text}");
    }

    #[test]
    fn resume_skips_round_trip_identical_plans_only() {
        let dir = std::env::temp_dir().join(format!("fleet-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = Manifest::parse("design d695 widths=8,10 sample=4 mcand=4\n").unwrap();
        let opts = FleetOptions {
            workers: 1,
            ..FleetOptions::default()
        };

        // Cold run: everything planned fresh; persist the plan files.
        let cold = run_fleet(&manifest, &opts);
        assert_eq!((cold.summary.planned, cold.summary.resumed), (2, 0));
        for r in &cold.instances {
            let text = tdcsoc::write_plan(r.plan.as_ref().unwrap());
            std::fs::write(dir.join(format!("{}.plan", r.id)), text).unwrap();
        }

        // Corrupt one file: it must be re-planned, the other resumed.
        let victim = dir.join(format!("{}.plan", cold.instances[0].id));
        let mut text = std::fs::read_to_string(&victim).unwrap();
        text.push_str("# trailing note breaks the byte-identical round-trip\n");
        std::fs::write(&victim, text).unwrap();

        let warm = run_fleet(
            &manifest,
            &FleetOptions {
                resume_plan_dir: Some(dir.clone()),
                ..opts
            },
        );
        assert_eq!((warm.summary.planned, warm.summary.resumed), (2, 1));
        assert!(matches!(
            warm.instances[0].outcome,
            InstanceOutcome::Planned(_)
        ));
        assert_eq!(warm.instances[1].outcome, InstanceOutcome::Resumed);
        // The resumed plan is the cold run's plan, bit for bit.
        assert_eq!(
            tdcsoc::write_plan(warm.instances[1].plan.as_ref().unwrap()),
            tdcsoc::write_plan(cold.instances[1].plan.as_ref().unwrap())
        );
        let text = warm.summary.to_string();
        assert!(text.contains("2 planned, 0 failed, 1 resumed"), "{text}");
        assert_eq!(warm.summary.outcomes.get("resumed"), Some(&1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hooks_stream_reports_in_completion_order() {
        let manifest = Manifest::parse("design d695 widths=8,10 sample=4 mcand=4\n").unwrap();
        let seen: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let on_report = |r: &InstanceReport| {
            if let Ok(mut v) = seen.lock() {
                v.push(ndjson_line(r));
            }
        };
        let report = run_fleet_with(
            &manifest,
            &FleetOptions {
                workers: 1,
                ..FleetOptions::default()
            },
            &FleetHooks {
                on_report: Some(&on_report),
            },
        );
        let lines = seen.into_inner().unwrap();
        assert_eq!(lines.len(), report.instances.len());
        for (line, r) in lines.iter().zip(&report.instances) {
            // One worker: completion order is manifest order.
            assert!(line.contains(&format!("\"id\":\"{}\"", r.id)), "{line}");
            assert!(line.contains("\"outcome\":\"optimal\""), "{line}");
            assert!(line.contains("\"test_time\":"), "{line}");
            assert!(!line.contains('\n'), "one line per instance: {line}");
        }
    }

    #[test]
    fn ndjson_lines_escape_hostile_failure_text() {
        let r = InstanceReport {
            id: "bad \"id\"".into(),
            outcome: InstanceOutcome::Failed("line1\nline2 \\ \"x\"".into()),
            latency_ms: 1.5,
            stats: PlanStats::default(),
            plan: None,
        };
        let line = ndjson_line(&r);
        assert_eq!(
            line,
            "{\"id\":\"bad \\\"id\\\"\",\"outcome\":\"failed\",\"latency_ms\":1.500,\
             \"error\":\"line1\\nline2 \\\\ \\\"x\\\"\"}"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn summary_is_a_pure_function_of_reports() {
        let reports = vec![
            InstanceReport {
                id: "a".into(),
                outcome: InstanceOutcome::Planned(PlanOutcome::Optimal),
                latency_ms: 10.0,
                stats: PlanStats::default(),
                plan: None,
            },
            InstanceReport {
                id: "b".into(),
                outcome: InstanceOutcome::Failed("x".into()),
                latency_ms: 30.0,
                stats: PlanStats::default(),
                plan: None,
            },
        ];
        let s = summarize(&reports, 2.0, CacheStats::default(), 2, 1, 2);
        assert_eq!(s.planned, 1);
        assert_eq!(s.failed, 1);
        assert_eq!(s.designs_per_sec, 0.5);
        assert_eq!(s.p50_ms, 30.0, "nearest rank of [10, 30] at 50%");
        assert_eq!(s.p99_ms, 30.0);
    }

    #[test]
    fn resumed_instances_skew_neither_latency_nor_throughput() {
        // Two real plans (100 ms, 300 ms) plus two --resume skips whose
        // "latency" is just the file round-trip. The skips must not drag
        // the percentiles toward zero or double the reported throughput.
        let report = |outcome, latency_ms| InstanceReport {
            id: "x".into(),
            outcome,
            latency_ms,
            stats: PlanStats::default(),
            plan: None,
        };
        let reports = vec![
            report(InstanceOutcome::Planned(PlanOutcome::Optimal), 100.0),
            report(InstanceOutcome::Resumed, 0.01),
            report(InstanceOutcome::Resumed, 0.02),
            report(InstanceOutcome::Planned(PlanOutcome::Optimal), 300.0),
        ];
        let s = summarize(&reports, 2.0, CacheStats::default(), 2, 1, 2);
        assert_eq!((s.planned, s.resumed, s.failed), (4, 2, 0));
        assert_eq!(s.designs_per_sec, 1.0, "two fresh plans in 2 s");
        assert_eq!(s.p50_ms, 300.0, "nearest rank of [100, 300] at 50%");
        assert_eq!(s.p99_ms, 300.0, "resumed skips are not latency samples");
    }
}
