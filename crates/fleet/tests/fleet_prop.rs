//! Fleet ≡ sequential bit-identity, scale, and fault isolation.
//!
//! The fleet's contract is that batching changes *throughput*, never
//! *plans*: a fleet run over any manifest, at any worker budget (hence
//! any outer × inner split), produces exactly the plans that standalone
//! single-design runs produce, in manifest order — and a corrupt entry in
//! the shared sharded profile cache costs one core's rebuild in one
//! shard, never the batch.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

use proptest::prelude::*;

use fleet::{run_fleet, FleetOptions, InstanceOutcome, Manifest};
use soc_model::format::{parse_soc, write_soc};
use soc_model::generator::synthesize_missing_test_sets;
use soc_model::{Core, Soc};
use tdcsoc::{profile_cache_entries, quarantined_profiles, Plan};
use tdcsoc::{PlanControl, PlanRequest, Planner};

/// Per-core spec: (chain lengths, inputs, outputs, pattern count).
type CoreSpec = (Vec<u32>, u32, u32, u32);

/// Builds a tiny SOC from specs (no test sets — the fleet and the oracle
/// both synthesize them from the instance seed).
fn build_soc(name: &str, specs: &[CoreSpec]) -> Soc {
    let cores = specs
        .iter()
        .enumerate()
        .map(|(i, (chains, inputs, outputs, patterns))| {
            Core::builder(format!("c{i}"))
                .inputs(*inputs)
                .outputs(*outputs)
                .fixed_chains(chains.clone())
                .pattern_count(*patterns)
                .build()
                .expect("valid core")
        })
        .collect();
    Soc::new(name, cores)
}

/// Writes the SOC in simple format into `dir`, returning the file path.
fn write_soc_file(dir: &Path, name: &str, specs: &[CoreSpec]) -> PathBuf {
    std::fs::create_dir_all(dir).expect("create soc dir");
    let path = dir.join(format!("{name}.soc"));
    std::fs::write(&path, write_soc(&build_soc(name, specs))).expect("write soc file");
    path
}

/// The sequential oracle: plans one manifest instance exactly as a
/// standalone `plan` run would (single-threaded tables, no fleet).
fn sequential_plan(inst: &fleet::Instance, profile_cache: Option<&Path>) -> Plan {
    let mut soc = match &inst.source {
        fleet::SocSource::SimpleFile(path) => {
            parse_soc(&std::fs::read_to_string(path).expect("read soc file"))
                .expect("parse soc file")
        }
        other => panic!("oracle only handles simple files, got {other:?}"),
    };
    synthesize_missing_test_sets(&mut soc, inst.seed);
    let planner = match inst.mode.as_str() {
        "per-core" => Planner::per_core_tdc(),
        "no-tdc" => Planner::no_tdc(),
        other => panic!("oracle mode {other}"),
    };
    let mut request = PlanRequest::tam_width(inst.width).with_decisions(inst.decisions.clone());
    request.architecture.workers = Some(1);
    let mut control = PlanControl::default();
    if let Some(dir) = profile_cache {
        let tag = format!("{}-seed{}-d{:.3}", soc.name(), inst.seed, inst.density);
        control = control.cache_profiles_in(dir, tag);
    }
    planner
        .plan_with(&soc, &request, &control)
        .expect("oracle plan")
}

/// Strips the wall-clock field that legitimately differs run to run.
fn canon(mut plan: Plan) -> Plan {
    plan.cpu_time = std::time::Duration::ZERO;
    plan
}

/// A unique scratch dir (removed first, so reruns start clean).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fleet-prop-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random manifests × random worker budgets: every fleet plan equals
    /// the sequential oracle's, in manifest order.
    #[test]
    fn fleet_plans_match_sequential_at_any_split(
        specs in proptest::collection::vec(
            (
                proptest::collection::vec(1u32..20, 1..4),
                0u32..8,
                0u32..8,
                1u32..6,
            ),
            1..4,
        ),
        widths in proptest::collection::vec(4u32..12, 1..3),
        seeds in proptest::collection::vec(1u64..50, 1..3),
        budget in 1usize..9,
        case in 0u32..1_000_000,
    ) {
        let dir = scratch(&format!("split-{case}"));
        let path = write_soc_file(&dir, "tiny", &specs);
        let widths_opt = widths
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let seeds_opt = seeds
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let manifest = Manifest::parse(&format!(
            "soc {} widths={widths_opt} seeds={seeds_opt} sample=3 mcand=3\n",
            path.display()
        ))
        .expect("manifest parses");
        prop_assert_eq!(manifest.len(), widths.len() * seeds.len());

        let opts = FleetOptions {
            workers: budget,
            ..FleetOptions::default()
        };
        let report = run_fleet(&manifest, &opts);
        prop_assert_eq!(report.summary.planned, manifest.len());
        prop_assert!(
            report.summary.outer_workers * report.summary.inner_workers <= budget,
            "split {}x{} exceeds budget {budget}",
            report.summary.outer_workers,
            report.summary.inner_workers
        );
        for (inst, got) in manifest.instances.iter().zip(&report.instances) {
            prop_assert_eq!(&got.id, &inst.id, "manifest order preserved");
            let fleet_plan = canon(got.plan.clone().expect("planned"));
            let oracle = canon(sequential_plan(inst, None));
            prop_assert_eq!(fleet_plan, oracle, "{}", inst.id);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The acceptance-scale run: a ≥200-instance manifest at a 4-worker
/// budget is bit-identical to sequential single-design runs, and a
/// 1-worker fleet run of the same manifest produces the same plans.
#[test]
fn two_hundred_instance_fleet_matches_sequential_at_four_workers() {
    let dir = scratch("scale");
    let a = write_soc_file(&dir, "a", &[(vec![6, 9], 3, 2, 4), (vec![11], 2, 3, 3)]);
    let b = write_soc_file(&dir, "b", &[(vec![4, 4, 7], 2, 2, 5)]);
    let manifest = Manifest::parse(&format!(
        "soc {} widths=4..13 seeds=1..10 sample=2 mcand=2\n\
         soc {} widths=5..14 seeds=1..10 sample=2 mcand=2\n",
        a.display(),
        b.display()
    ))
    .expect("manifest parses");
    assert_eq!(manifest.len(), 200);

    let at = |workers: usize| {
        run_fleet(
            &manifest,
            &FleetOptions {
                workers,
                ..FleetOptions::default()
            },
        )
    };
    let four = at(4);
    assert_eq!(four.summary.planned, 200);
    assert_eq!(four.summary.instances, 200);
    assert_eq!(
        (four.summary.outer_workers, four.summary.inner_workers),
        (4, 1)
    );

    let one = at(1);
    assert_eq!(one.summary.planned, 200);
    for (i, inst) in manifest.instances.iter().enumerate() {
        let p4 = canon(four.instances[i].plan.clone().expect("planned at 4"));
        let p1 = canon(one.instances[i].plan.clone().expect("planned at 1"));
        let oracle = canon(sequential_plan(inst, None));
        assert_eq!(p4, oracle.clone(), "{} at 4 workers", inst.id);
        assert_eq!(p1, oracle, "{} at 1 worker", inst.id);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// One corrupt entry in the shared sharded profile cache: only that
/// shard quarantines, only that core rebuilds, every plan is unchanged,
/// and the rest of the fleet completes from cache.
#[test]
fn corrupt_shard_entry_is_quarantined_without_sinking_the_fleet() {
    let dir = scratch("corrupt");
    let path = write_soc_file(&dir, "cc", &[(vec![5, 8], 2, 2, 4), (vec![9], 3, 1, 3)]);
    let cache = dir.join("profile-cache");
    let manifest = Manifest::parse(&format!(
        "soc {} widths=8 seeds=1,2 sample=3 mcand=3\n",
        path.display()
    ))
    .expect("manifest parses");
    let opts = FleetOptions {
        workers: 2,
        profile_cache: Some(cache.clone()),
        ..FleetOptions::default()
    };

    let first = run_fleet(&manifest, &opts);
    assert_eq!(first.summary.planned, 2);
    assert_eq!(
        first.summary.stats.profile_misses, 4,
        "cold: 2 cores x 2 seeds"
    );
    let entries = profile_cache_entries(&cache);
    assert_eq!(entries.len(), 4);

    // Flip a digit in one entry's data rows; the body checksum catches it.
    let victim = &entries[0];
    let text = std::fs::read_to_string(victim).expect("read victim");
    let flipped: String = text
        .lines()
        .map(|l| {
            if l.starts_with('#') || l.starts_with("w,") || l.is_empty() {
                l.to_string()
            } else {
                let mut s = l.to_string();
                let last = s.pop().expect("non-empty row");
                s.push(if last == '9' { '8' } else { '9' });
                s
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    std::fs::write(victim, flipped).expect("corrupt victim");

    let second = run_fleet(&manifest, &opts);
    assert_eq!(second.summary.planned, 2, "the fleet completes");
    assert_eq!(
        second.summary.stats.profile_misses, 1,
        "only the corrupt core rebuilds"
    );
    assert_eq!(second.summary.stats.profile_hits, 3, "the rest hit cache");
    let quarantined = quarantined_profiles(&cache);
    assert_eq!(quarantined.len(), 1, "exactly one entry quarantined");
    assert_eq!(
        quarantined[0].parent().and_then(Path::parent),
        victim.parent(),
        "quarantine lives in the victim's own shard"
    );
    for (before, after) in first.instances.iter().zip(&second.instances) {
        assert!(matches!(after.outcome, InstanceOutcome::Planned(_)));
        assert_eq!(
            canon(before.plan.clone().expect("first run planned")),
            canon(after.plan.clone().expect("second run planned")),
            "{}",
            after.id
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
