//! LFSR and phase-shifter models, both concrete and symbolic.
//!
//! A Fibonacci LFSR of length `L` expands a seed into a pseudo-random
//! stream; a phase shifter (one XOR combination of LFSR cells per scan
//! chain) decorrelates the `m` chain inputs produced each cycle. Because
//! everything is linear over GF(2), each produced bit is a known linear
//! function of the seed — the *symbolic* simulation tracks those functions
//! so the reseeding compressor can set up its linear system.

use soc_model::SplitMix64;

use crate::gf2::Gf2Vec;

/// A Fibonacci LFSR defined by its length and feedback tap positions.
///
/// Cell 0 is the output end; each step computes the XOR of the tap cells,
/// shifts every cell down by one, and inserts the feedback at the top.
///
/// # Examples
///
/// ```
/// use lfsr::Lfsr;
///
/// let lfsr = Lfsr::with_default_taps(16);
/// assert_eq!(lfsr.len(), 16);
/// let mut state = vec![false; 16];
/// state[0] = true;
/// lfsr.step(&mut state);
/// assert_eq!(state.len(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    len: usize,
    taps: Vec<usize>,
}

impl Lfsr {
    /// Creates an LFSR with explicit feedback taps.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`, `taps` is empty, or a tap is out of range.
    pub fn new(len: usize, taps: Vec<usize>) -> Self {
        assert!(len > 0, "LFSR length must be positive");
        assert!(!taps.is_empty(), "LFSR needs at least one feedback tap");
        assert!(
            taps.iter().all(|&t| t < len),
            "tap positions must be below the length"
        );
        Lfsr { len, taps }
    }

    /// Creates an LFSR with a default tap set: cell 0 plus a small spread
    /// of additional taps. Not guaranteed primitive, but reseeding only
    /// needs linear independence over the constrained window, which the
    /// compressor verifies by construction.
    pub fn with_default_taps(len: usize) -> Self {
        let mut taps = vec![0];
        for t in [len / 5 + 1, len / 2, (4 * len) / 5] {
            if t > 0 && t < len && !taps.contains(&t) {
                taps.push(t);
            }
        }
        Lfsr::new(len, taps)
    }

    /// LFSR length (seed bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` only for the (disallowed) zero-length LFSR; present
    /// for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The feedback tap positions.
    pub fn taps(&self) -> &[usize] {
        &self.taps
    }

    /// Advances a concrete state by one cycle.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != self.len()`.
    pub fn step(&self, state: &mut [bool]) {
        assert_eq!(state.len(), self.len, "state width mismatch");
        let fb = self.taps.iter().fold(false, |acc, &t| acc ^ state[t]);
        state.copy_within(1.., 0);
        state[self.len - 1] = fb;
    }

    /// Advances a symbolic state (each cell a linear function of the seed)
    /// by one cycle.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != self.len()`.
    pub fn step_symbolic(&self, state: &mut Vec<Gf2Vec>) {
        assert_eq!(state.len(), self.len, "state width mismatch");
        let mut fb = state[self.taps[0]].clone();
        for &t in &self.taps[1..] {
            fb.xor_assign(&state[t]);
        }
        state.remove(0);
        state.push(fb);
    }
}

/// A phase shifter: per scan chain, an XOR of a few LFSR cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseShifter {
    combos: Vec<Vec<usize>>,
}

impl PhaseShifter {
    /// A deterministic pseudo-random phase shifter for `chains` chains over
    /// an `lfsr_len`-cell LFSR, 3 XOR taps per chain.
    ///
    /// # Panics
    ///
    /// Panics if `chains == 0` or `lfsr_len == 0`.
    pub fn random(chains: usize, lfsr_len: usize, seed: u64) -> Self {
        assert!(chains > 0, "need at least one chain");
        assert!(lfsr_len > 0, "LFSR length must be positive");
        let mut rng = SplitMix64::new(seed ^ 0x9e3779b97f4a7c15);
        let combos = (0..chains)
            .map(|_| {
                let mut taps = Vec::with_capacity(3);
                while taps.len() < 3.min(lfsr_len) {
                    let t = rng.next_below(lfsr_len as u64) as usize;
                    if !taps.contains(&t) {
                        taps.push(t);
                    }
                }
                taps
            })
            .collect();
        PhaseShifter { combos }
    }

    /// Number of chains driven.
    pub fn chains(&self) -> usize {
        self.combos.len()
    }

    /// Concrete output for chain `k` given an LFSR state.
    pub fn output(&self, k: usize, state: &[bool]) -> bool {
        self.combos[k].iter().fold(false, |acc, &t| acc ^ state[t])
    }

    /// Symbolic output for chain `k`: the linear function of the seed.
    pub fn output_symbolic(&self, k: usize, state: &[Gf2Vec]) -> Gf2Vec {
        let mut v = state[self.combos[k][0]].clone();
        for &t in &self.combos[k][1..] {
            v.xor_assign(&state[t]);
        }
        v
    }
}

/// The identity symbolic state: cell `i` equals seed bit `i`.
pub fn symbolic_reset(len: usize) -> Vec<Gf2Vec> {
    (0..len).map(|i| Gf2Vec::unit(len, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbolic_matches_concrete() {
        let lfsr = Lfsr::with_default_taps(24);
        let ps = PhaseShifter::random(5, 24, 7);
        // Random seed.
        let seed: Vec<bool> = (0..24).map(|i| (i * 13 + 5) % 7 < 3).collect();

        let mut concrete = seed.clone();
        let mut symbolic = symbolic_reset(24);
        for _cycle in 0..40 {
            for k in 0..5 {
                let sym = ps.output_symbolic(k, &symbolic);
                let predicted = (0..24).filter(|&i| sym.get(i) && seed[i]).count() % 2 == 1;
                assert_eq!(predicted, ps.output(k, &concrete), "chain {k}");
            }
            lfsr.step(&mut concrete);
            lfsr.step_symbolic(&mut symbolic);
        }
    }

    #[test]
    fn stream_is_not_trivially_constant() {
        let lfsr = Lfsr::with_default_taps(16);
        let mut state = vec![false; 16];
        state[3] = true;
        let mut seen_true = false;
        let mut seen_false = false;
        for _ in 0..100 {
            lfsr.step(&mut state);
            seen_true |= state[0];
            seen_false |= !state[0];
        }
        assert!(seen_true && seen_false);
    }

    #[test]
    fn default_taps_valid_for_small_lengths() {
        for len in 1..40 {
            let l = Lfsr::with_default_taps(len);
            assert!(l.taps().iter().all(|&t| t < len), "len {len}");
        }
    }

    #[test]
    fn phase_shifter_outputs_differ_between_chains() {
        let ps = PhaseShifter::random(8, 32, 1);
        assert_eq!(ps.chains(), 8);
        // Taps differ between at least some chains.
        let distinct: std::collections::BTreeSet<_> =
            (0..8).map(|k| format!("{:?}", ps.combos[k])).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    #[should_panic(expected = "state width mismatch")]
    fn wrong_state_width_panics() {
        Lfsr::with_default_taps(8).step(&mut [false; 4]);
    }
}
