//! GF(2) linear algebra: packed bit vectors and an incremental Gaussian
//! solver.
//!
//! LFSR reseeding reduces to solving a linear system over GF(2): every care
//! bit of a test cube is one linear constraint on the seed. The solver here
//! keeps a row-echelon basis and accepts constraints incrementally, so a
//! compressor can stream constraints and detect unsolvability early.

use std::fmt;

/// A packed GF(2) row vector of fixed width.
///
/// # Examples
///
/// ```
/// use lfsr::Gf2Vec;
///
/// let mut v = Gf2Vec::zero(100);
/// v.set(3, true);
/// v.set(99, true);
/// assert!(v.get(3) && v.get(99) && !v.get(4));
/// let w = v.clone();
/// v.xor_assign(&w);
/// assert!(v.is_zero());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Gf2Vec {
    words: Vec<u64>,
    len: usize,
}

impl Gf2Vec {
    /// The zero vector of `len` bits.
    pub fn zero(len: usize) -> Self {
        Gf2Vec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A unit vector with bit `i` set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn unit(len: usize, i: usize) -> Self {
        let mut v = Gf2Vec::zero(len);
        v.set(i, true);
        v
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` for a zero-length vector.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// In-place XOR with `other`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[inline]
    pub fn xor_assign(&mut self, other: &Gf2Vec) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Returns `true` when every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Index of the lowest set bit, or `None` for the zero vector.
    pub fn first_set(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Parity of the AND with `other` (the GF(2) inner product).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn dot(&self, other: &Gf2Vec) -> bool {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .fold(0u32, |acc, (a, b)| acc ^ (a & b).count_ones())
            & 1
            == 1
    }

    /// Number of set bits.
    pub fn weight(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

impl fmt::Display for Gf2Vec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

/// Incremental GF(2) solver for systems `A·x = b`.
///
/// Constraints arrive one at a time; each is reduced against the current
/// row-echelon basis. An inconsistent constraint is reported immediately.
///
/// # Examples
///
/// ```
/// use lfsr::{Gf2Solver, Gf2Vec};
///
/// // x0 ^ x1 = 1, x1 = 1  →  x0 = 0, x1 = 1.
/// let mut s = Gf2Solver::new(2);
/// let mut r01 = Gf2Vec::zero(2);
/// r01.set(0, true);
/// r01.set(1, true);
/// s.add_constraint(r01, true)?;
/// s.add_constraint(Gf2Vec::unit(2, 1), true)?;
/// let x = s.solution();
/// assert_eq!(x, vec![false, true]);
/// # Ok::<(), lfsr::InconsistentSystem>(())
/// ```
#[derive(Debug, Clone)]
pub struct Gf2Solver {
    cols: usize,
    /// `pivot[j]` holds a row whose leading 1 is at column `j`.
    pivots: Vec<Option<(Gf2Vec, bool)>>,
    rank: usize,
}

impl Gf2Solver {
    /// A solver over `cols` unknowns.
    pub fn new(cols: usize) -> Self {
        Gf2Solver {
            cols,
            pivots: vec![None; cols],
            rank: 0,
        }
    }

    /// Number of unknowns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Current rank of the constraint system.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Adds the constraint `row · x = rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`InconsistentSystem`] when the constraint contradicts the
    /// ones already added.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn add_constraint(
        &mut self,
        mut row: Gf2Vec,
        mut rhs: bool,
    ) -> Result<(), InconsistentSystem> {
        assert_eq!(row.len(), self.cols, "constraint width mismatch");
        while let Some(lead) = row.first_set() {
            match &self.pivots[lead] {
                Some((pivot_row, pivot_rhs)) => {
                    row.xor_assign(pivot_row);
                    rhs ^= pivot_rhs;
                }
                None => {
                    self.pivots[lead] = Some((row, rhs));
                    self.rank += 1;
                    return Ok(());
                }
            }
        }
        if rhs {
            Err(InconsistentSystem)
        } else {
            Ok(()) // redundant constraint
        }
    }

    /// A solution of the system, with free variables set to 0.
    ///
    /// Back-substitutes through the echelon basis, so the result satisfies
    /// every added constraint.
    pub fn solution(&self) -> Vec<bool> {
        let mut x = vec![false; self.cols];
        // Pivots with larger leading columns must be resolved first.
        for j in (0..self.cols).rev() {
            if let Some((row, rhs)) = &self.pivots[j] {
                // row = e_j + Σ later terms → x_j = rhs ^ Σ row_k x_k (k > j).
                let mut v = *rhs;
                for (k, &xk) in x.iter().enumerate().skip(j + 1) {
                    if row.get(k) && xk {
                        v = !v;
                    }
                }
                x[j] = v;
            }
        }
        x
    }
}

/// Error: a constraint contradicts the system built so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InconsistentSystem;

impl fmt::Display for InconsistentSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "linear system over GF(2) is inconsistent")
    }
}

impl std::error::Error for InconsistentSystem {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_basics() {
        let mut v = Gf2Vec::zero(130);
        assert!(v.is_zero());
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert_eq!(v.weight(), 3);
        assert_eq!(v.first_set(), Some(0));
        v.set(0, false);
        assert_eq!(v.first_set(), Some(64));
    }

    #[test]
    fn dot_product_is_parity_of_overlap() {
        let mut a = Gf2Vec::zero(70);
        let mut b = Gf2Vec::zero(70);
        for i in [1usize, 5, 69] {
            a.set(i, true);
        }
        for i in [5usize, 69] {
            b.set(i, true);
        }
        assert!(!a.dot(&b)); // overlap {5, 69} → even
        b.set(1, true);
        assert!(a.dot(&b)); // overlap {1, 5, 69} → odd
    }

    #[test]
    fn solver_solves_small_system() {
        // x0^x2 = 1; x1 = 0; x0^x1^x2 = 1.
        let mut s = Gf2Solver::new(3);
        let mut r = Gf2Vec::zero(3);
        r.set(0, true);
        r.set(2, true);
        s.add_constraint(r, true).unwrap();
        s.add_constraint(Gf2Vec::unit(3, 1), false).unwrap();
        let mut r2 = Gf2Vec::zero(3);
        r2.set(0, true);
        r2.set(1, true);
        r2.set(2, true);
        s.add_constraint(r2, true).unwrap();
        let x = s.solution();
        assert!(x[0] ^ x[2]);
        assert!(!x[1]);
        assert_eq!(s.rank(), 2);
    }

    #[test]
    fn detects_inconsistency() {
        let mut s = Gf2Solver::new(2);
        let mut r = Gf2Vec::zero(2);
        r.set(0, true);
        r.set(1, true);
        s.add_constraint(r.clone(), true).unwrap();
        s.add_constraint(Gf2Vec::unit(2, 0), false).unwrap();
        // Now x1 must be 1; claiming x1 = 0 contradicts.
        let err = s.add_constraint(Gf2Vec::unit(2, 1), false).unwrap_err();
        assert_eq!(err, InconsistentSystem);
    }

    #[test]
    fn redundant_constraints_are_free() {
        let mut s = Gf2Solver::new(4);
        s.add_constraint(Gf2Vec::unit(4, 2), true).unwrap();
        s.add_constraint(Gf2Vec::unit(4, 2), true).unwrap();
        assert_eq!(s.rank(), 1);
    }

    #[test]
    fn solution_satisfies_random_system() {
        // Pseudo-random dense system with a known solution.
        let cols = 60;
        let secret: Vec<bool> = (0..cols).map(|i| (i * 7 + 3) % 5 < 2).collect();
        let mut s = Gf2Solver::new(cols);
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rows = Vec::new();
        for _ in 0..50 {
            let mut row = Gf2Vec::zero(cols);
            for j in 0..cols {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state >> 62 & 1 == 1 {
                    row.set(j, true);
                }
            }
            let rhs = (0..cols).filter(|&j| row.get(j) && secret[j]).count() % 2 == 1;
            rows.push((row.clone(), rhs));
            s.add_constraint(row, rhs).unwrap();
        }
        let x = s.solution();
        for (row, rhs) in rows {
            let got = (0..cols).filter(|&j| row.get(j) && x[j]).count() % 2 == 1;
            assert_eq!(got, rhs);
        }
    }

    #[test]
    fn display_renders_bits() {
        let mut v = Gf2Vec::zero(4);
        v.set(1, true);
        assert_eq!(v.to_string(), "0100");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        Gf2Vec::zero(4).get(4);
    }
}
