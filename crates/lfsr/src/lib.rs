//! LFSR-reseeding test-data compression and the GF(2) substrate beneath
//! it.
//!
//! This crate provides the comparison baseline the paper measures against
//! in Table 2 (scan-slice LFSR reseeding, Wang/Chakrabarty/Wang DATE
//! 2007): a Fibonacci [`Lfsr`] with a [`PhaseShifter`] expands per-pattern
//! seeds into wrapper-chain streams, and seeds are computed by solving the
//! care-bit constraints with an incremental GF(2) [`Gf2Solver`]. Every
//! computed seed is verified by concrete re-simulation.
//!
//! # Examples
//!
//! ```
//! use lfsr::{compress_reseeding, ReseedOptions};
//! use soc_model::{Core, CubeSynthesis};
//!
//! let mut core = Core::builder("c")
//!     .inputs(8)
//!     .flexible_cells(256, 32)
//!     .pattern_count(6)
//!     .care_density(0.08)
//!     .build()?;
//! let cubes = CubeSynthesis::new(0.08).synthesize(&core, 5);
//! core.attach_test_set(cubes)?;
//!
//! let result = compress_reseeding(&core, 16, 8, &ReseedOptions::default())?;
//! assert!(result.volume_bits < core.initial_volume_bits());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod generator;
mod gf2;
mod misr;
mod reseed;

pub use generator::{symbolic_reset, Lfsr, PhaseShifter};
pub use gf2::{Gf2Solver, Gf2Vec, InconsistentSystem};
pub use misr::{compact_responses, Misr};
pub use reseed::{compress_reseeding, ReseedError, ReseedOptions, ReseedResult};
