//! Multiple-input signature register (MISR) response compaction.
//!
//! The paper's Fig. 1 shows an optional compactor on the wrapper's output
//! side: responses leave the core on `m` wrapper chains per cycle and are
//! folded into a short signature instead of being compared bit-by-bit on
//! the tester. This module provides the standard linear MISR model: every
//! cycle the register shifts (with LFSR feedback) and XORs the `m`
//! response bits in — so a final signature of `L` bits stands in for the
//! whole response stream, with aliasing probability ≈ 2^−L.
//!
//! Guarantees (tested):
//! * linearity — the signature of `a ⊕ b` is `sig(a) ⊕ sig(b)` for
//!   equal-length streams starting from the zero state;
//! * any *single-bit* response error always changes the signature (the
//!   error polynomial has exactly one term, and the transition matrix is
//!   invertible for the tap sets used here).

use std::fmt;

use crate::generator::Lfsr;

/// A multiple-input signature register over `m` inputs with an `L`-cell
/// register.
///
/// # Examples
///
/// ```
/// use lfsr::Misr;
///
/// let mut misr = Misr::new(16, 4);
/// misr.absorb(&[true, false, true, true]);
/// misr.absorb(&[false, false, true, false]);
/// let sig = misr.signature().to_vec();
/// assert_eq!(sig.len(), 16);
///
/// // The same stream reproduces the same signature…
/// let mut again = Misr::new(16, 4);
/// again.absorb(&[true, false, true, true]);
/// again.absorb(&[false, false, true, false]);
/// assert_eq!(again.signature(), &sig[..]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    lfsr: Lfsr,
    inputs: usize,
    state: Vec<bool>,
    cycles: u64,
}

impl Misr {
    /// Creates a zero-initialized MISR with `len` cells and `inputs`
    /// parallel inputs, using the default feedback taps for `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`, `inputs == 0`, or `inputs > len` (each input
    /// needs its own injection cell).
    pub fn new(len: usize, inputs: usize) -> Self {
        assert!(inputs > 0, "MISR needs at least one input");
        assert!(
            inputs <= len,
            "MISR with {len} cells cannot inject {inputs} inputs"
        );
        Misr {
            lfsr: Lfsr::with_default_taps(len),
            inputs,
            state: vec![false; len],
            cycles: 0,
        }
    }

    /// Register length in cells.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// Returns `false`; a MISR always has at least one cell.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of parallel inputs.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Cycles absorbed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Absorbs one response slice (`inputs` bits): shift with feedback,
    /// then XOR the inputs into evenly spread cells.
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() != self.inputs()`.
    pub fn absorb(&mut self, slice: &[bool]) {
        assert_eq!(slice.len(), self.inputs, "response slice width mismatch");
        self.lfsr.step(&mut self.state);
        let stride = self.state.len() / self.inputs;
        for (i, &bit) in slice.iter().enumerate() {
            if bit {
                let cell = i * stride;
                self.state[cell] = !self.state[cell];
            }
        }
        self.cycles += 1;
    }

    /// Absorbs a whole stream of slices.
    ///
    /// # Panics
    ///
    /// Panics if any slice has the wrong width.
    pub fn absorb_stream<'a>(&mut self, slices: impl IntoIterator<Item = &'a [bool]>) {
        for s in slices {
            self.absorb(s);
        }
    }

    /// The current signature.
    pub fn signature(&self) -> &[bool] {
        &self.state
    }

    /// Resets to the all-zero state.
    pub fn reset(&mut self) {
        self.state.fill(false);
        self.cycles = 0;
    }

    /// Upper bound on the aliasing probability after absorbing a long
    /// random error stream: `2^−L`.
    pub fn aliasing_probability(&self) -> f64 {
        (0.5f64).powi(self.state.len() as i32)
    }
}

impl fmt::Display for Misr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MISR-{}×{} after {} cycles: ",
            self.state.len(),
            self.inputs,
            self.cycles
        )?;
        for &b in &self.state {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

/// Compacts a response stream in one call and returns the signature.
///
/// # Panics
///
/// Panics on inconsistent slice widths (see [`Misr::absorb`]).
pub fn compact_responses(len: usize, inputs: usize, slices: &[Vec<bool>]) -> Vec<bool> {
    let mut misr = Misr::new(len, inputs);
    for s in slices {
        misr.absorb(s);
    }
    misr.signature().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_model::SplitMix64;

    fn random_stream(cycles: usize, width: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut rng = SplitMix64::new(seed);
        (0..cycles)
            .map(|_| (0..width).map(|_| rng.next_bool(0.5)).collect())
            .collect()
    }

    #[test]
    fn deterministic_signatures() {
        let s = random_stream(100, 8, 3);
        assert_eq!(compact_responses(24, 8, &s), compact_responses(24, 8, &s));
    }

    #[test]
    fn different_streams_get_different_signatures() {
        let a = random_stream(200, 8, 1);
        let b = random_stream(200, 8, 2);
        assert_ne!(compact_responses(32, 8, &a), compact_responses(32, 8, &b));
    }

    #[test]
    fn single_bit_error_always_detected() {
        // Flip each bit of a short stream in turn; the signature must
        // change every time (single-term error polynomial).
        let stream = random_stream(40, 4, 9);
        let golden = compact_responses(20, 4, &stream);
        for cycle in 0..stream.len() {
            for bit in 0..4 {
                let mut bad = stream.clone();
                bad[cycle][bit] = !bad[cycle][bit];
                assert_ne!(
                    compact_responses(20, 4, &bad),
                    golden,
                    "missed error at cycle {cycle} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn linearity_over_gf2() {
        let a = random_stream(60, 6, 5);
        let b = random_stream(60, 6, 6);
        let xor: Vec<Vec<bool>> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| x.iter().zip(y).map(|(p, q)| p ^ q).collect())
            .collect();
        let sa = compact_responses(30, 6, &a);
        let sb = compact_responses(30, 6, &b);
        let sx = compact_responses(30, 6, &xor);
        let combined: Vec<bool> = sa.iter().zip(&sb).map(|(p, q)| p ^ q).collect();
        assert_eq!(sx, combined);
    }

    #[test]
    fn reset_restores_zero_state() {
        let mut m = Misr::new(16, 4);
        m.absorb(&[true, true, false, true]);
        assert!(m.signature().iter().any(|&b| b));
        m.reset();
        assert!(m.signature().iter().all(|&b| !b));
        assert_eq!(m.cycles(), 0);
    }

    #[test]
    fn aliasing_probability_shrinks_with_length() {
        assert!(Misr::new(32, 4).aliasing_probability() < Misr::new(16, 4).aliasing_probability());
        assert!((Misr::new(10, 2).aliasing_probability() - 2f64.powi(-10)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot inject")]
    fn too_many_inputs_panics() {
        Misr::new(4, 8);
    }

    #[test]
    fn display_shows_bits() {
        let mut m = Misr::new(8, 2);
        m.absorb(&[true, false]);
        let s = m.to_string();
        assert!(s.contains("MISR-8×2"));
        assert!(s.contains('1'));
    }
}
