//! Scan-slice LFSR-reseeding compression (the baseline standing in for
//! Wang, Chakrabarty & Wang, DATE 2007 — comparator [13] of the paper).
//!
//! Per test pattern, a seed of `L` bits is loaded into an LFSR whose
//! phase-shifted outputs drive the `m` wrapper chains; the seed is computed
//! by solving the GF(2) linear system imposed by the pattern's care bits.
//! A shadow register lets the next seed load overlap the current pattern's
//! expansion, so the per-pattern time is `max(ceil(L/w), s_i)` cycles for
//! `w` ATE channels.
//!
//! Compressed volume is `patterns × L` bits — excellent for low care-bit
//! densities, but only modest for the ISCAS'89-style benchmarks whose
//! cubes are ~44–66% specified, which is exactly the regime where the
//! paper's Table 2 comparisons live.

use std::collections::BTreeMap;
use std::fmt;

use soc_model::{Core, Trit};
use wrapper::design_wrapper;

use crate::generator::{symbolic_reset, Lfsr, PhaseShifter};
use crate::gf2::Gf2Solver;

/// Options for [`compress_reseeding`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReseedOptions {
    /// Extra seed bits beyond the densest pattern's care-bit count
    /// (linear-solvability headroom). Default 20, the classic rule of
    /// thumb.
    pub margin: usize,
    /// LFSR growth factor applied when some pattern proves unsolvable.
    pub growth: f64,
    /// Attempts before giving up.
    pub max_attempts: u32,
    /// Evaluate only this many evenly spaced patterns, scaling volume and
    /// time to the full set (`None` = exact).
    pub pattern_sample: Option<usize>,
    /// Seed for the phase-shifter wiring.
    pub hardware_seed: u64,
    /// Verify each computed seed by concrete simulation (on by default;
    /// the check is cheap relative to solving).
    pub verify: bool,
}

impl Default for ReseedOptions {
    fn default() -> Self {
        ReseedOptions {
            margin: 20,
            growth: 1.5,
            max_attempts: 4,
            pattern_sample: None,
            hardware_seed: 0xDA7E_2007,
            verify: true,
        }
    }
}

/// Outcome of compressing one core by LFSR reseeding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReseedResult {
    /// Chosen LFSR length `L` (bits per seed).
    pub lfsr_len: usize,
    /// Wrapper chains driven by the phase shifter.
    pub chains: u32,
    /// Number of seeds (= patterns evaluated, scaled to the full set).
    pub seeds: u64,
    /// Compressed volume in bits: `patterns × L`.
    pub volume_bits: u64,
    /// Test time in cycles on `w` ATE channels:
    /// `ceil(L/w) + Σ_p max(ceil(L/w), s_i) + p + min(s_i, s_o)`.
    pub test_time: u64,
}

/// Error produced by [`compress_reseeding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReseedError {
    /// The core carries no test cubes.
    NoTestSet,
    /// Some pattern stayed unsolvable even at the largest LFSR tried.
    Unsolvable {
        /// The last LFSR length attempted.
        lfsr_len: usize,
    },
}

impl fmt::Display for ReseedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReseedError::NoTestSet => write!(f, "core has no attached test set"),
            ReseedError::Unsolvable { lfsr_len } => {
                write!(f, "a pattern remained unsolvable at LFSR length {lfsr_len}")
            }
        }
    }
}

impl std::error::Error for ReseedError {}

/// Compresses `core`'s test set by LFSR reseeding, with `m` wrapper chains
/// and `ate_width` tester channels feeding the seed register.
///
/// # Errors
///
/// Returns [`ReseedError::NoTestSet`] when the core carries no cubes and
/// [`ReseedError::Unsolvable`] when solvability cannot be reached within
/// the configured attempts.
///
/// # Panics
///
/// Panics if `ate_width == 0` or `m == 0`.
pub fn compress_reseeding(
    core: &Core,
    m: u32,
    ate_width: u32,
    opts: &ReseedOptions,
) -> Result<ReseedResult, ReseedError> {
    assert!(ate_width > 0, "ATE width must be positive");
    assert!(m > 0, "chain count must be positive");
    let test_set = core.test_set().ok_or(ReseedError::NoTestSet)?;
    let design = design_wrapper(core, m);
    let m_eff = design.chain_count() as usize;
    let s_i = design.scan_in_length();

    let p = test_set.pattern_count();
    let sample: Vec<usize> = match opts.pattern_sample {
        Some(s) if s < p => {
            let mut idx: Vec<usize> = (0..s).map(|i| i * p / s).collect();
            idx.dedup();
            idx
        }
        _ => (0..p).collect(),
    };

    // Care positions per sampled pattern, as (cycle, chain, value).
    let mut constraints: Vec<Vec<(u64, usize, bool)>> = Vec::with_capacity(sample.len());
    let mut max_care = 0usize;
    for &pi in &sample {
        let cube = test_set.pattern(pi).expect("sampled index in range");
        let mut list = Vec::new();
        for (k, chain) in design.chains().iter().enumerate() {
            for depth in 0..chain.load_len() {
                let pos = chain.position_at(depth).expect("depth < load_len");
                match cube.get(pos as usize) {
                    Trit::One => list.push((depth, k, true)),
                    Trit::Zero => list.push((depth, k, false)),
                    Trit::X => {}
                }
            }
        }
        max_care = max_care.max(list.len());
        constraints.push(list);
    }

    let mut lfsr_len = (max_care + opts.margin).max(ate_width as usize).max(8);
    for _attempt in 0..opts.max_attempts {
        match try_solve(&constraints, lfsr_len, m_eff, s_i, opts) {
            Ok(()) => {
                let load = (lfsr_len as u64).div_ceil(u64::from(ate_width));
                let per_pattern = load.max(s_i);
                let fill_drain = s_i.min(design.scan_out_length());
                return Ok(ReseedResult {
                    lfsr_len,
                    chains: design.chain_count(),
                    seeds: u64::from(p as u32),
                    volume_bits: u64::from(p as u32) * lfsr_len as u64,
                    test_time: load + per_pattern * p as u64 + p as u64 + fill_drain,
                });
            }
            Err(()) => {
                lfsr_len = ((lfsr_len as f64 * opts.growth) as usize).max(lfsr_len + 8);
            }
        }
    }
    Err(ReseedError::Unsolvable { lfsr_len })
}

/// Attempts to solve every sampled pattern at the given LFSR length.
fn try_solve(
    constraints: &[Vec<(u64, usize, bool)>],
    lfsr_len: usize,
    chains: usize,
    s_i: u64,
    opts: &ReseedOptions,
) -> Result<(), ()> {
    let lfsr = Lfsr::with_default_taps(lfsr_len);
    let ps = PhaseShifter::random(chains, lfsr_len, opts.hardware_seed);

    // Union of (cycle, chain) positions needing symbolic rows. BTreeMap:
    // nothing iterates it today, but keeping the container ordered means a
    // future drain cannot silently become solver-order-dependent.
    let mut needed: BTreeMap<(u64, usize), crate::gf2::Gf2Vec> = BTreeMap::new();
    for list in constraints {
        for &(t, k, _) in list {
            needed
                .entry((t, k))
                .or_insert_with(|| crate::gf2::Gf2Vec::zero(0));
        }
    }

    // One symbolic sweep fills every needed row (the symbolic stream is
    // pattern-independent).
    let mut state = symbolic_reset(lfsr_len);
    for t in 0..s_i {
        for k in 0..chains {
            if let Some(slot) = needed.get_mut(&(t, k)) {
                *slot = ps.output_symbolic(k, &state);
            }
        }
        lfsr.step_symbolic(&mut state);
    }

    for list in constraints {
        let mut solver = Gf2Solver::new(lfsr_len);
        for &(t, k, value) in list {
            let row = needed.get(&(t, k)).expect("row precomputed").clone();
            if solver.add_constraint(row, value).is_err() {
                return Err(());
            }
        }
        if opts.verify {
            let seed = solver.solution();
            verify_seed(&lfsr, &ps, &seed, list, s_i);
        }
    }
    Ok(())
}

/// Concrete simulation check: the expanded stream must honor every care
/// bit. Panics on mismatch — that would be a solver bug, not bad input.
fn verify_seed(
    lfsr: &Lfsr,
    ps: &PhaseShifter,
    seed: &[bool],
    constraints: &[(u64, usize, bool)],
    s_i: u64,
) {
    let mut by_cycle: BTreeMap<u64, Vec<(usize, bool)>> = BTreeMap::new();
    for &(t, k, v) in constraints {
        by_cycle.entry(t).or_default().push((k, v));
    }
    let mut state = seed.to_vec();
    for t in 0..s_i {
        if let Some(list) = by_cycle.get(&t) {
            for &(k, expected) in list {
                assert_eq!(
                    ps.output(k, &state),
                    expected,
                    "reseeding solver produced a seed violating cycle {t} chain {k}"
                );
            }
        }
        lfsr.step(&mut state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_model::CubeSynthesis;

    fn prepared(cells: u32, patterns: u32, density: f64) -> Core {
        let mut core = Core::builder("r")
            .inputs(10)
            .outputs(10)
            .flexible_cells(cells, 64)
            .pattern_count(patterns)
            .care_density(density)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(density).synthesize(&core, 21);
        core.attach_test_set(ts).unwrap();
        core
    }

    #[test]
    fn compresses_sparse_core() {
        let core = prepared(400, 8, 0.05);
        let r = compress_reseeding(&core, 16, 8, &ReseedOptions::default()).unwrap();
        assert!(r.lfsr_len >= 8);
        assert_eq!(r.seeds, 8);
        assert_eq!(r.volume_bits, 8 * r.lfsr_len as u64);
        // Sparse cubes: seeds are much smaller than raw patterns.
        assert!(r.volume_bits < core.initial_volume_bits() / 3);
        assert!(r.test_time > 0);
    }

    #[test]
    fn dense_cubes_need_long_lfsrs() {
        let sparse = prepared(300, 6, 0.05);
        let dense = prepared(300, 6, 0.6);
        let opts = ReseedOptions::default();
        let rs = compress_reseeding(&sparse, 16, 8, &opts).unwrap();
        let rd = compress_reseeding(&dense, 16, 8, &opts).unwrap();
        assert!(
            rd.lfsr_len > 3 * rs.lfsr_len,
            "{} vs {}",
            rd.lfsr_len,
            rs.lfsr_len
        );
    }

    #[test]
    fn seeds_are_verified_by_concrete_simulation() {
        // `verify: true` (default) panics inside on any solver bug; just
        // exercising it on a moderately dense core is the assertion.
        let core = prepared(200, 10, 0.3);
        compress_reseeding(&core, 8, 4, &ReseedOptions::default()).unwrap();
    }

    #[test]
    fn sampling_scales_volume_to_full_set() {
        let core = prepared(300, 20, 0.1);
        let exact = compress_reseeding(&core, 16, 8, &ReseedOptions::default()).unwrap();
        let sampled = compress_reseeding(
            &core,
            16,
            8,
            &ReseedOptions {
                pattern_sample: Some(5),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(sampled.seeds, 20);
        // Same order of magnitude (L may differ slightly).
        let ratio = sampled.volume_bits as f64 / exact.volume_bits as f64;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn wider_ate_interface_never_slower() {
        let core = prepared(300, 10, 0.2);
        let opts = ReseedOptions::default();
        let narrow = compress_reseeding(&core, 16, 2, &opts).unwrap();
        let wide = compress_reseeding(&core, 16, 16, &opts).unwrap();
        assert!(wide.test_time <= narrow.test_time);
    }

    #[test]
    fn missing_test_set_is_reported() {
        let core = Core::builder("bare")
            .inputs(4)
            .pattern_count(2)
            .build()
            .unwrap();
        assert_eq!(
            compress_reseeding(&core, 4, 2, &ReseedOptions::default()),
            Err(ReseedError::NoTestSet)
        );
    }

    #[test]
    fn error_display() {
        assert!(ReseedError::Unsolvable { lfsr_len: 99 }
            .to_string()
            .contains("99"));
        assert!(ReseedError::NoTestSet.to_string().contains("test set"));
    }
}
