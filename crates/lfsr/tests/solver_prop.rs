//! Property tests for the GF(2) solver (against brute force on small
//! systems) and for the reseeding pipeline (solved seeds re-simulate
//! correctly — enforced internally — and solvability is monotone in the
//! LFSR length).

#![forbid(unsafe_code)]

use proptest::prelude::*;

use lfsr::{compress_reseeding, Gf2Solver, Gf2Vec, Lfsr, PhaseShifter, ReseedOptions};
use soc_model::{Core, CubeSynthesis, SplitMix64, TestSet};

/// Brute force: does any assignment satisfy all constraints?
fn brute_force_solvable(cols: usize, rows: &[(u32, bool)]) -> bool {
    (0u32..(1 << cols)).any(|x| {
        rows.iter()
            .all(|&(mask, rhs)| ((x & mask).count_ones() % 2 == 1) == rhs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solver_agrees_with_brute_force(
        cols in 1usize..10,
        rows in proptest::collection::vec((any::<u32>(), any::<bool>()), 0..12),
    ) {
        let rows: Vec<(u32, bool)> = rows
            .into_iter()
            .map(|(m, r)| (m & ((1 << cols) - 1), r))
            .collect();
        let mut solver = Gf2Solver::new(cols);
        let mut consistent = true;
        for &(mask, rhs) in &rows {
            let mut row = Gf2Vec::zero(cols);
            for j in 0..cols {
                if mask >> j & 1 == 1 {
                    row.set(j, true);
                }
            }
            if solver.add_constraint(row, rhs).is_err() {
                consistent = false;
                break;
            }
        }
        prop_assert_eq!(consistent, brute_force_solvable(cols, &rows));
        if consistent {
            // The returned solution satisfies every constraint.
            let x = solver.solution();
            for &(mask, rhs) in &rows {
                let got = (0..cols).filter(|&j| mask >> j & 1 == 1 && x[j]).count() % 2 == 1;
                prop_assert_eq!(got, rhs);
            }
        }
    }

    #[test]
    fn rank_never_exceeds_dimensions(
        cols in 1usize..24,
        rows in proptest::collection::vec((any::<u32>(), any::<bool>()), 0..40),
    ) {
        let mut solver = Gf2Solver::new(cols);
        let mut added = 0usize;
        for (mask, rhs) in rows {
            let mut row = Gf2Vec::zero(cols);
            for j in 0..cols {
                if mask >> (j % 32) & 1 == 1 && (j / 32) == 0 {
                    row.set(j, true);
                }
            }
            if solver.add_constraint(row, rhs).is_err() {
                break;
            }
            added += 1;
        }
        prop_assert!(solver.rank() <= cols.min(added));
    }

    #[test]
    fn symbolic_simulation_matches_concrete(
        len in 4usize..40,
        chains in 1usize..8,
        seed_bits in any::<u64>(),
        cycles in 1u64..60,
    ) {
        let lfsr = Lfsr::with_default_taps(len);
        let ps = PhaseShifter::random(chains, len, 42);
        let seed: Vec<bool> = (0..len).map(|i| seed_bits >> (i % 64) & 1 == 1).collect();
        let mut concrete = seed.clone();
        let mut symbolic = lfsr::symbolic_reset(len);
        for _ in 0..cycles {
            for k in 0..chains {
                let sym = ps.output_symbolic(k, &symbolic);
                let predicted = (0..len).filter(|&i| sym.get(i) && seed[i]).count() % 2 == 1;
                prop_assert_eq!(predicted, ps.output(k, &concrete));
            }
            lfsr.step(&mut concrete);
            lfsr.step_symbolic(&mut symbolic);
        }
    }
}

#[test]
fn reseeding_volume_scales_with_density_not_length() {
    // Two cores with the same care-bit *count* but different lengths get
    // similar seed sizes — the defining property of reseeding.
    let mk = |cells: u32, density: f64| {
        let mut core = Core::builder("r")
            .inputs(8)
            .flexible_cells(cells, 64)
            .pattern_count(5)
            .care_density(density)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(density).synthesize(&core, 17);
        core.attach_test_set(ts).unwrap();
        core
    };
    let short_dense = mk(400, 0.20); // ~80 care bits per pattern
    let long_sparse = mk(1600, 0.05); // ~80 care bits per pattern
    let opts = ReseedOptions::default();
    let a = compress_reseeding(&short_dense, 16, 8, &opts).unwrap();
    let b = compress_reseeding(&long_sparse, 16, 8, &opts).unwrap();
    let ratio = a.lfsr_len as f64 / b.lfsr_len as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "seed sizes should be similar: {} vs {}",
        a.lfsr_len,
        b.lfsr_len
    );
    // But volumes relative to raw data differ enormously.
    let ra = a.volume_bits as f64 / short_dense.initial_volume_bits() as f64;
    let rb = b.volume_bits as f64 / long_sparse.initial_volume_bits() as f64;
    assert!(
        rb < ra / 2.0,
        "sparse core compresses much better: {ra} vs {rb}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The determinism contract, witnessed from outside: reseeding
    /// aggregates per-pattern quantities (seed counts, solve results,
    /// scan-in sums), so shuffling the pattern order must not change any
    /// field of the result — including the chosen LFSR length, which the
    /// growth loop settles from the *set* of patterns, not their order.
    #[test]
    fn reseeding_is_invariant_under_pattern_permutation(
        cells in 60u32..240,
        patterns in 2u32..8,
        m in 1u32..6,
        ate in 1u32..5,
        perm_seed in any::<u64>(),
    ) {
        let build = || {
            Core::builder("perm")
                .inputs(8)
                .flexible_cells(cells, 48)
                .pattern_count(patterns)
                .care_density(0.15)
                .build()
                .unwrap()
        };
        let mut base = build();
        let ts = CubeSynthesis::new(0.15).synthesize(&base, 23);

        // Fisher–Yates shuffle of the cubes, driven by the proptest seed.
        let mut shuffled = ts.patterns().to_vec();
        let mut rng = SplitMix64::new(perm_seed);
        for i in (1..shuffled.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            shuffled.swap(i, j);
        }
        let permuted_ts = TestSet::from_patterns(ts.bits_per_pattern(), shuffled).unwrap();

        let mut permuted = build();
        base.attach_test_set(ts).unwrap();
        permuted.attach_test_set(permuted_ts).unwrap();

        // Exact evaluation: `pattern_sample` picks patterns by position,
        // which is the one knob legitimately sensitive to input order.
        let opts = ReseedOptions {
            pattern_sample: None,
            ..ReseedOptions::default()
        };
        prop_assert_eq!(
            compress_reseeding(&base, m, ate, &opts),
            compress_reseeding(&permuted, m, ate, &opts)
        );
    }
}
