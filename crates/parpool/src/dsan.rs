//! `dsan` — a happens-before determinism sanitizer for pool jobs.
//!
//! The workspace's central guarantee is that every parallel phase is
//! bit-identical at any worker count. soclint's capture rules certify that
//! *syntactically*; `dsan` is the dynamic complement: it observes a real
//! execution and proves (or refutes) that the happens-before structure is
//! order-insensitive.
//!
//! # Model
//!
//! Orderedness is **structural**, not scheduler-observed: two jobs of the
//! same [`Pool`](crate::Pool) run are mutually unordered *by construction*,
//! whatever interleaving the OS happened to pick — even at one worker,
//! where they in fact ran sequentially. Each context (the spawning caller,
//! every job) carries a vector clock:
//!
//! * **spawn** — a job's clock starts as the caller's snapshot plus one
//!   tick of the job's own component, so caller work *before* the run
//!   happens-before every job;
//! * **steal/recv** — claiming a task installs its context on the worker
//!   thread, so nested runs inherit the enclosing job's clock and chain;
//! * **merge** — collecting results joins every finished job's final clock
//!   back into the caller, so jobs happen-before caller work *after* the
//!   run.
//!
//! Sibling jobs never see each other's components — any conflicting pair
//! of accesses from two siblings is unordered, and that verdict is
//! independent of worker count. Reports are therefore byte-identical
//! across runs and worker counts.
//!
//! # Shadowed state
//!
//! Shared state touched from pool jobs is declared through the
//! instrumented accessors: [`Shadow`] (record-only handle), [`Cell`]
//! (mutex-protected value), and [`AtomicCell`] (a shadowed `AtomicU64`).
//! Every access records `(access kind, spawn chain, clock)` into a
//! bounded shadow log; unordered conflicting pairs on a
//! [`Policy::Checked`] cell become races. [`Policy::Advisory`] marks cells
//! that are racy *by design* with an interleaving-independent outcome
//! (e.g. a monotone pruning bound): their accesses are logged for
//! coverage but never reported.
//!
//! # Cost
//!
//! Disabled (the default), every entry point is one relaxed atomic load.
//! Enable with `SOCTDC_DSAN=1`, the `dsan` cargo feature, or
//! [`set_enabled`].

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Per `(location, chain, kind)` cap on logged accesses. Per-chain program
/// order is deterministic, so the kept prefix — and with it the report —
/// does not depend on how chains interleave in real time.
const PER_CHAIN_CAP: usize = 8;

const UNKNOWN: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static ENABLED: AtomicU8 = AtomicU8::new(UNKNOWN);
static NEXT_CLOCK_ID: AtomicU32 = AtomicU32::new(0);
static NEXT_SHADOW_ID: AtomicU64 = AtomicU64::new(0);

/// True when the sanitizer is active for this process.
///
/// Resolved once from the `dsan` cargo feature or the `SOCTDC_DSAN=1`
/// environment variable, then cached; [`set_enabled`] overrides either
/// way.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::SeqCst) {
        ON => true,
        OFF => false,
        _ => {
            let on =
                cfg!(feature = "dsan") || std::env::var_os("SOCTDC_DSAN").is_some_and(|v| v == "1");
            ENABLED.store(if on { ON } else { OFF }, Ordering::SeqCst);
            on
        }
    }
}

/// Forces the sanitizer on or off, overriding feature and environment
/// (used by test harnesses and the CLI).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { ON } else { OFF }, Ordering::SeqCst);
}

// --- Vector clocks ------------------------------------------------------

/// A vector clock: sorted `(component id, count)` pairs; absent ids read
/// as zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct VClock(Vec<(u32, u64)>);

impl VClock {
    fn get(&self, id: u32) -> u64 {
        self.0
            .binary_search_by_key(&id, |e| e.0)
            .map(|i| self.0[i].1)
            .unwrap_or(0)
    }

    fn tick(&mut self, id: u32) {
        match self.0.binary_search_by_key(&id, |e| e.0) {
            Ok(i) => self.0[i].1 += 1,
            Err(i) => self.0.insert(i, (id, 1)),
        }
    }

    fn join(&mut self, other: &VClock) {
        for &(id, c) in &other.0 {
            match self.0.binary_search_by_key(&id, |e| e.0) {
                Ok(i) => self.0[i].1 = self.0[i].1.max(c),
                Err(i) => self.0.insert(i, (id, c)),
            }
        }
    }

    /// `self` happens-before-or-equals `other`.
    fn leq(&self, other: &VClock) -> bool {
        self.0.iter().all(|&(id, c)| c <= other.get(id))
    }

    fn concurrent(a: &VClock, b: &VClock) -> bool {
        !a.leq(b) && !b.leq(a)
    }
}

// --- Spawn chains and contexts ------------------------------------------

/// One link of a spawn chain: `portfolio[3]` whose parent might be
/// `fleet[0]` whose parent is the root `main`.
#[derive(Debug)]
struct Chain {
    label: String,
    parent: Option<Arc<Chain>>,
}

impl Chain {
    /// Renders `label ← via parent ← via … ← via main`.
    fn render(&self) -> String {
        let mut out = self.label.clone();
        let mut cur = &self.parent;
        while let Some(p) = cur {
            out.push_str(" \u{2190} via ");
            out.push_str(&p.label);
            cur = &p.parent;
        }
        out
    }
}

/// The context a thread currently executes under: its clock component id,
/// spawn chain, and vector clock.
struct Ctx {
    id: u32,
    chain: Arc<Chain>,
    clock: VClock,
}

impl Ctx {
    /// A fresh root context (`main`) for a thread that spawns pool runs
    /// without itself being a pool job.
    fn root() -> Ctx {
        let id = NEXT_CLOCK_ID.fetch_add(1, Ordering::SeqCst);
        let mut clock = VClock::default();
        clock.tick(id);
        Ctx {
            id,
            chain: Arc::new(Chain {
                label: "main".to_string(),
                parent: None,
            }),
            clock,
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Runs `f` on the current context, installing a root context first if
/// the thread has none.
fn with_ctx<R>(f: impl FnOnce(&mut Ctx) -> R) -> R {
    CURRENT.with(|cell| {
        let mut cur = cell.borrow_mut();
        f(cur.get_or_insert_with(Ctx::root))
    })
}

// --- Run scopes: the spawn / steal / merge edges ------------------------

/// Instrumentation handle for one pool run: one slot per job, created on
/// the spawning thread ([`RunScope::enter`]), installed on whichever
/// worker claims the job ([`job_enter`]), and joined back into the caller
/// when results are merged ([`RunScope::merge`]).
pub struct RunScope {
    jobs: Vec<JobSlot>,
}

struct JobSlot {
    id: u32,
    chain: Arc<Chain>,
    start: VClock,
    done: Mutex<Option<VClock>>,
}

impl RunScope {
    /// Opens a scope for `n` jobs labeled `label[i]`, children of the
    /// calling context (the **spawn** edge). Returns `None` when the
    /// sanitizer is disabled — the pool's only per-run cost in that case.
    pub fn enter(label: &str, n: usize) -> Option<RunScope> {
        if !enabled() {
            return None;
        }
        let (parent, snapshot) = with_ctx(|ctx| (ctx.chain.clone(), ctx.clock.clone()));
        let jobs = (0..n)
            .map(|i| {
                let id = NEXT_CLOCK_ID.fetch_add(1, Ordering::SeqCst);
                let mut start = snapshot.clone();
                start.tick(id);
                JobSlot {
                    id,
                    chain: Arc::new(Chain {
                        label: format!("{label}[{i}]"),
                        parent: Some(parent.clone()),
                    }),
                    start,
                    done: Mutex::new(None),
                }
            })
            .collect();
        Some(RunScope { jobs })
    }

    /// Joins every finished job's final clock back into the calling
    /// context (the **merge** edge). Call on the spawning thread once all
    /// results are collected; jobs that never ran (cancellation) are
    /// skipped.
    pub fn merge(self) {
        with_ctx(|ctx| {
            for slot in &self.jobs {
                if let Some(done) = slot
                    .done
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                {
                    ctx.clock.join(&done);
                }
            }
            let id = ctx.id;
            ctx.clock.tick(id);
        });
    }
}

/// Installs job `i`'s context on the current thread (the **steal/recv**
/// edge). The returned guard captures the job's final clock and restores
/// the previous context when dropped — including on panic, so a panicking
/// job cannot leak its context onto the worker.
pub fn job_enter(scope: Option<&RunScope>, i: usize) -> Option<JobGuard<'_>> {
    let scope = scope?;
    let slot = &scope.jobs[i];
    let prev = CURRENT.with(|cell| {
        cell.borrow_mut().replace(Ctx {
            id: slot.id,
            chain: slot.chain.clone(),
            clock: slot.start.clone(),
        })
    });
    Some(JobGuard { slot, prev })
}

/// Guard returned by [`job_enter`]; see there.
pub struct JobGuard<'a> {
    slot: &'a JobSlot,
    prev: Option<Ctx>,
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        let finished = CURRENT.with(|cell| cell.borrow_mut().take());
        if let Some(ctx) = finished {
            *self
                .slot
                .done
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(ctx.clock);
        }
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|cell| *cell.borrow_mut() = Some(prev));
        }
    }
}

// --- Shadowed cells -----------------------------------------------------

/// How a shadowed cell participates in race detection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Unordered conflicting accesses are reported as races.
    Checked,
    /// Accesses are logged for coverage but never reported: the cell is
    /// racy by design with an interleaving-independent outcome (e.g. a
    /// monotone pruning bound, or a cache where a hit is equivalent to a
    /// rebuild).
    Advisory,
}

/// Access-tracking handle for one piece of shared state. Cheap to create;
/// each instance owns a distinct shadow log (so equal names in unrelated
/// runs — e.g. parallel tests — never cross-talk), and the log is
/// released when the `Shadow` drops.
#[derive(Debug)]
pub struct Shadow {
    id: u64,
    name: String,
    policy: Policy,
}

impl Shadow {
    /// A new shadow named `name` (the location rendered in reports).
    pub fn new(name: impl Into<String>, policy: Policy) -> Shadow {
        Shadow {
            id: NEXT_SHADOW_ID.fetch_add(1, Ordering::SeqCst),
            name: name.into(),
            policy,
        }
    }

    /// The location name rendered in reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records a read of the shadowed state by the current context.
    pub fn record_read(&self) {
        record(self, AccessKind::Read);
    }

    /// Records a write of the shadowed state by the current context.
    pub fn record_write(&self) {
        record(self, AccessKind::Write);
    }
}

impl Drop for Shadow {
    fn drop(&mut self) {
        if !enabled() {
            return;
        }
        // Races were extracted at record time; the raw log can go.
        if let Ok(mut reg) = registry().lock() {
            reg.logs.remove(&self.id);
        }
    }
}

/// A mutex-protected value whose accesses flow through the shadow log:
/// the instrumented replacement for a bare `Mutex<T>` shared across pool
/// jobs.
#[derive(Debug)]
pub struct Cell<T> {
    shadow: Shadow,
    inner: Mutex<T>,
}

impl<T> Cell<T> {
    /// Wraps `value` under a shadow named `name`.
    pub fn new(name: impl Into<String>, policy: Policy, value: T) -> Cell<T> {
        Cell {
            shadow: Shadow::new(name, policy),
            inner: Mutex::new(value),
        }
    }

    /// Runs `f` on a shared view of the value, recording a read.
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.shadow.record_read();
        f(&self.inner.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Runs `f` on an exclusive view of the value, recording a write.
    pub fn write<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.shadow.record_write();
        f(&mut self.inner.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

/// A shadowed `AtomicU64`: the instrumented replacement for bare atomics
/// shared across pool jobs (incumbents, counters). Orderings are the
/// caller's to choose, exactly as on `AtomicU64`.
#[derive(Debug)]
pub struct AtomicCell {
    shadow: Shadow,
    value: AtomicU64,
}

impl AtomicCell {
    /// Wraps `value` under a shadow named `name`.
    pub fn new(name: impl Into<String>, policy: Policy, value: u64) -> AtomicCell {
        AtomicCell {
            shadow: Shadow::new(name, policy),
            value: AtomicU64::new(value),
        }
    }

    /// Shadowed `AtomicU64::load`.
    pub fn load(&self, order: Ordering) -> u64 {
        self.shadow.record_read();
        self.value.load(order)
    }

    /// Shadowed `AtomicU64::store`.
    pub fn store(&self, v: u64, order: Ordering) {
        self.shadow.record_write();
        self.value.store(v, order);
    }

    /// Shadowed `AtomicU64::fetch_min`; counts as a write.
    pub fn fetch_min(&self, v: u64, order: Ordering) -> u64 {
        self.shadow.record_write();
        self.value.fetch_min(v, order)
    }

    /// Shadowed `AtomicU64::fetch_max`; counts as a write.
    pub fn fetch_max(&self, v: u64, order: Ordering) -> u64 {
        self.shadow.record_write();
        self.value.fetch_max(v, order)
    }
}

// --- The shadow log and race detection ----------------------------------

/// Read or write; two accesses conflict when at least one is a write.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessKind {
    /// A shared (read) access.
    Read,
    /// An exclusive (write) access.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        })
    }
}

/// One side of a race: the access kind plus the rendered spawn chain of
/// the job that performed it.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct AccessDesc {
    /// Read or write.
    pub kind: AccessKind,
    /// Spawn chain, rendered `label[i] ← via parent ← via main`.
    pub chain: String,
}

/// One pair of unordered conflicting accesses to the same shadowed
/// location. The pair is stored in sorted order so reports are
/// byte-identical whichever access was recorded first.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Race {
    /// The shadowed location's name.
    pub location: String,
    /// The lexicographically smaller access of the pair.
    pub first: AccessDesc,
    /// The other access.
    pub second: AccessDesc,
}

struct Access {
    kind: AccessKind,
    chain: String,
    clock: VClock,
}

struct CellLog {
    name: String,
    policy: Policy,
    accesses: Vec<Access>,
}

#[derive(Default)]
struct Registry {
    /// Shadow instance id → its bounded access log.
    logs: BTreeMap<u64, CellLog>,
    /// Races found so far; a set keyed on rendered chains, so duplicate
    /// access pairs from the same job pair collapse.
    races: BTreeSet<Race>,
    /// Accesses beyond [`PER_CHAIN_CAP`] that were checked but not kept.
    dropped: u64,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Registry::default()))
}

fn record(shadow: &Shadow, kind: AccessKind) {
    if !enabled() {
        return;
    }
    let (chain, clock) = with_ctx(|ctx| (ctx.chain.render(), ctx.clock.clone()));
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let reg = &mut *reg;
    let log = reg.logs.entry(shadow.id).or_insert_with(|| CellLog {
        name: shadow.name.clone(),
        policy: shadow.policy,
        accesses: Vec::new(),
    });
    if log.policy == Policy::Checked {
        for prior in &log.accesses {
            let conflict = kind == AccessKind::Write || prior.kind == AccessKind::Write;
            if conflict && VClock::concurrent(&prior.clock, &clock) {
                let a = AccessDesc {
                    kind: prior.kind,
                    chain: prior.chain.clone(),
                };
                let b = AccessDesc {
                    kind,
                    chain: chain.clone(),
                };
                let (first, second) = if a <= b { (a, b) } else { (b, a) };
                reg.races.insert(Race {
                    location: log.name.clone(),
                    first,
                    second,
                });
            }
        }
    }
    // Bound the log: keep the first PER_CHAIN_CAP accesses per
    // (chain, kind). Later accesses are still checked (above) against
    // everything kept, so a dropped access can reveal a race — only a
    // race *among* dropped accesses of two long chains can be missed.
    let kept = log
        .accesses
        .iter()
        .filter(|a| a.kind == kind && a.chain == chain)
        .count();
    if kept < PER_CHAIN_CAP {
        log.accesses.push(Access { kind, chain, clock });
    } else {
        reg.dropped += 1;
    }
}

// --- Reports ------------------------------------------------------------

/// Everything dsan found, drained by [`take_report`]. The `Display`
/// rendering is deterministically sorted (location, then both chains) and
/// byte-identical across runs and worker counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// Unordered conflicting access pairs, sorted.
    pub races: Vec<Race>,
    /// Accesses beyond the shadow-log bound (checked but not kept).
    pub dropped: u64,
}

impl Report {
    /// True when no races were recorded.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.races.is_empty() {
            writeln!(f, "dsan: clean")?;
        } else {
            writeln!(
                f,
                "dsan: {} unordered conflicting access pair(s)",
                self.races.len()
            )?;
            for r in &self.races {
                writeln!(f, "race on `{}`:", r.location)?;
                writeln!(f, "  {} by {}", r.first.kind, r.first.chain)?;
                writeln!(f, "  {} by {}", r.second.kind, r.second.chain)?;
            }
        }
        if self.dropped > 0 {
            writeln!(
                f,
                "dsan: {} access(es) beyond the shadow-log bound",
                self.dropped
            )?;
        }
        Ok(())
    }
}

/// Drains the recorded races and drop counter into a [`Report`], leaving
/// the registry empty (so sequential harness phases report independently).
pub fn take_report() -> Report {
    if !enabled() {
        return Report::default();
    }
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    Report {
        races: std::mem::take(&mut reg.races).into_iter().collect(),
        dropped: std::mem::take(&mut reg.dropped),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vclock_tick_join_leq() {
        let mut a = VClock::default();
        a.tick(1);
        a.tick(1);
        let mut b = a.clone();
        b.tick(2);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        let mut c = a.clone();
        c.tick(3);
        assert!(VClock::concurrent(&b, &c));
        b.join(&c);
        assert!(c.leq(&b) && a.leq(&b));
        assert_eq!(b.get(1), 2);
        assert_eq!(b.get(2), 1);
        assert_eq!(b.get(3), 1);
        assert_eq!(b.get(9), 0);
    }

    #[test]
    fn chain_renders_via_arrows() {
        let main = Arc::new(Chain {
            label: "main".into(),
            parent: None,
        });
        let outer = Arc::new(Chain {
            label: "fleet[0]".into(),
            parent: Some(main),
        });
        let inner = Chain {
            label: "tables[3]".into(),
            parent: Some(outer),
        };
        assert_eq!(
            inner.render(),
            "tables[3] \u{2190} via fleet[0] \u{2190} via main"
        );
    }
}
