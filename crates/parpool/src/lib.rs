//! A bounded work-stealing pool for deterministic planner fan-out.
//!
//! The planner's expensive phases — decision-table construction, profile
//! sweeps — decompose into many independent tasks of wildly uneven cost
//! (one core's width chunk can take 100× another's). Spawning a thread per
//! core (the previous scheme) oversubscribes small machines and leaves big
//! ones idle once the cheap cores finish. [`Pool`] instead runs a *bounded*
//! set of workers (default: [`std::thread::available_parallelism`]) that
//! self-schedule tasks off a shared queue: a worker that finishes early
//! steals the next unclaimed task, so the long tail of expensive tasks
//! spreads across all workers.
//!
//! Determinism: results are returned **in task order**, whatever the
//! execution interleaving, and each task runs exactly once — so callers
//! that assemble results by index produce identical output at any worker
//! count.
//!
//! Cancellation: [`Pool::run_with`] polls a [`CancelToken`] between tasks.
//! Once the token trips, unclaimed tasks are never started and report
//! `None`; tasks already running finish normally (they are expected to
//! poll the token themselves — the planner's tasks do).
//!
//! ```
//! use parpool::Pool;
//!
//! let pool = Pool::new();
//! let squares = pool.run((0u64..100).map(|i| move || i * i).collect::<Vec<_>>());
//! assert_eq!(squares[7], 49);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dsan;

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use robust::CancelToken;

/// A bounded pool of scoped workers; see the crate docs.
///
/// Construction is free — workers are spawned per [`run`](Pool::run) call
/// and joined before it returns, so a `Pool` can live anywhere (including
/// on the stack of a library function) without leaking threads.
#[derive(Debug, Clone)]
pub struct Pool {
    workers: usize,
    label: &'static str,
}

impl Default for Pool {
    fn default() -> Self {
        Self::new()
    }
}

impl Pool {
    /// A pool sized to the machine: one worker per available hardware
    /// thread (at least one).
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Self::with_workers(workers)
    }

    /// A pool with exactly `workers` workers (clamped to at least 1).
    /// `with_workers(1)` executes tasks inline on the caller's thread.
    pub fn with_workers(workers: usize) -> Self {
        Pool {
            workers: workers.max(1),
            label: "pool",
        }
    }

    /// Names this pool's runs in [`dsan`] spawn chains: job `i` of a run
    /// renders as `label[i]`. Purely diagnostic — scheduling is
    /// unaffected, and without the sanitizer the label is never read.
    pub fn labeled(mut self, label: &'static str) -> Self {
        self.label = label;
        self
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every task to completion and returns their results in task
    /// order.
    ///
    /// # Panics
    ///
    /// If a task panics, the panic is propagated to the caller after the
    /// remaining workers drain.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        self.run_with(&CancelToken::never(), tasks)
            .into_iter()
            .map(|r| r.expect("task skipped without cancellation"))
            .collect()
    }

    /// Like [`run`](Pool::run), but polls `token` before starting each
    /// task: after cancellation, tasks not yet claimed are skipped and
    /// report `None` at their index. Already-running tasks finish (and
    /// report `Some`), so a caller still gets every result the budget paid
    /// for.
    pub fn run_with<T, F>(&self, token: &CancelToken, tasks: Vec<F>) -> Vec<Option<T>>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        let workers = self.workers.min(n);
        // One atomic load when the sanitizer is off; a per-job clock/chain
        // slot when it is on.
        let sanitizer = dsan::RunScope::enter(self.label, n);
        if workers <= 1 {
            // Inline fast path: no queue, no threads, same semantics. The
            // sanitizer still swaps job contexts in and out so races are
            // detected structurally even in a sequential execution.
            let out = tasks
                .into_iter()
                .enumerate()
                .map(|(i, task)| {
                    (!token.is_cancelled()).then(|| {
                        let _job = dsan::job_enter(sanitizer.as_ref(), i);
                        task()
                    })
                })
                .collect();
            if let Some(scope) = sanitizer {
                scope.merge();
            }
            return out;
        }

        let queue: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (queue, results, next) = (&queue, &results, &next);
                    let sanitizer = sanitizer.as_ref();
                    scope.spawn(move || loop {
                        if token.is_cancelled() {
                            break;
                        }
                        // soclint: allow(capture-mut, relaxed-ordering, dsan-escape) -- the ticket counter only decides which worker *claims* task i; every result lands in its own index slot, so the returned Vec is task-ordered for any claim order
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // soclint: allow(capture-mut, dsan-escape) -- per-index slot, taken exactly once by the claiming worker; no two workers touch the same slot
                        let task = queue[i]
                            .lock()
                            .expect("task slot poisoned")
                            .take()
                            .expect("task claimed twice");
                        // Steal edge: run the job under its own context;
                        // the guard restores the worker's on the way out,
                        // panic included.
                        let job = dsan::job_enter(sanitizer, i);
                        let result = task();
                        drop(job);
                        // soclint: allow(capture-mut, dsan-escape) -- write-once into the claimed index's own slot; the pool is exactly the sanctioned reduce-by-job-index mechanism this rule steers users toward
                        *results[i].lock().expect("result slot poisoned") = Some(result);
                    })
                })
                .collect();
            for h in handles {
                // Propagate worker panics to the caller.
                if let Err(panic) = h.join() {
                    std::panic::resume_unwind(panic);
                }
            }
        });
        if let Some(scope) = sanitizer {
            scope.merge();
        }

        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("result slot poisoned"))
            .collect()
    }
}

/// Splits a total worker `budget` between two nested pool levels: an
/// outer pool of `jobs` coarse-grained tasks (e.g. whole designs) whose
/// tasks each run an inner pool (e.g. per-design table chunks).
///
/// The policy is a pure function of its arguments — no clocks, no machine
/// probing — so a given `(budget, jobs)` always yields the same split on
/// any host, and the nested run schedules identically. The outer level is
/// saturated first (design-granularity stealing hides more latency skew
/// than intra-design chunking), then whatever budget remains multiplies
/// into the inner level:
///
/// * `outer = min(jobs, budget)` (each ≥ 1), so no outer worker idles
///   without a job;
/// * `inner = budget / outer` (≥ 1), so `outer × inner ≤ max(budget, 1)`.
///
/// ```
/// assert_eq!(parpool::split_budget(8, 100), (8, 1)); // many jobs: all outer
/// assert_eq!(parpool::split_budget(8, 2), (2, 4));   // few jobs: go inner
/// assert_eq!(parpool::split_budget(0, 5), (1, 1));   // degenerate: serial
/// ```
pub fn split_budget(budget: usize, jobs: usize) -> (usize, usize) {
    let budget = budget.max(1);
    let outer = jobs.clamp(1, budget);
    let inner = (budget / outer).max(1);
    (outer, inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn split_budget_saturates_outer_then_inner() {
        assert_eq!(split_budget(4, 200), (4, 1));
        assert_eq!(split_budget(4, 4), (4, 1));
        assert_eq!(split_budget(4, 3), (3, 1));
        assert_eq!(split_budget(4, 2), (2, 2));
        assert_eq!(split_budget(4, 1), (1, 4));
        assert_eq!(split_budget(1, 9), (1, 1));
        assert_eq!(split_budget(0, 0), (1, 1));
    }

    #[test]
    fn split_budget_product_never_exceeds_budget() {
        for budget in 0..=17usize {
            for jobs in 0..=23usize {
                let (outer, inner) = split_budget(budget, jobs);
                assert!(outer >= 1 && inner >= 1);
                assert!(
                    outer * inner <= budget.max(1),
                    "split_budget({budget}, {jobs}) = ({outer}, {inner})"
                );
                assert!(outer <= jobs.max(1), "outer workers beyond job count");
            }
        }
    }

    #[test]
    fn results_keep_task_order_at_any_worker_count() {
        let tasks = |n: usize| (0..n).map(|i| move || i * 10).collect::<Vec<_>>();
        let expect: Vec<usize> = (0..37).map(|i| i * 10).collect();
        for workers in [1, 2, 3, 8, 64] {
            let pool = Pool::with_workers(workers);
            assert_eq!(pool.run(tasks(37)), expect, "workers={workers}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicU32::new(0);
        let tasks: Vec<_> = (0..100)
            .map(|_| || counter.fetch_add(1, Ordering::Relaxed))
            .collect();
        let results = Pool::with_workers(4).run(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        let mut seen: Vec<u32> = results;
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn pre_cancelled_token_skips_everything() {
        let token = CancelToken::never();
        token.cancel();
        for workers in [1, 4] {
            let tasks: Vec<_> = (0..10).map(|i| move || i).collect();
            let results = Pool::with_workers(workers).run_with(&token, tasks);
            assert!(results.iter().all(Option::is_none), "workers={workers}");
        }
    }

    #[test]
    fn mid_run_cancellation_skips_the_tail() {
        // Inline pool: task 2 cancels, so 0..=2 ran and 3.. are skipped.
        let token = CancelToken::never();
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0usize..10)
            .map(|i| {
                let token = token.clone();
                Box::new(move || {
                    if i == 2 {
                        token.cancel();
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let results = Pool::with_workers(1).run_with(&token, tasks);
        assert_eq!(results[0..3], [Some(0), Some(1), Some(2)]);
        assert!(results[3..].iter().all(Option::is_none));
    }

    #[test]
    fn pool_reports_at_least_one_worker() {
        assert!(Pool::new().workers() >= 1);
        assert_eq!(Pool::with_workers(0).workers(), 1);
    }

    #[test]
    fn uneven_task_costs_all_complete() {
        let tasks: Vec<_> = (0u64..24)
            .map(|i| {
                move || {
                    // Skewed work: some tasks do 1000× the spins of others.
                    let spins = if i % 7 == 0 { 100_000 } else { 100 };
                    (0..spins).fold(i, |acc, x| acc.wrapping_add(x))
                }
            })
            .collect();
        let a = Pool::with_workers(1).run(tasks.clone());
        let b = Pool::with_workers(6).run(tasks);
        assert_eq!(a, b);
    }
}
