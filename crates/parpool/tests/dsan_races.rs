//! Injected-race fixtures for the determinism sanitizer: every test
//! builds a pool whose jobs touch shared state in a deliberately
//! conflicting (or deliberately ordered) pattern and asserts the exact
//! report — including the dual `← via` steal chains — dsan renders.
//!
//! The sanitizer's registry is process-global, so the tests serialize on
//! one mutex and drain the report before each scenario.

#![forbid(unsafe_code)]

use std::sync::{Mutex, MutexGuard};

use parpool::dsan::{self, Policy};
use parpool::Pool;
use robust::CancelToken;

static SERIAL: Mutex<()> = Mutex::new(());

/// Enables the sanitizer, serializes the test, and drains any prior
/// report so each scenario starts from a clean registry.
fn exclusive() -> MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    dsan::set_enabled(true);
    let _ = dsan::take_report();
    guard
}

#[test]
fn sibling_writes_render_a_dual_chain_race() {
    let _g = exclusive();
    let cell = dsan::Shadow::new("fixture.counter", Policy::Checked);
    let cref = &cell;
    let tasks: Vec<_> = (0..2).map(|_| move || cref.record_write()).collect();
    Pool::with_workers(2).labeled("racer").run(tasks);
    let report = dsan::take_report();
    assert_eq!(report.races.len(), 1, "{report}");
    assert_eq!(report.races[0].location, "fixture.counter");
    assert_eq!(report.races[0].first.chain, "racer[0] ← via main");
    assert_eq!(report.races[0].second.chain, "racer[1] ← via main");
    assert_eq!(
        report.to_string(),
        "dsan: 1 unordered conflicting access pair(s)\n\
         race on `fixture.counter`:\n\
         \u{20}\u{20}write by racer[0] ← via main\n\
         \u{20}\u{20}write by racer[1] ← via main\n"
    );
}

#[test]
fn read_write_conflicts_are_races_but_read_read_is_not() {
    let _g = exclusive();
    let cell = dsan::Shadow::new("fixture.mixed", Policy::Checked);
    let cref = &cell;
    let tasks: Vec<_> = (0..2)
        .map(|i| {
            move || {
                if i == 0 {
                    cref.record_read();
                } else {
                    cref.record_write();
                }
            }
        })
        .collect();
    Pool::with_workers(2).labeled("mixed").run(tasks);
    let report = dsan::take_report();
    assert_eq!(report.races.len(), 1, "{report}");
    assert_eq!(report.races[0].first.chain, "mixed[0] ← via main");
    assert_eq!(report.races[0].second.chain, "mixed[1] ← via main");

    let reads = dsan::Shadow::new("fixture.reads", Policy::Checked);
    let rref = &reads;
    let tasks: Vec<_> = (0..4).map(|_| move || rref.record_read()).collect();
    Pool::with_workers(2).labeled("reader").run(tasks);
    assert!(dsan::take_report().is_clean(), "read-read never conflicts");
}

#[test]
fn spawn_and_merge_edges_order_caller_accesses() {
    let _g = exclusive();
    let cell = dsan::Shadow::new("fixture.ordered", Policy::Checked);
    cell.record_write(); // before spawn: happens-before every job
    let cref = &cell;
    let tasks: Vec<_> = (0..3)
        .map(|i| {
            move || {
                i == 0 && {
                    cref.record_read();
                    true
                }
            }
        })
        .collect();
    Pool::with_workers(2).labeled("stage").run(tasks);
    cell.record_write(); // after merge: every job happens-before this
    let report = dsan::take_report();
    assert!(
        report.is_clean(),
        "structural edges order the caller: {report}"
    );
}

#[test]
fn nested_runs_render_both_levels_of_the_steal_chain() {
    let _g = exclusive();
    let cell = dsan::Shadow::new("fixture.nested", Policy::Checked);
    let cref = &cell;
    let outer: Vec<_> = (0..2)
        .map(|_| {
            move || {
                let inner: Vec<_> = (0..1).map(|_| move || cref.record_write()).collect();
                Pool::with_workers(2).labeled("inner").run(inner);
            }
        })
        .collect();
    Pool::with_workers(2).labeled("outer").run(outer);
    let report = dsan::take_report();
    assert_eq!(report.races.len(), 1, "{report}");
    assert_eq!(
        report.races[0].first.chain,
        "inner[0] ← via outer[0] ← via main"
    );
    assert_eq!(
        report.races[0].second.chain,
        "inner[0] ← via outer[1] ← via main"
    );
}

#[test]
fn reports_are_byte_identical_at_workers_1_2_4() {
    let _g = exclusive();
    let scenario = |workers: usize| {
        let cell = dsan::Shadow::new("fixture.sweep", Policy::Checked);
        let cref = &cell;
        let tasks: Vec<_> = (0..4).map(|_| move || cref.record_write()).collect();
        Pool::with_workers(workers).labeled("job").run(tasks);
        dsan::take_report().to_string()
    };
    let reports: Vec<String> = [1, 2, 4].into_iter().map(scenario).collect();
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[1], reports[2]);
    // 4 mutually unordered writers: all 6 pairs, every one dual-chained.
    assert!(reports[0].starts_with("dsan: 6 unordered conflicting access pair(s)\n"));
    assert_eq!(reports[0].matches("← via main").count(), 12);
}

#[test]
fn advisory_cells_are_logged_but_never_reported() {
    let _g = exclusive();
    let bound = dsan::AtomicCell::new("fixture.incumbent", Policy::Advisory, u64::MAX);
    let bref = &bound;
    let tasks: Vec<_> = (0..4)
        .map(|i| move || bref.fetch_min(i, std::sync::atomic::Ordering::SeqCst))
        .collect();
    Pool::with_workers(2).labeled("prune").run(tasks);
    assert_eq!(bound.load(std::sync::atomic::Ordering::SeqCst), 0);
    assert!(
        dsan::take_report().is_clean(),
        "advisory policy never races"
    );
}

#[test]
fn checked_atomic_and_cell_wrappers_detect_races() {
    let _g = exclusive();
    let counter = dsan::AtomicCell::new("fixture.atomic", Policy::Checked, 0);
    let aref = &counter;
    let tasks: Vec<_> = (0..2)
        .map(|i| move || aref.store(i, std::sync::atomic::Ordering::SeqCst))
        .collect();
    Pool::with_workers(2).labeled("atomic").run(tasks);
    let report = dsan::take_report();
    assert_eq!(report.races.len(), 1, "{report}");
    assert_eq!(report.races[0].location, "fixture.atomic");

    let log = dsan::Cell::new("fixture.log", Policy::Checked, Vec::<usize>::new());
    let lref = &log;
    let tasks: Vec<_> = (0..2).map(|i| move || lref.write(|v| v.push(i))).collect();
    Pool::with_workers(2).labeled("cell").run(tasks);
    let report = dsan::take_report();
    assert_eq!(report.races.len(), 1, "{report}");
    assert_eq!(report.races[0].location, "fixture.log");
    assert_eq!(log.read(|v| v.len()), 2);
}

#[test]
fn cancelled_jobs_are_skipped_without_spurious_races() {
    let _g = exclusive();
    let cell = dsan::Shadow::new("fixture.cancelled", Policy::Checked);
    let cref = &cell;
    let token = CancelToken::never();
    token.cancel();
    let tasks: Vec<_> = (0..4).map(|_| move || cref.record_write()).collect();
    let results = Pool::with_workers(2)
        .labeled("skipped")
        .run_with(&token, tasks);
    assert!(results.iter().all(Option::is_none));
    let report = dsan::take_report();
    assert!(
        report.is_clean(),
        "never-started jobs record nothing: {report}"
    );
}

#[test]
fn disabled_sanitizer_records_nothing() {
    let _g = exclusive();
    dsan::set_enabled(false);
    let cell = dsan::Shadow::new("fixture.disabled", Policy::Checked);
    let cref = &cell;
    let tasks: Vec<_> = (0..2).map(|_| move || cref.record_write()).collect();
    Pool::with_workers(2).labeled("off").run(tasks);
    dsan::set_enabled(true);
    let report = dsan::take_report();
    assert!(report.is_clean(), "disabled mode must be silent: {report}");
    assert_eq!(report.to_string(), "dsan: clean\n");
}

#[test]
fn shadow_log_bound_drops_excess_but_still_detects() {
    let _g = exclusive();
    let cell = dsan::Shadow::new("fixture.flood", Policy::Checked);
    let cref = &cell;
    // Two chains, 32 writes each: far past the per-chain cap of 8, yet
    // the pair-level race must still surface exactly once.
    let tasks: Vec<_> = (0..2)
        .map(|_| {
            move || {
                for _ in 0..32 {
                    cref.record_write();
                }
            }
        })
        .collect();
    Pool::with_workers(2).labeled("flood").run(tasks);
    let report = dsan::take_report();
    assert_eq!(report.races.len(), 1, "{report}");
    assert!(report.dropped > 0, "the log bound engaged: {report}");
}
