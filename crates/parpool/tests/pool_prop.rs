//! Property tests for the pool's two contracts that carry the rest of the
//! workspace: the budget-split policy (pure, monotone, never degenerate)
//! and exactly-once task execution even when cancellation lands mid-steal.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};

use parpool::{split_budget, Pool};
use proptest::prelude::*;
use robust::CancelToken;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn split_budget_holds_its_invariants((budget, jobs) in (0usize..=64, 0usize..=64)) {
        let (outer, inner) = split_budget(budget, jobs);
        prop_assert!(outer >= 1 && inner >= 1, "never zero workers");
        prop_assert!(
            outer * inner <= budget.max(1),
            "split_budget({budget}, {jobs}) = ({outer}, {inner}) oversubscribes"
        );
        prop_assert!(outer <= jobs.max(1), "outer workers beyond job count");

        // Monotone in budget: one more worker of budget never shrinks the
        // scheduled parallelism.
        let (outer2, inner2) = split_budget(budget + 1, jobs);
        prop_assert!(
            outer2 * inner2 >= outer * inner,
            "split_budget({budget}→{}, {jobs}): {} < {}",
            budget + 1, outer2 * inner2, outer * inner
        );

        // Pure function: same inputs, same split.
        prop_assert_eq!(split_budget(budget, jobs), (outer, inner));
    }

    #[test]
    fn cancellation_mid_steal_loses_and_duplicates_nothing(
        (workers, n, trigger) in (1usize..=8, 1usize..=24, 0usize..=63),
    ) {
        let trigger = trigger % n;
        let token = CancelToken::never();
        let ran: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let tasks: Vec<_> = (0..n)
            .map(|i| {
                let (token, ran) = (token.clone(), &ran);
                move || {
                    ran[i].fetch_add(1, Ordering::SeqCst);
                    if i == trigger {
                        // Cancellation lands while other workers may be
                        // mid-claim on their next task.
                        token.cancel();
                    }
                    i
                }
            })
            .collect();
        let results = Pool::with_workers(workers).run_with(&token, tasks);

        prop_assert_eq!(results.len(), n);
        let mut completed = 0usize;
        for (i, slot) in results.iter().enumerate() {
            let times = ran[i].load(Ordering::SeqCst);
            prop_assert!(times <= 1, "task {i} ran {times} times");
            match slot {
                Some(v) => {
                    // A claimed task's result lands in its own slot: not
                    // lost, not moved, not duplicated.
                    prop_assert_eq!(*v, i, "slot {i} holds task {v}'s result");
                    prop_assert_eq!(times, 1, "result without execution at {i}");
                    completed += 1;
                }
                None => prop_assert_eq!(times, 0, "task {i} ran but its result was lost"),
            }
        }
        let executed: usize = ran.iter().map(|c| c.load(Ordering::SeqCst)).sum();
        prop_assert_eq!(executed, completed, "every execution produced exactly one result");
        // The trigger ran unless the pool never reached it; once it ran,
        // cancellation is in force, so with one worker the tail after the
        // trigger is entirely skipped.
        if workers == 1 && ran[trigger].load(Ordering::SeqCst) == 1 {
            for (i, slot) in results.iter().enumerate().skip(trigger + 1) {
                prop_assert!(slot.is_none(), "inline pool started task {i} after cancellation");
            }
        }
    }
}
