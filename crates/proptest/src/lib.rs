//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of the proptest API the workspace actually uses:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`/`prop_filter_map`,
//! range/tuple/`Just`/`any`/`collection::vec`/regex-string strategies,
//! `prop_oneof!`, and the `proptest!`/`prop_assert!`/`prop_assume!` macro
//! family.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! * Sampling is **deterministic**: the RNG is seeded from the test
//!   function's name, so a failing case reproduces on every run with no
//!   persistence files. There is no shrinking — failures report the
//!   sampled case via the ordinary `assert!` panic message.
//! * The `PROPTEST_CASES` environment variable **always** overrides the
//!   per-test case count (including explicit `ProptestConfig::with_cases`),
//!   so CI can pin a small, fast, reproducible case budget globally.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod test_runner {
    //! Deterministic RNG and run configuration.

    /// SplitMix64 generator: tiny, fast, and good enough for sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Creates an RNG seeded from an arbitrary byte string (the test
        /// name), so every test gets a distinct but stable stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h)
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo bias is irrelevant for test-case sampling.
            self.next_u64() % bound
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Run configuration (`ProptestConfig` in upstream naming).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }

        /// Case count after applying the `PROPTEST_CASES` override.
        pub fn resolved_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v.trim().parse().unwrap_or(self.cases),
                Err(_) => self.cases,
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree or shrinking:
    /// a strategy is just a sampler.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then samples the strategy `f` builds from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Maps values through `f`, resampling whenever `f` returns `None`.
        ///
        /// `whence` labels the rejection in the panic raised if the filter
        /// rejects essentially everything.
        fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                inner: self,
                f,
                whence,
            }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S, O, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<O>,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            for _ in 0..1000 {
                if let Some(v) = (self.f)(self.inner.sample(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map rejected 1000 samples in a row: {}",
                self.whence
            );
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; every weight must be non-zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return arm.sample(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum to total");
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64) - (start as u64) + 1;
                    start + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, usize);

    impl Strategy for std::ops::Range<u64> {
        type Value = u64;
        fn sample(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<u64> {
        type Value = u64;
        fn sample(&self, rng: &mut TestRng) -> u64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            if start == 0 && end == u64::MAX {
                return rng.next_u64();
            }
            start + rng.below(end - start + 1)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $v:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A / a, B / b)
        (A / a, B / b, C / c)
        (A / a, B / b, C / c, D / d)
        (A / a, B / b, C / c, D / d, E / e)
        (A / a, B / b, C / c, D / d, E / e, F / f)
    }

    // String strategies are written as regex literals. Only the small
    // dialect the test suite uses is supported: literal characters,
    // character classes with ranges, and {m}/{m,n}/?/*/+ quantifiers.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_regex(self, rng)
        }
    }

    fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed [ in regex strategy {pattern:?}"));
                    let class = &chars[i + 1..i + close];
                    i += close + 1;
                    expand_class(class, pattern)
                }
                '.' => {
                    i += 1;
                    (b' '..=b'~').map(char::from).collect()
                }
                '\\' => {
                    i += 2;
                    vec![*chars
                        .get(i - 1)
                        .unwrap_or_else(|| panic!("trailing \\ in regex strategy {pattern:?}"))]
                }
                c => {
                    assert!(
                        !"(){}*+?|^$".contains(c),
                        "unsupported regex syntax {c:?} in strategy {pattern:?}"
                    );
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi) = parse_quantifier(&chars, &mut i, pattern);
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }

    fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
        assert!(!class.is_empty(), "empty [] in regex strategy {pattern:?}");
        assert!(
            class[0] != '^',
            "negated class unsupported in strategy {pattern:?}"
        );
        let mut set = Vec::new();
        let mut j = 0;
        while j < class.len() {
            if j + 2 < class.len() && class[j + 1] == '-' {
                let (a, b) = (class[j], class[j + 2]);
                assert!(a <= b, "bad class range in regex strategy {pattern:?}");
                for c in a..=b {
                    set.push(c);
                }
                j += 3;
            } else {
                set.push(class[j]);
                j += 1;
            }
        }
        set
    }

    /// Parses a quantifier at `chars[*i]`, advancing past it. Returns the
    /// inclusive repetition bounds (unbounded forms are capped at 8).
    fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
        match chars.get(*i) {
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in regex strategy {pattern:?}"));
                let body: String = chars[*i + 1..*i + close].iter().collect();
                *i += close + 1;
                let parse = |s: &str| -> usize {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad quantifier in regex strategy {pattern:?}"))
                };
                match body.split_once(',') {
                    Some((lo, hi)) => (parse(lo), parse(hi)),
                    None => {
                        let n = parse(&body);
                        (n, n)
                    }
                }
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            _ => (1, 1),
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and the [`any`] entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain sampling strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from((b' ' + rng.below(95) as u8).min(b'~'))
        }
    }

    macro_rules! tuple_arbitrary {
        ($(($($t:ident),+))*) => {$(
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($(<$t as Arbitrary>::arbitrary(rng),)+)
                }
            }
        )*};
    }

    tuple_arbitrary! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s full domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares deterministic property tests.
///
/// Supports an optional `#![proptest_config(...)]` header and test
/// functions whose parameters are either `pattern in strategy` or
/// `name: Type` (shorthand for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::test_runner::Config as Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr) $(#[$meta:meta])* fn $name:ident ( $($params:tt)* ) $body:block $($rest:tt)* ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _ in 0..config.resolved_cases() {
                // One closure per case so `prop_assume!` can skip the
                // case with a plain `return`.
                let mut case = || {
                    $crate::__proptest_bind! { (rng) $($params)* }
                    $body
                };
                case();
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ( ($rng:ident) ) => {};
    ( ($rng:ident) $id:ident : $ty:ty ) => {
        $crate::__proptest_bind! { ($rng) $id: $ty, }
    };
    ( ($rng:ident) $id:ident : $ty:ty , $($rest:tt)* ) => {
        let $id: $ty = $crate::strategy::Strategy::sample(
            &$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind! { ($rng) $($rest)* }
    };
    ( ($rng:ident) $pat:pat in $s:expr ) => {
        $crate::__proptest_bind! { ($rng) $pat in $s, }
    };
    ( ($rng:ident) $pat:pat in $s:expr , $($rest:tt)* ) => {
        let $pat = $crate::strategy::Strategy::sample(&$s, &mut $rng);
        $crate::__proptest_bind! { ($rng) $($rest)* }
    };
}

/// Asserts a property-level condition (plain `assert!` here: no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (3u32..7).sample(&mut rng);
            assert!((3..7).contains(&v));
            let v = (1u64..=1).sample(&mut rng);
            assert_eq!(v, 1);
            let f = (0.25f64..0.5).sample(&mut rng);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn regex_strategy_samples_class_and_quantifier() {
        let mut rng = crate::test_runner::TestRng::from_name("regex");
        for _ in 0..200 {
            let s = "[a-c]{2,4}x?".sample(&mut rng);
            let stripped = s.strip_suffix('x').unwrap_or(&s);
            assert!((2..=4).contains(&stripped.len()), "bad sample {s:?}");
            assert!(stripped.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn oneof_honors_weights() {
        let mut rng = crate::test_runner::TestRng::from_name("weights");
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| s.sample(&mut rng)).count();
        assert!(trues > 700, "expected mostly true, got {trues}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_both_param_forms(
            v in crate::collection::vec(0u8..3, 0..10),
            (a, b) in (1u32..5, 1u32..5),
            flag: bool,
            seed: u64,
        ) {
            prop_assume!(!v.is_empty() || flag || seed % 2 == 0);
            prop_assert!(v.iter().all(|&x| x < 3));
            prop_assert!(a < 5 && b < 5);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
