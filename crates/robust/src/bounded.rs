//! A deterministic bounded LRU cache for the workspace's shared memos.
//!
//! Every long-lived cache in the planning stack (`wrapper::DesignCache`,
//! `selenc::EvalCache`, the serve daemon's profile memo) is bounded by a
//! [`BoundedCache`]: entries are evicted least-recently-used first once
//! either the entry cap or the byte cap is exceeded, so a daemon serving
//! many designs cannot grow without bound.
//!
//! The implementation is deliberately clock- and hash-free — recency is a
//! logical tick, storage is `BTreeMap` — so eviction order is a pure
//! function of the access sequence. A cache-bounded run therefore recomputes
//! exactly what an unbounded run memoized, and (because every cached
//! computation in this workspace is deterministic) produces bit-identical
//! results; callers rely on that for the eviction/bit-identity tests.

use std::collections::BTreeMap;

/// Entry and byte caps for a [`BoundedCache`].
///
/// A cap of `usize::MAX` is effectively unbounded; a cap of `0` disables
/// caching entirely (every insert is rejected).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLimits {
    /// Maximum number of live entries.
    pub max_entries: usize,
    /// Maximum sum of entry weights (approximate bytes).
    pub max_bytes: usize,
}

impl CacheLimits {
    /// Caps on both entry count and total weight.
    pub fn new(max_entries: usize, max_bytes: usize) -> Self {
        CacheLimits {
            max_entries,
            max_bytes,
        }
    }

    /// No effective bound (both caps at `usize::MAX`).
    pub fn unbounded() -> Self {
        CacheLimits::new(usize::MAX, usize::MAX)
    }

    /// Whether an entry of `weight` bytes can ever live in a cache with
    /// these limits.
    pub fn admits(&self, weight: usize) -> bool {
        self.max_entries > 0 && weight <= self.max_bytes
    }
}

impl Default for CacheLimits {
    fn default() -> Self {
        CacheLimits::unbounded()
    }
}

/// Running counters exposed for status reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries removed to make room.
    pub evictions: u64,
    /// Inserts rejected because a single entry exceeded the caps.
    pub rejected: u64,
}

impl CacheStats {
    /// Adds another counter set into this one (saturating), for rolling
    /// per-cache or per-run stats up into a fleet-wide total.
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits = self.hits.saturating_add(other.hits);
        self.misses = self.misses.saturating_add(other.misses);
        self.evictions = self.evictions.saturating_add(other.evictions);
        self.rejected = self.rejected.saturating_add(other.rejected);
    }
}

#[derive(Debug)]
struct Slot<V> {
    tick: u64,
    weight: usize,
    value: V,
}

/// A bounded LRU map from `K` to `V` with per-entry byte weights.
///
/// Not internally synchronized — wrap it in a `Mutex` to share across
/// threads (every current user does). Recency is a logical counter bumped
/// on each hit and insert, so behaviour is independent of wall-clock time
/// and thread scheduling given the same access sequence.
///
/// # Examples
///
/// ```
/// use robust::{BoundedCache, CacheLimits};
///
/// let mut cache = BoundedCache::new(CacheLimits::new(2, usize::MAX));
/// cache.insert(1, "a", 1);
/// cache.insert(2, "b", 1);
/// assert_eq!(cache.get(&1), Some(&"a")); // 1 is now most recent
/// cache.insert(3, "c", 1);               // evicts 2, the LRU entry
/// assert_eq!(cache.get(&2), None);
/// assert_eq!(cache.get(&1), Some(&"a"));
/// ```
#[derive(Debug)]
pub struct BoundedCache<K, V> {
    limits: CacheLimits,
    map: BTreeMap<K, Slot<V>>,
    /// tick → key, the eviction order; first entry is least recent.
    recency: BTreeMap<u64, K>,
    bytes: usize,
    tick: u64,
    stats: CacheStats,
}

impl<K: Ord + Clone, V> BoundedCache<K, V> {
    /// An empty cache with the given limits.
    pub fn new(limits: CacheLimits) -> Self {
        BoundedCache {
            limits,
            map: BTreeMap::new(),
            recency: BTreeMap::new(),
            bytes: 0,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured limits.
    pub fn limits(&self) -> CacheLimits {
        self.limits
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Sum of live entry weights.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Hit/miss/eviction counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        // Split borrow: bump recency before handing out the value ref.
        if let Some(slot) = self.map.get_mut(key) {
            self.recency.remove(&slot.tick);
            self.tick += 1;
            slot.tick = self.tick;
            self.recency.insert(self.tick, key.clone());
            self.stats.hits += 1;
            Some(&self.map.get(key).expect("just touched").value)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Looks up `key` without touching recency or counters.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|s| &s.value)
    }

    /// Inserts `key → value` with an approximate byte `weight`, evicting
    /// least-recently-used entries until the caps hold. An entry that can
    /// never fit (weight above the byte cap, or a zero entry cap) is
    /// rejected outright and counted in [`CacheStats::rejected`].
    pub fn insert(&mut self, key: K, value: V, weight: usize) {
        if !self.limits.admits(weight) {
            self.stats.rejected += 1;
            return;
        }
        if let Some(old) = self.map.remove(&key) {
            self.recency.remove(&old.tick);
            self.bytes -= old.weight;
        }
        while self.map.len() >= self.limits.max_entries
            || self.bytes.saturating_add(weight) > self.limits.max_bytes
        {
            if !self.evict_one() {
                break;
            }
        }
        self.tick += 1;
        self.recency.insert(self.tick, key.clone());
        self.bytes = self.bytes.saturating_add(weight);
        self.map.insert(
            key,
            Slot {
                tick: self.tick,
                weight,
                value,
            },
        );
    }

    /// Removes the least-recently-used entry; false when already empty.
    fn evict_one(&mut self) -> bool {
        let Some((&tick, _)) = self.recency.iter().next() else {
            return false;
        };
        let key = self.recency.remove(&tick).expect("tick just observed");
        if let Some(slot) = self.map.remove(&key) {
            self.bytes -= slot.weight;
        }
        self.stats.evictions += 1;
        true
    }

    /// Drops every entry (limits and counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_cap_evicts_lru_first() {
        let mut c = BoundedCache::new(CacheLimits::new(3, usize::MAX));
        for k in 0..3 {
            c.insert(k, k * 10, 1);
        }
        assert_eq!(c.get(&0), Some(&0)); // 0 most recent; 1 is now LRU
        c.insert(3, 30, 1);
        assert_eq!(c.peek(&1), None, "LRU entry evicted");
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn byte_cap_holds_under_mixed_weights() {
        let mut c = BoundedCache::new(CacheLimits::new(usize::MAX, 100));
        c.insert("a", (), 40);
        c.insert("b", (), 40);
        c.insert("c", (), 40); // evicts "a"
        assert_eq!(c.bytes(), 80);
        assert!(c.peek(&"a").is_none());
        c.insert("d", (), 100); // evicts everything else
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 100);
    }

    #[test]
    fn oversized_entries_are_rejected_not_thrashed() {
        let mut c = BoundedCache::new(CacheLimits::new(10, 50));
        c.insert(1, (), 10);
        c.insert(2, (), 51);
        assert_eq!(c.len(), 1, "oversized entry must not evict live ones");
        assert_eq!(c.stats().rejected, 1);
        let mut off = BoundedCache::new(CacheLimits::new(0, 50));
        off.insert(1, (), 1);
        assert!(off.is_empty());
    }

    #[test]
    fn reinsert_replaces_weight_accounting() {
        let mut c = BoundedCache::new(CacheLimits::new(10, 100));
        c.insert(1, "x", 60);
        c.insert(1, "y", 30);
        assert_eq!(c.bytes(), 30);
        assert_eq!(c.get(&1), Some(&"y"));
    }

    #[test]
    fn absorb_sums_and_saturates() {
        let mut a = CacheStats {
            hits: 3,
            misses: 2,
            evictions: 1,
            rejected: 0,
        };
        a.absorb(CacheStats {
            hits: 10,
            misses: 20,
            evictions: 30,
            rejected: 40,
        });
        assert_eq!(a.hits, 13);
        assert_eq!(a.misses, 22);
        assert_eq!(a.evictions, 31);
        assert_eq!(a.rejected, 40);
        let mut top = CacheStats {
            hits: u64::MAX,
            ..CacheStats::default()
        };
        top.absorb(a);
        assert_eq!(top.hits, u64::MAX);
    }

    #[test]
    fn eviction_order_is_a_pure_function_of_accesses() {
        let run = || {
            let mut c = BoundedCache::new(CacheLimits::new(4, usize::MAX));
            for k in 0..6 {
                c.insert(k, k, 1);
            }
            c.get(&3);
            c.insert(6, 6, 1);
            let mut keys: Vec<i32> = Vec::new();
            for k in 0..7 {
                if c.peek(&k).is_some() {
                    keys.push(k);
                }
            }
            keys
        };
        assert_eq!(run(), run());
    }
}
