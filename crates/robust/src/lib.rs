//! Fault-tolerant execution primitives shared by every solver in the
//! workspace: a wall-clock [`Deadline`] and a cooperative [`CancelToken`].
//!
//! Long-running search loops (`tam::exhaustive`, `tam::anneal`, the
//! planner's decision-table builds) accept a `&CancelToken` and poll
//! [`CancelToken::is_cancelled`] once per iteration. When the token trips
//! — because its deadline expired or another thread called
//! [`CancelToken::cancel`] — the loop stops at the next check and returns
//! its best incumbent instead of running forever. Tokens are cheap to
//! clone (an `Arc` plus a copied deadline) and safe to share across the
//! planner's worker threads.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bounded;

pub use bounded::{BoundedCache, CacheLimits, CacheStats};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A wall-clock budget for a unit of work.
///
/// `Deadline` is a thin wrapper over [`Instant`] so call sites read as
/// intent (`Deadline::within(ms)`) and so "no deadline" has a first-class
/// representation ([`Deadline::none`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline that never expires.
    pub fn none() -> Self {
        Deadline { at: None }
    }

    /// A deadline `budget` from now.
    // `robust` is the one crate allowed to read the wall clock: it owns the
    // Deadline abstraction everything else threads instead.
    #[allow(clippy::disallowed_methods)]
    pub fn within(budget: Duration) -> Self {
        Deadline {
            at: Instant::now().checked_add(budget),
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Self {
        Deadline { at: Some(instant) }
    }

    /// Whether the deadline has passed.
    #[allow(clippy::disallowed_methods)]
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// Time left before expiry; `None` when unbounded.
    #[allow(clippy::disallowed_methods)]
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Splits the remaining budget, returning a deadline for the given
    /// fraction of it. An unbounded deadline splits into itself.
    ///
    /// Used by the solver cascade to give each stage a slice of the
    /// overall budget while later stages keep the full remainder as a
    /// backstop.
    pub fn fraction(&self, f: f64) -> Deadline {
        match self.remaining() {
            None => *self,
            Some(rem) => Deadline::within(rem.mul_f64(f.clamp(0.0, 1.0))),
        }
    }

    /// The earlier of two deadlines.
    pub fn min(self, other: Deadline) -> Deadline {
        match (self.at, other.at) {
            (Some(a), Some(b)) => Deadline { at: Some(a.min(b)) },
            (Some(a), None) => Deadline { at: Some(a) },
            (None, b) => Deadline { at: b },
        }
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::none()
    }
}

/// A cooperative cancellation token with an optional deadline.
///
/// Cloned tokens share one cancellation flag: cancelling any clone trips
/// them all. The deadline is carried per-token so a child token can run
/// under a tighter slice ([`CancelToken::with_deadline`]) while still
/// honouring its parent's kill switch.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Deadline,
}

impl CancelToken {
    /// A token that never trips on its own (no deadline).
    pub fn never() -> Self {
        CancelToken::default()
    }

    /// A token that trips when `deadline` expires.
    pub fn with(deadline: Deadline) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline,
        }
    }

    /// A token expiring `budget` from now.
    pub fn expiring_in(budget: Duration) -> Self {
        CancelToken::with(Deadline::within(budget))
    }

    /// A child token sharing this token's kill switch but bounded by the
    /// earlier of the two deadlines.
    pub fn with_deadline(&self, deadline: Deadline) -> Self {
        CancelToken {
            flag: Arc::clone(&self.flag),
            deadline: self.deadline.min(deadline),
        }
    }

    /// Trips the token (and every clone sharing its flag).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether work should stop: explicit cancel or expired deadline.
    ///
    /// Solver loops poll this once per iteration; the check is one
    /// relaxed atomic load plus (when a deadline is set) one clock read.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.deadline.expired()
    }

    /// Whether [`cancel`](CancelToken::cancel) was called explicitly,
    /// regardless of the deadline. Lets callers distinguish an external
    /// interruption from ordinary budget exhaustion.
    pub fn cancel_requested(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The deadline this token runs under.
    pub fn deadline(&self) -> Deadline {
        self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_trips() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        assert_eq!(t.deadline().remaining(), None);
    }

    #[test]
    fn cancel_propagates_to_clones_and_children() {
        let t = CancelToken::never();
        let child = t.with_deadline(Deadline::within(Duration::from_secs(3600)));
        let clone = t.clone();
        t.cancel();
        assert!(child.is_cancelled());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn expired_deadline_trips_token() {
        let t = CancelToken::expiring_in(Duration::ZERO);
        assert!(t.is_cancelled());
        let unbounded = CancelToken::never();
        assert!(!unbounded.with_deadline(Deadline::none()).is_cancelled());
    }

    #[test]
    fn child_token_takes_tighter_deadline() {
        let parent = CancelToken::expiring_in(Duration::ZERO);
        let child = parent.with_deadline(Deadline::within(Duration::from_secs(3600)));
        assert!(child.is_cancelled(), "parent deadline must win");
    }

    #[test]
    fn fraction_splits_remaining_budget() {
        let d = Deadline::within(Duration::from_secs(100));
        let slice = d.fraction(0.1);
        let rem = slice.remaining().expect("bounded");
        assert!(rem <= Duration::from_secs(10));
        assert_eq!(Deadline::none().fraction(0.5), Deadline::none());
    }

    #[test]
    fn min_prefers_earlier() {
        let a = Deadline::within(Duration::from_secs(1));
        let b = Deadline::within(Duration::from_secs(50));
        assert_eq!(a.min(b), a);
        assert_eq!(a.min(Deadline::none()), a);
        assert_eq!(Deadline::none().min(b), b);
    }
}
