//! Property tests for [`robust::Deadline`] composition (`fraction`, `min`)
//! and [`robust::CancelToken`] edge cases: zero budgets, saturating
//! instants, and nested fractional slices.
//!
//! Wherever possible the properties compare *stored instants* (via
//! `Deadline::min`, which is a pure comparison) instead of re-reading the
//! clock, so the assertions hold on arbitrarily slow CI machines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

use proptest::prelude::*;

use robust::{CancelToken, Deadline};

/// A deadline at a fixed offset (ms) from a common base instant —
/// comparisons between two of these are exact, no clock reads involved.
fn at_offset(base: Instant, ms: u64) -> Deadline {
    match base.checked_add(Duration::from_millis(ms)) {
        Some(t) => Deadline::at(t),
        None => Deadline::none(),
    }
}

proptest! {
    #[test]
    fn min_is_commutative_and_associative(
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
        c in 0u64..1_000_000,
    ) {
        let base = Instant::now();
        let (da, db, dc) = (at_offset(base, a), at_offset(base, b), at_offset(base, c));
        prop_assert_eq!(da.min(db), db.min(da));
        prop_assert_eq!(da.min(db).min(dc), da.min(db.min(dc)));
        prop_assert_eq!(da.min(da), da);
    }

    #[test]
    fn min_with_unbounded_is_identity(ms in 0u64..1_000_000) {
        let base = Instant::now();
        let d = at_offset(base, ms);
        prop_assert_eq!(d.min(Deadline::none()), d);
        prop_assert_eq!(Deadline::none().min(d), d);
        prop_assert_eq!(Deadline::none().min(Deadline::none()), Deadline::none());
    }

    /// A proper fraction of a bounded budget expires no later than the
    /// whole budget: `min` must pick the slice. Pure instant comparison.
    /// `f` stays ≤ 0.9 so the fraction's real margin dwarfs the clock
    /// motion between the two `Instant::now()` reads inside `fraction`.
    #[test]
    fn fraction_never_outlives_the_whole(
        secs in 10u64..10_000,
        f in 0.0f64..0.9,
    ) {
        let d = Deadline::within(Duration::from_secs(secs));
        let slice = d.fraction(f);
        prop_assert_eq!(slice.min(d), slice);
        prop_assert!(slice.remaining().is_some(), "a slice of bounded is bounded");
    }

    /// Nested fractions keep shrinking: slicing a slice expires no later
    /// than the outer slice.
    #[test]
    fn nested_fractions_shrink(
        secs in 100u64..10_000,
        outer in 0.1f64..0.9,
        inner in 0.0f64..0.9,
    ) {
        let d = Deadline::within(Duration::from_secs(secs));
        let one = d.fraction(outer);
        let two = one.fraction(inner);
        prop_assert_eq!(two.min(one), two);
        prop_assert_eq!(two.min(d), two);
    }

    /// Out-of-range fractions clamp: anything ≤ 0 is an immediately
    /// expired slice, and the unbounded deadline slices into itself for
    /// every `f`.
    #[test]
    fn fraction_clamps_and_preserves_none(
        secs in 1u64..1_000,
        f in -10.0f64..10.0,
        neg in -10.0f64..0.0,
    ) {
        let d = Deadline::within(Duration::from_secs(secs));
        prop_assert!(d.fraction(neg).expired(), "non-positive fraction = empty budget");
        prop_assert_eq!(Deadline::none().fraction(f), Deadline::none());
    }

    /// Saturating instants: a budget too large for the clock's range
    /// (`checked_add` overflow) degrades to an unbounded deadline rather
    /// than wrapping into the past.
    #[test]
    fn saturating_budgets_degrade_to_unbounded(ms in 0u64..1_000_000) {
        let huge = Deadline::within(Duration::MAX);
        prop_assert_eq!(huge.remaining(), None);
        prop_assert!(!huge.expired());
        let base = Instant::now();
        let bounded = at_offset(base, ms);
        prop_assert_eq!(huge.min(bounded), bounded);
        prop_assert_eq!(huge.fraction(0.5), huge);
    }

    /// Zero budgets expire immediately, and a token under one trips on its
    /// own — but is *not* reported as an explicit cancellation.
    #[test]
    fn zero_budget_trips_without_cancel_request(extra in 0u64..3) {
        let d = Deadline::within(Duration::from_nanos(extra));
        // Give the nanos-scale budget a moment to lapse deterministically.
        let t = CancelToken::with(d);
        while !t.is_cancelled() {
            std::thread::yield_now();
        }
        prop_assert!(t.deadline().remaining().unwrap_or(Duration::ZERO) == Duration::ZERO);
        prop_assert!(!t.cancel_requested(), "deadline expiry is not an explicit cancel");
        t.cancel();
        prop_assert!(t.cancel_requested());
    }

    /// Chained `with_deadline` calls accumulate as the running `min` of
    /// every deadline in the chain, regardless of order.
    #[test]
    fn nested_child_tokens_take_the_tightest_deadline(
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
        c in 0u64..1_000_000,
    ) {
        let base = Instant::now();
        let (da, db, dc) = (at_offset(base, a), at_offset(base, b), at_offset(base, c));
        let root = CancelToken::with(da);
        let chained = root.with_deadline(db).with_deadline(dc);
        prop_assert_eq!(chained.deadline(), da.min(db).min(dc));
        let reordered = root.with_deadline(dc).with_deadline(db);
        prop_assert_eq!(chained.deadline(), reordered.deadline());
    }

    /// The kill switch is shared across arbitrarily deep child chains and
    /// clones: cancelling any one trips them all, in both directions.
    #[test]
    fn cancel_propagates_through_nested_children(depth in 1usize..8, ms in 1u64..1_000_000) {
        let base = Instant::now();
        let root = CancelToken::never();
        let mut leaf = root.clone();
        for step in 0..depth {
            leaf = leaf.with_deadline(at_offset(base, ms + step as u64));
        }
        prop_assert!(!root.cancel_requested());
        leaf.cancel();
        prop_assert!(root.is_cancelled(), "leaf cancel reaches the root");
        let sibling = root.with_deadline(Deadline::none());
        prop_assert!(sibling.is_cancelled(), "new children see the tripped flag");
    }

    /// A child under an unbounded deadline inherits exactly the parent's
    /// bound (`min` with none is identity) — composing with `none` never
    /// loosens or tightens anything.
    #[test]
    fn unbounded_child_inherits_parent_bound(ms in 0u64..1_000_000) {
        let base = Instant::now();
        let d = at_offset(base, ms);
        let parent = CancelToken::with(d);
        let child = parent.with_deadline(Deadline::none());
        prop_assert_eq!(child.deadline(), d);
    }
}
