//! Test-set and scan-slice statistics — the analysis behind the paper's
//! Section 2.
//!
//! The paper explains the non-monotonic τ_c(w, m) behaviour by three
//! mechanisms: idle/pad bits added to balance wrapper chains, the changing
//! distribution of 1s/0s/Xs over scan slices, and the ceiling function in
//! `w(m)`. This module measures the first two directly, so users can see
//! *why* a given `(w, m)` point behaves the way it does.

use soc_model::{Core, TestSet, Trit};
use wrapper::{design_wrapper, WrapperDesign};

/// Care-bit statistics of a test set as seen through a wrapper design's
/// slices.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceStats {
    /// Wrapper chains (`m`).
    pub chains: u32,
    /// Slices per pattern (`s_i`).
    pub slices_per_pattern: u64,
    /// Fraction of slice positions that are idle/pad bits (positions past
    /// a chain's load length).
    pub pad_fraction: f64,
    /// Mean care bits per slice.
    pub mean_care_per_slice: f64,
    /// Mean *minority* (target-symbol) care bits per slice — what the
    /// single-bit encoder actually pays for.
    pub mean_targets_per_slice: f64,
    /// Fraction of slices that are all-X (cost exactly one codeword).
    pub free_slice_fraction: f64,
    /// Patterns analyzed.
    pub patterns: usize,
}

impl SliceStats {
    /// Collects slice statistics for `test_set` under `design`, over at
    /// most `sample` evenly spaced patterns.
    ///
    /// # Panics
    ///
    /// Panics if `sample == 0` or the design and set disagree on cube
    /// length.
    pub fn collect(design: &WrapperDesign, test_set: &TestSet, sample: usize) -> Self {
        assert!(sample > 0, "sample size must be positive");
        let p = test_set.pattern_count();
        let indices: Vec<usize> = if sample >= p {
            (0..p).collect()
        } else {
            let mut v: Vec<usize> = (0..sample).map(|i| i * p / sample).collect();
            v.dedup();
            v
        };

        let m = design.chain_count() as u64;
        let s_i = design.scan_in_length();
        let mut total_positions = 0u64;
        let mut pad_positions = 0u64;
        let mut care = 0u64;
        let mut targets = 0u64;
        let mut free_slices = 0u64;
        let mut total_slices = 0u64;

        for &pi in &indices {
            let cube = test_set.pattern(pi).expect("sampled index in range");
            for depth in 0..s_i {
                let mut ones = 0u64;
                let mut zeros = 0u64;
                for chain in design.chains() {
                    match chain.position_at(depth) {
                        Some(pos) => match cube.get(pos as usize) {
                            Trit::One => ones += 1,
                            Trit::Zero => zeros += 1,
                            Trit::X => {}
                        },
                        None => pad_positions += 1,
                    }
                }
                total_positions += m;
                care += ones + zeros;
                targets += ones.min(zeros);
                total_slices += 1;
                if ones + zeros == 0 {
                    free_slices += 1;
                }
            }
        }

        SliceStats {
            chains: design.chain_count(),
            slices_per_pattern: s_i,
            pad_fraction: ratio(pad_positions, total_positions),
            mean_care_per_slice: mean(care, total_slices),
            mean_targets_per_slice: mean(targets, total_slices),
            free_slice_fraction: ratio(free_slices, total_slices),
            patterns: indices.len(),
        }
    }

    /// Convenience: statistics of `core` at `m` wrapper chains.
    ///
    /// # Panics
    ///
    /// Panics if the core has no attached test set.
    pub fn for_core(core: &Core, m: u32, sample: usize) -> Self {
        let test_set = core
            .test_set()
            .expect("core must carry a test set; synthesize or attach cubes first");
        let design = design_wrapper(core, m);
        SliceStats::collect(&design, test_set, sample)
    }

    /// A rough per-slice codeword cost predicted from the statistics alone
    /// (header + minority care bits), ignoring group-copy savings — useful
    /// as a sanity band around measured costs.
    pub fn predicted_cost_per_slice(&self) -> f64 {
        self.mean_targets_per_slice.max(1.0)
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

fn mean(sum: u64, n: u64) -> f64 {
    if n == 0 {
        0.0
    } else {
        sum as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::compress_test_set;
    use soc_model::CubeSynthesis;

    fn prepared(cells: u32, density: f64) -> Core {
        let mut core = Core::builder("s")
            .inputs(10)
            .outputs(10)
            .flexible_cells(cells, 256)
            .pattern_count(12)
            .care_density(density)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(density).synthesize(&core, 5);
        core.attach_test_set(ts).unwrap();
        core
    }

    #[test]
    fn care_statistics_track_density() {
        let core = prepared(1000, 0.10);
        let stats = SliceStats::for_core(&core, 64, usize::MAX);
        // ~10% of ~64 real positions per slice.
        assert!(
            (3.0..10.0).contains(&stats.mean_care_per_slice),
            "{stats:?}"
        );
        assert!(stats.mean_targets_per_slice <= stats.mean_care_per_slice / 2.0 + 0.5);
        assert_eq!(stats.patterns, 12);
    }

    #[test]
    fn pad_fraction_grows_with_imbalance() {
        // A hard core with one long chain pads heavily at high m.
        let mut core = Core::builder("h")
            .inputs(2)
            .fixed_chains(vec![100, 4, 4, 4])
            .pattern_count(3)
            .care_density(0.5)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(0.5).synthesize(&core, 1);
        core.attach_test_set(ts).unwrap();
        let narrow = SliceStats::for_core(&core, 1, usize::MAX);
        let wide = SliceStats::for_core(&core, 4, usize::MAX);
        assert!(wide.pad_fraction > narrow.pad_fraction + 0.3, "{wide:?}");
    }

    #[test]
    fn free_slices_appear_at_low_density() {
        let sparse = prepared(2000, 0.005);
        let stats = SliceStats::for_core(&sparse, 200, 6);
        assert!(stats.free_slice_fraction > 0.2, "{stats:?}");
        let dense = prepared(2000, 0.5);
        let dstats = SliceStats::for_core(&dense, 200, 6);
        assert!(dstats.free_slice_fraction < 0.05, "{dstats:?}");
    }

    #[test]
    fn predicted_cost_brackets_measured_cost() {
        let core = prepared(1500, 0.05);
        let design = design_wrapper(&core, 128);
        let stats = SliceStats::collect(&design, core.test_set().unwrap(), usize::MAX);
        let measured = compress_test_set(&design, core.test_set().unwrap());
        let slices = stats.slices_per_pattern * core.pattern_count() as u64;
        let measured_per_slice = measured.codewords as f64 / slices as f64;
        let predicted = stats.predicted_cost_per_slice();
        // Group-copy can only improve on the prediction; the header can
        // add at most 1.
        assert!(
            measured_per_slice <= predicted + 1.0,
            "measured {measured_per_slice:.2} vs predicted {predicted:.2}"
        );
        assert!(
            measured_per_slice >= predicted * 0.3,
            "measured {measured_per_slice:.2} vs predicted {predicted:.2}"
        );
    }

    #[test]
    fn sampling_controls_pattern_count() {
        let core = prepared(500, 0.2);
        let s = SliceStats::for_core(&core, 32, 4);
        assert_eq!(s.patterns, 4);
    }
}
