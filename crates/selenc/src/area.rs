//! Hardware cost model for the selective-encoding decompressor.
//!
//! The paper (§3, step 2) reports the synthesized controller at **5
//! flip-flops and 23 combinational gates**, independent of `(w, m)`, and one
//! datapath data point of **69 gates and 1035 flip-flops** (consistent with
//! `m = 1024`, `c = 11`: an `m`-bit slice buffer plus a `c`-bit index
//! register). The closed-form model below is calibrated to those two data
//! points; it is used for reporting only, never for optimization decisions.

use std::fmt;

use crate::code::SliceCode;

/// Flip-flop and gate counts of one decompressor instance.
///
/// # Examples
///
/// ```
/// use selenc::{decompressor_area, SliceCode};
///
/// let area = decompressor_area(SliceCode::for_chains(1024));
/// assert_eq!(area.datapath_flip_flops, 1024 + 11); // paper: 1035
/// assert_eq!(area.datapath_gates, 69);             // paper: 69
/// assert_eq!(area.flip_flops(), 1035 + 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecompressorArea {
    /// Flip-flops in the fixed controller (5 per the paper).
    pub controller_flip_flops: u64,
    /// Combinational gates in the fixed controller (23 per the paper).
    pub controller_gates: u64,
    /// Flip-flops in the `(w, m)`-dependent datapath: the `m`-bit slice
    /// buffer plus the `c`-bit index register.
    pub datapath_flip_flops: u64,
    /// Combinational gates in the datapath (index decode + group mux),
    /// calibrated as `ceil(m/16) + 5`.
    pub datapath_gates: u64,
}

impl DecompressorArea {
    /// Total flip-flops.
    pub fn flip_flops(&self) -> u64 {
        self.controller_flip_flops + self.datapath_flip_flops
    }

    /// Total combinational gates.
    pub fn gates(&self) -> u64 {
        self.controller_gates + self.datapath_gates
    }

    /// Rough total cell count (one flip-flop counted as 6 gate
    /// equivalents, the usual standard-cell rule of thumb).
    pub fn gate_equivalents(&self) -> u64 {
        self.gates() + 6 * self.flip_flops()
    }
}

impl fmt::Display for DecompressorArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} FFs + {} gates (~{} gate equivalents)",
            self.flip_flops(),
            self.gates(),
            self.gate_equivalents()
        )
    }
}

/// Estimates the hardware cost of a decompressor with the given slice code.
pub fn decompressor_area(code: SliceCode) -> DecompressorArea {
    let m = u64::from(code.chains());
    let c = u64::from(code.data_bits());
    DecompressorArea {
        controller_flip_flops: 5,
        controller_gates: 23,
        datapath_flip_flops: m + c,
        datapath_gates: m.div_ceil(16) + 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_point_matches_paper() {
        let a = decompressor_area(SliceCode::for_chains(1024));
        assert_eq!(a.datapath_flip_flops, 1035);
        assert_eq!(a.datapath_gates, 69);
        assert_eq!(a.controller_flip_flops, 5);
        assert_eq!(a.controller_gates, 23);
    }

    #[test]
    fn area_grows_with_chain_count() {
        let small = decompressor_area(SliceCode::for_chains(16));
        let large = decompressor_area(SliceCode::for_chains(512));
        assert!(large.flip_flops() > small.flip_flops());
        assert!(large.gates() > small.gates());
        assert!(large.gate_equivalents() > small.gate_equivalents());
    }

    #[test]
    fn cost_is_negligible_for_million_gate_cores() {
        // Paper: "For larger than million-gate designs, this corresponds to
        // a hardware cost of only 1%".
        let a = decompressor_area(SliceCode::for_chains(1024));
        assert!(a.gate_equivalents() < 10_000);
    }

    #[test]
    fn display_is_informative() {
        let s = decompressor_area(SliceCode::for_chains(64)).to_string();
        assert!(s.contains("FFs"));
        assert!(s.contains("gate equivalents"));
    }
}
