//! Slice-code parameters and codewords of the selective-encoding scheme.
//!
//! With `m` wrapper chains, every scan slice is `m` bits wide and is encoded
//! by one or more *slice codes* of `w = c + 2` bits, where
//! `c = ceil(log2(m+1))` (Wang & Chakrabarty, ITC 2005; paper §3, step 2).
//! Each codeword carries a one-bit *mode*, a one-bit *last* flag, and a
//! `c`-bit data field; see `DESIGN.md` §5 for the exact bit-level
//! reconstruction used here.

use std::fmt;
use std::ops::RangeInclusive;

/// Slice-code parameters for a decompressor with `m` output chains.
///
/// # Examples
///
/// ```
/// use selenc::SliceCode;
///
/// let code = SliceCode::for_chains(253);
/// assert_eq!(code.chains(), 253);
/// assert_eq!(code.data_bits(), 8);     // ceil(log2(254)) = 8
/// assert_eq!(code.tam_width(), 10);    // the paper's Fig. 2 operating point
/// assert_eq!(SliceCode::feasible_chains(10), 128..=255);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SliceCode {
    m: u32,
    c: u32,
}

impl SliceCode {
    /// Parameters for a decompressor feeding `m` wrapper chains.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn for_chains(m: u32) -> Self {
        assert!(m > 0, "chain count must be positive");
        let c = u32::BITS - m.leading_zeros(); // ceil(log2(m+1)) for m >= 1
        SliceCode { m, c }
    }

    /// Number of decompressor outputs (wrapper chains), `m`.
    pub fn chains(self) -> u32 {
        self.m
    }

    /// Width of the data field, `c = ceil(log2(m+1))`.
    pub fn data_bits(self) -> u32 {
        self.c
    }

    /// Number of decompressor inputs (TAM wires), `w = c + 2`.
    pub fn tam_width(self) -> u32 {
        self.c + 2
    }

    /// Number of `c`-bit groups the slice divides into for group-copy mode.
    pub fn group_count(self) -> u32 {
        self.m.div_ceil(self.c)
    }

    /// Number of bits in group `g` (the last group may be partial).
    ///
    /// # Panics
    ///
    /// Panics if `g >= self.group_count()`.
    pub fn group_len(self, g: u32) -> u32 {
        assert!(g < self.group_count(), "group {g} out of range");
        let start = g * self.c;
        (self.m - start).min(self.c)
    }

    /// The chain counts servable by a decompressor with `w` TAM inputs:
    /// all `m` with `ceil(log2(m+1)) + 2 == w`.
    ///
    /// # Panics
    ///
    /// Panics if `w < 3` (the narrowest slice code has a 1-bit data field).
    pub fn feasible_chains(w: u32) -> RangeInclusive<u32> {
        assert!(w >= 3, "slice codes need at least 3 bits (got {w})");
        let c = w - 2;
        let hi = if c >= 32 { u32::MAX } else { (1u32 << c) - 1 };
        let lo = match c {
            1 => 1,
            c if c >= 33 => u32::MAX, // class empty within u32; callers clip
            c => 1u32 << (c - 1),
        };
        lo..=hi
    }

    /// The narrowest TAM width any decompressor can use.
    pub const MIN_TAM_WIDTH: u32 = 3;
}

impl fmt::Display for SliceCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w={} → m={}", self.tam_width(), self.m)
    }
}

/// One slice codeword: `[mode][last][data]`.
///
/// * In the first codeword of a slice, `mode` carries the *fill polarity*
///   (the majority care value; don't-cares take it too) and `data` is
///   either a bit index to flip to the target symbol or the spare value `m`
///   meaning "no update".
/// * In subsequent codewords, `mode = false` is single-bit mode (flip
///   `data`), `mode = true` announces a group copy: `data` holds the group
///   index and the *next* codeword's data field holds the literal bits.
/// * `last = true` closes the slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Codeword {
    /// Mode bit (fill polarity in a slice's first codeword).
    pub mode: bool,
    /// Set on the final codeword of a slice.
    pub last: bool,
    /// `c`-bit payload: bit index, group index, or literal group data.
    pub data: u32,
}

impl Codeword {
    /// Packs the codeword into its `w`-bit wire form:
    /// bit `w-1` = mode, bit `w-2` = last, low `c` bits = data.
    ///
    /// # Panics
    ///
    /// Panics if `data` does not fit in the code's data field.
    pub fn pack(self, code: SliceCode) -> u64 {
        let c = code.data_bits();
        assert!(
            u64::from(self.data) < (1u64 << c),
            "data {} does not fit in {c} bits",
            self.data
        );
        (u64::from(self.mode) << (c + 1)) | (u64::from(self.last) << c) | u64::from(self.data)
    }

    /// Unpacks a codeword from its `w`-bit wire form.
    ///
    /// # Panics
    ///
    /// Panics if `bits` has bits set above the code's width.
    pub fn unpack(bits: u64, code: SliceCode) -> Self {
        let c = code.data_bits();
        assert!(
            bits < (1u64 << (c + 2)),
            "word {bits:#x} wider than w = {}",
            c + 2
        );
        Codeword {
            mode: (bits >> (c + 1)) & 1 == 1,
            last: (bits >> c) & 1 == 1,
            data: (bits & ((1u64 << c) - 1)) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_bits_match_ceiling_log() {
        for (m, c) in [
            (1u32, 1u32),
            (2, 2),
            (3, 2),
            (4, 3),
            (7, 3),
            (8, 4),
            (127, 7),
            (128, 8),
            (255, 8),
            (256, 9),
        ] {
            let code = SliceCode::for_chains(m);
            assert_eq!(code.data_bits(), c, "m={m}");
            assert_eq!(code.tam_width(), c + 2, "m={m}");
        }
    }

    #[test]
    fn feasible_chains_inverts_tam_width() {
        for w in 3..=12 {
            for m in SliceCode::feasible_chains(w) {
                assert_eq!(SliceCode::for_chains(m).tam_width(), w, "w={w} m={m}");
            }
        }
        // Boundary checks either side of the range.
        assert_eq!(SliceCode::for_chains(127).tam_width(), 9);
        assert_eq!(SliceCode::for_chains(128).tam_width(), 10);
        assert_eq!(SliceCode::for_chains(255).tam_width(), 10);
        assert_eq!(SliceCode::for_chains(256).tam_width(), 11);
    }

    #[test]
    fn spare_value_always_exists() {
        // `data = m` must fit in the data field for every m.
        for m in 1..2000 {
            let code = SliceCode::for_chains(m);
            assert!(m < (1u32 << code.data_bits()), "m={m}");
        }
    }

    #[test]
    fn group_geometry() {
        let code = SliceCode::for_chains(10); // c = 4, groups of 4: 4+4+2
        assert_eq!(code.group_count(), 3);
        assert_eq!(code.group_len(0), 4);
        assert_eq!(code.group_len(2), 2);
        let exact = SliceCode::for_chains(8); // c = 4, groups: 4+4
        assert_eq!(exact.group_count(), 2);
        assert_eq!(exact.group_len(1), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn group_len_out_of_range_panics() {
        SliceCode::for_chains(10).group_len(3);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let code = SliceCode::for_chains(100); // c = 7, w = 9
        for mode in [false, true] {
            for last in [false, true] {
                for data in [0u32, 1, 63, 100, 127] {
                    let cw = Codeword { mode, last, data };
                    let bits = cw.pack(code);
                    assert!(bits < 1 << 9);
                    assert_eq!(Codeword::unpack(bits, code), cw);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn pack_rejects_oversized_data() {
        let code = SliceCode::for_chains(3); // c = 2
        Codeword {
            mode: false,
            last: false,
            data: 4,
        }
        .pack(code);
    }

    #[test]
    fn display_shows_both_widths() {
        assert_eq!(SliceCode::for_chains(253).to_string(), "w=10 → m=253");
    }
}
