//! Cycle-accurate model of the on-chip decompressor.
//!
//! The hardware sits between `w` TAM wires and `m` wrapper chains: each
//! clock it consumes one `w`-bit codeword; when a slice is complete (a
//! codeword with the *last* flag) the reassembled `m` bits are shifted into
//! the wrapper chains. This model is the executable specification that the
//! encoder is verified against: `decode(encode(cube))` must reproduce every
//! care bit of `cube`.

use std::fmt;

use crate::code::{Codeword, SliceCode};

/// Decompressor state machine.
///
/// # Examples
///
/// ```
/// use selenc::{Decompressor, Encoder, SliceCode};
///
/// let code = SliceCode::for_chains(8);
/// let cws = Encoder::new(code).encode_slice(&"XXX1000X".parse()?);
/// let mut dec = Decompressor::new(code);
/// let mut slices = Vec::new();
/// for cw in cws {
///     if let Some(slice) = dec.feed(cw)? {
///         slices.push(slice);
///     }
/// }
/// assert_eq!(slices.len(), 1);
/// assert!(slices[0][3]); // the care-1 bit
/// assert!(!slices[0][4]); // a care-0 bit
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Decompressor {
    code: SliceCode,
    buffer: Vec<bool>,
    fill_latch: bool,
    state: State,
    slices_emitted: u64,
    words_consumed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Waiting for the first codeword of a slice.
    AwaitHeader,
    /// Inside a slice, waiting for updates or the last flag.
    InSlice,
    /// A group-copy header arrived; the next word is the literal.
    AwaitLiteral { group: u32 },
}

impl Decompressor {
    /// Creates a decompressor for the given slice code.
    pub fn new(code: SliceCode) -> Self {
        Decompressor {
            code,
            buffer: vec![false; code.chains() as usize],
            fill_latch: false,
            state: State::AwaitHeader,
            slices_emitted: 0,
            words_consumed: 0,
        }
    }

    /// The slice code in use.
    pub fn code(&self) -> SliceCode {
        self.code
    }

    /// Number of complete slices emitted so far.
    pub fn slices_emitted(&self) -> u64 {
        self.slices_emitted
    }

    /// Number of codewords consumed so far (one per TAM clock).
    pub fn words_consumed(&self) -> u64 {
        self.words_consumed
    }

    /// Returns `true` when the decompressor is between slices (a safe point
    /// to stop the stream).
    pub fn is_idle(&self) -> bool {
        self.state == State::AwaitHeader
    }

    /// Consumes one codeword; returns the completed `m`-bit slice when this
    /// word carried the last flag.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed streams: an out-of-range bit
    /// index or group index, a group-copy header carrying the last flag, or
    /// a group-copy header in a slice's first codeword position.
    pub fn feed(&mut self, cw: Codeword) -> Result<Option<Vec<bool>>, DecodeError> {
        self.words_consumed += 1;
        let m = self.code.chains();
        match self.state {
            State::AwaitHeader => {
                let fill = cw.mode;
                self.fill_latch = fill;
                self.buffer.fill(fill);
                if cw.data < m {
                    self.buffer[cw.data as usize] = !fill;
                } else if cw.data > m {
                    return Err(DecodeError::BitIndexOutOfRange {
                        index: cw.data,
                        chains: m,
                    });
                }
                self.state = State::InSlice;
                Ok(self.maybe_emit(cw.last))
            }
            State::InSlice => {
                if cw.mode {
                    if cw.data >= self.code.group_count() {
                        return Err(DecodeError::GroupOutOfRange {
                            group: cw.data,
                            groups: self.code.group_count(),
                        });
                    }
                    if cw.last {
                        return Err(DecodeError::LastOnGroupHeader { group: cw.data });
                    }
                    self.state = State::AwaitLiteral { group: cw.data };
                    Ok(None)
                } else {
                    if cw.data < m {
                        let fill = self.current_fill();
                        self.buffer[cw.data as usize] = !fill;
                    } else if cw.data > m {
                        return Err(DecodeError::BitIndexOutOfRange {
                            index: cw.data,
                            chains: m,
                        });
                    }
                    Ok(self.maybe_emit(cw.last))
                }
            }
            State::AwaitLiteral { group } => {
                let start = group * self.code.data_bits();
                let len = self.code.group_len(group);
                // The encoder never sets bits beyond the group's length, so
                // a populated spare bit is a corrupted word (e.g. a channel
                // bit-flip) — reject it rather than silently dropping it.
                if len < 32 && cw.data >> len != 0 {
                    return Err(DecodeError::LiteralSpareBitsSet {
                        group,
                        data: cw.data,
                        len,
                    });
                }
                for j in 0..len {
                    self.buffer[(start + j) as usize] = cw.data >> j & 1 == 1;
                }
                self.state = State::InSlice;
                Ok(self.maybe_emit(cw.last))
            }
        }
    }

    /// Decodes an entire stream of codewords into slices.
    ///
    /// # Errors
    ///
    /// Propagates [`feed`](Self::feed) errors, and returns
    /// [`DecodeError::TruncatedStream`] when the stream ends mid-slice.
    pub fn decode_all(
        &mut self,
        words: impl IntoIterator<Item = Codeword>,
    ) -> Result<Vec<Vec<bool>>, DecodeError> {
        let mut out = Vec::new();
        for cw in words {
            if let Some(slice) = self.feed(cw)? {
                out.push(slice);
            }
        }
        if !self.is_idle() {
            return Err(DecodeError::TruncatedStream);
        }
        Ok(out)
    }

    /// The fill value of the slice currently being assembled (the hardware
    /// latches the header's mode bit; single-bit flips write its
    /// complement).
    fn current_fill(&self) -> bool {
        self.fill_latch
    }

    fn maybe_emit(&mut self, last: bool) -> Option<Vec<bool>> {
        if last {
            self.state = State::AwaitHeader;
            self.slices_emitted += 1;
            Some(self.buffer.clone())
        } else {
            None
        }
    }
}

/// Error produced when a codeword stream is malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// A single-bit codeword addressed a bit beyond the chain count (and
    /// beyond the spare no-op value `m`).
    BitIndexOutOfRange {
        /// The offending index.
        index: u32,
        /// Number of chains `m`.
        chains: u32,
    },
    /// A group-copy header addressed a nonexistent group.
    GroupOutOfRange {
        /// The offending group index.
        group: u32,
        /// Number of groups.
        groups: u32,
    },
    /// A group-copy header carried the last flag (its literal would be
    /// missing).
    LastOnGroupHeader {
        /// The group announced by the offending header.
        group: u32,
    },
    /// A group-copy literal set bits beyond its group's length (the
    /// encoder never does — a corrupted word).
    LiteralSpareBitsSet {
        /// The group the literal belongs to.
        group: u32,
        /// The literal's raw data field.
        data: u32,
        /// The group's length in bits.
        len: u32,
    },
    /// The stream ended in the middle of a slice.
    TruncatedStream,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BitIndexOutOfRange { index, chains } => write!(
                f,
                "bit index {index} out of range for {chains} chains (spare value is {chains})"
            ),
            DecodeError::GroupOutOfRange { group, groups } => {
                write!(f, "group index {group} out of range ({groups} groups)")
            }
            DecodeError::LastOnGroupHeader { group } => {
                write!(
                    f,
                    "group-copy header for group {group} carries the last flag"
                )
            }
            DecodeError::LiteralSpareBitsSet { group, data, len } => write!(
                f,
                "literal {data:#b} for group {group} sets bits beyond its {len}-bit length"
            ),
            DecodeError::TruncatedStream => write!(f, "codeword stream ended mid-slice"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use soc_model::TritVec;

    fn roundtrip(m: u32, s: &str) -> Vec<bool> {
        let code = SliceCode::for_chains(m);
        let slice: TritVec = s.parse().unwrap();
        let cws = Encoder::new(code).encode_slice(&slice);
        let mut dec = Decompressor::new(code);
        let slices = dec.decode_all(cws).unwrap();
        assert_eq!(slices.len(), 1);
        let out = slices.into_iter().next().unwrap();
        assert!(slice.is_satisfied_by(&out), "slice {s} → {out:?}");
        out
    }

    #[test]
    fn roundtrip_satisfies_care_bits() {
        for s in [
            "XXXXXXXX", "00000000", "11111111", "1XXXXXXX", "X0X1X0X1", "10110000", "00011111",
            "01101101",
        ] {
            roundtrip(8, s);
        }
    }

    #[test]
    fn fill_value_reaches_dont_cares() {
        // Majority 1 → X positions come out as 1.
        let out = roundtrip(8, "1X11X0XX");
        assert_eq!(out, vec![true, true, true, true, true, false, true, true]);
    }

    #[test]
    fn multi_slice_stream() {
        let code = SliceCode::for_chains(6);
        let enc = Encoder::new(code);
        let a: TritVec = "10XXXX".parse().unwrap();
        let b: TritVec = "XX01XX".parse().unwrap();
        let mut words = enc.encode_slice(&a);
        words.extend(enc.encode_slice(&b));
        let mut dec = Decompressor::new(code);
        let slices = dec.decode_all(words).unwrap();
        assert_eq!(slices.len(), 2);
        assert!(a.is_satisfied_by(&slices[0]));
        assert!(b.is_satisfied_by(&slices[1]));
        assert_eq!(dec.slices_emitted(), 2);
        assert!(dec.is_idle());
    }

    #[test]
    fn words_consumed_counts_clocks() {
        let code = SliceCode::for_chains(8);
        let enc = Encoder::new(code);
        let slice: TritVec = "10110000".parse().unwrap();
        let cws = enc.encode_slice(&slice);
        let n = cws.len() as u64;
        let mut dec = Decompressor::new(code);
        dec.decode_all(cws).unwrap();
        assert_eq!(dec.words_consumed(), n);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let code = SliceCode::for_chains(8);
        let cws = Encoder::new(code).encode_slice(&"10110000".parse().unwrap());
        let mut dec = Decompressor::new(code);
        let err = dec
            .decode_all(cws[..cws.len() - 1].iter().copied())
            .unwrap_err();
        assert_eq!(err, DecodeError::TruncatedStream);
    }

    #[test]
    fn malformed_words_are_rejected() {
        let code = SliceCode::for_chains(10); // c = 4, spare values 11..15
        let mut dec = Decompressor::new(code);
        let err = dec
            .feed(Codeword {
                mode: false,
                last: false,
                data: 12,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            DecodeError::BitIndexOutOfRange { index: 12, .. }
        ));

        let mut dec = Decompressor::new(code);
        dec.feed(Codeword {
            mode: false,
            last: false,
            data: 10,
        })
        .unwrap();
        let err = dec
            .feed(Codeword {
                mode: true,
                last: false,
                data: 9,
            })
            .unwrap_err();
        assert!(matches!(err, DecodeError::GroupOutOfRange { group: 9, .. }));

        let mut dec = Decompressor::new(code);
        dec.feed(Codeword {
            mode: false,
            last: false,
            data: 10,
        })
        .unwrap();
        let err = dec
            .feed(Codeword {
                mode: true,
                last: true,
                data: 0,
            })
            .unwrap_err();
        assert!(matches!(err, DecodeError::LastOnGroupHeader { group: 0 }));
    }

    #[test]
    fn spare_value_is_a_no_op_mid_slice() {
        let code = SliceCode::for_chains(8);
        let mut dec = Decompressor::new(code);
        dec.feed(Codeword {
            mode: true,
            last: false,
            data: 8,
        })
        .unwrap();
        let out = dec
            .feed(Codeword {
                mode: false,
                last: true,
                data: 8,
            })
            .unwrap()
            .unwrap();
        assert_eq!(out, vec![true; 8]);
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = DecodeError::BitIndexOutOfRange {
            index: 9,
            chains: 8,
        };
        assert!(e.to_string().contains("9"));
        assert!(DecodeError::TruncatedStream
            .to_string()
            .contains("mid-slice"));
    }
}
