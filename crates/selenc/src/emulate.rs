//! Batched bit-parallel emulation of the decompressor.
//!
//! [`Decompressor`](crate::Decompressor) models the hardware one chain bit
//! at a time: a `Vec<bool>` buffer, a branch per symbol. That is the right
//! shape for an executable specification, and far too slow to run over a
//! full SOC's codeword streams at plan time. [`Emulator`] evaluates the
//! *same* cycle-accurate state machine in packed `u64` lanes — 64 wrapper
//! chains per word, the layout already produced by
//! [`wrapper::SliceMatrix`]:
//!
//! * a slice header fills the whole buffer with whole-word stores (the
//!   fill polarity is one splat, not `m` writes);
//! * a single-bit update touches one bit of one word;
//! * a group-copy literal splices its `c ≤ 32` bits with two masked word
//!   operations.
//!
//! Verification is word-parallel too: a decoded slice violates its cube
//! exactly where `care & (decoded ^ value)` is non-zero, so a clean slice
//! costs a handful of AND/XOR/OR ops instead of `m` ternary compares, and
//! the first offending chain falls out of a trailing-zeros count — the
//! packed verifier reports the same `(slice, chain)` location as the
//! scalar [`verify_stream`](crate::verify_stream).
//!
//! [`encode_slices_packed`] is the matching batched encoder: it derives
//! every slice's fill polarity and target positions from popcounts over
//! the care/value planes (the same kernel as the packed cost path in
//! `stream.rs`) and emits codewords bit-identical to
//! [`Encoder::encode_slice`](crate::Encoder::encode_slice). Together they
//! make plan-time stream verification — encode, decode, compare, for every
//! pattern of every compressed core — cheap enough to run by default.
//!
//! A pattern-major layout (64 *patterns* per word, one lane per pattern)
//! was considered and rejected: the decompressor's writes are steered by
//! each codeword's *data field*, which differs per pattern, so pattern
//! lanes immediately diverge into data-dependent scatter and the "SIMD"
//! loop degenerates to scalar stores. Chain lanes keep every write a
//! whole-word or two-word operation regardless of the stream content.
//!
//! The scalar `decoder.rs` / `integrity.rs` path is kept untouched as the
//! oracle; `tests/emulate_prop.rs` property-checks the two bit-identical.

use std::cell::RefCell;

use soc_model::{read_bits, Core, TestSet, TritVec};
use wrapper::{design_wrapper, SliceMatrix, WrapperDesign};

use crate::code::{Codeword, SliceCode};
use crate::decoder::DecodeError;
use crate::integrity::StreamError;

/// Packed-lane decompressor: the cycle-accurate state machine of
/// [`Decompressor`](crate::Decompressor) over a `u64`-packed slice buffer
/// (bit `k % 64` of word `k / 64` is wrapper chain `k`).
///
/// # Examples
///
/// ```
/// use selenc::{Emulator, Encoder, SliceCode};
///
/// let code = SliceCode::for_chains(8);
/// let words = Encoder::new(code).encode_slice(&"XXX1000X".parse()?);
/// let mut emu = Emulator::new(code);
/// let mut slices = 0;
/// for cw in words {
///     if emu.feed(cw)? {
///         assert_eq!(emu.slice_words()[0] & 0xff, 0b0000_1000);
///         slices += 1;
///     }
/// }
/// assert_eq!(slices, 1);
/// assert!(emu.is_idle());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Emulator {
    code: SliceCode,
    /// Packed slice buffer, `chains.div_ceil(64)` words; bits at or beyond
    /// the chain count stay zero so verifiers can consume rows unmasked.
    buffer: Vec<u64>,
    fill_latch: bool,
    state: State,
    slices_emitted: u64,
    words_consumed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    AwaitHeader,
    InSlice,
    AwaitLiteral { group: u32 },
}

impl Emulator {
    /// Creates an emulator for the given slice code.
    pub fn new(code: SliceCode) -> Self {
        Emulator {
            code,
            buffer: vec![0; (code.chains() as usize).div_ceil(64)],
            fill_latch: false,
            state: State::AwaitHeader,
            slices_emitted: 0,
            words_consumed: 0,
        }
    }

    /// The slice code in use.
    pub fn code(&self) -> SliceCode {
        self.code
    }

    /// Number of complete slices emitted so far.
    pub fn slices_emitted(&self) -> u64 {
        self.slices_emitted
    }

    /// Number of codewords consumed so far (one per TAM clock).
    pub fn words_consumed(&self) -> u64 {
        self.words_consumed
    }

    /// Returns `true` when the emulator is between slices (a safe point to
    /// stop the stream).
    pub fn is_idle(&self) -> bool {
        self.state == State::AwaitHeader
    }

    /// The packed slice buffer; meaningful right after [`feed`](Self::feed)
    /// returned `Ok(true)`, when it holds the just-completed slice (bit
    /// `k % 64` of word `k / 64` = chain `k`, zero past the chain count).
    pub fn slice_words(&self) -> &[u64] {
        &self.buffer
    }

    /// Consumes one codeword; returns `Ok(true)` when this word carried
    /// the last flag and [`slice_words`](Self::slice_words) now holds the
    /// completed slice.
    ///
    /// # Errors
    ///
    /// Rejects exactly the streams [`Decompressor::feed`]
    /// (crate::Decompressor::feed) rejects, with the same [`DecodeError`].
    pub fn feed(&mut self, cw: Codeword) -> Result<bool, DecodeError> {
        self.words_consumed += 1;
        let m = self.code.chains();
        match self.state {
            State::AwaitHeader => {
                let fill = cw.mode;
                self.fill_latch = fill;
                self.fill_buffer(fill);
                if cw.data < m {
                    self.write_bit(cw.data, !fill);
                } else if cw.data > m {
                    return Err(DecodeError::BitIndexOutOfRange {
                        index: cw.data,
                        chains: m,
                    });
                }
                self.state = State::InSlice;
                Ok(self.maybe_emit(cw.last))
            }
            State::InSlice => {
                if cw.mode {
                    if cw.data >= self.code.group_count() {
                        return Err(DecodeError::GroupOutOfRange {
                            group: cw.data,
                            groups: self.code.group_count(),
                        });
                    }
                    if cw.last {
                        return Err(DecodeError::LastOnGroupHeader { group: cw.data });
                    }
                    self.state = State::AwaitLiteral { group: cw.data };
                    Ok(false)
                } else {
                    if cw.data < m {
                        let fill = self.fill_latch;
                        self.write_bit(cw.data, !fill);
                    } else if cw.data > m {
                        return Err(DecodeError::BitIndexOutOfRange {
                            index: cw.data,
                            chains: m,
                        });
                    }
                    Ok(self.maybe_emit(cw.last))
                }
            }
            State::AwaitLiteral { group } => {
                let start = group * self.code.data_bits();
                let len = self.code.group_len(group);
                if len < 32 && cw.data >> len != 0 {
                    return Err(DecodeError::LiteralSpareBitsSet {
                        group,
                        data: cw.data,
                        len,
                    });
                }
                splice_bits(
                    &mut self.buffer,
                    start as usize,
                    len as usize,
                    u64::from(cw.data),
                );
                self.state = State::InSlice;
                Ok(self.maybe_emit(cw.last))
            }
        }
    }

    /// Splats the fill polarity across the buffer with whole-word stores,
    /// keeping bits at or beyond the chain count zero.
    fn fill_buffer(&mut self, fill: bool) {
        let word = if fill { !0u64 } else { 0 };
        self.buffer.fill(word);
        if fill {
            let tail = self.code.chains() as usize % 64;
            if tail != 0 {
                *self.buffer.last_mut().expect("chains >= 1") = !0u64 >> (64 - tail);
            }
        }
    }

    fn write_bit(&mut self, index: u32, bit: bool) {
        let (w, b) = (index as usize / 64, index as usize % 64);
        if bit {
            self.buffer[w] |= 1u64 << b;
        } else {
            self.buffer[w] &= !(1u64 << b);
        }
    }

    fn maybe_emit(&mut self, last: bool) -> bool {
        if last {
            self.state = State::AwaitHeader;
            self.slices_emitted += 1;
        }
        last
    }
}

/// Overwrites `len <= 32` bits of `dst` starting at bit `off` with the low
/// bits of `bits` (straddling at most two words).
fn splice_bits(dst: &mut [u64], off: usize, len: usize, bits: u64) {
    debug_assert!(len <= 32);
    if len == 0 {
        return;
    }
    let mask = (1u64 << len) - 1;
    let bits = bits & mask;
    let (w, shift) = (off / 64, off % 64);
    dst[w] = (dst[w] & !(mask << shift)) | (bits << shift);
    if shift + len > 64 {
        let spill = shift + len - 64;
        let hi_mask = (1u64 << spill) - 1;
        dst[w + 1] = (dst[w + 1] & !hi_mask) | (bits >> (len - spill));
    }
}

/// Reusable buffers for the batched encode/verify paths; one per thread,
/// so the public functions stay allocation-free across calls.
#[derive(Debug, Default)]
struct EmulateScratch {
    slices: SliceMatrix,
    target: Vec<u64>,
    singles: Vec<u32>,
    copies: Vec<(u32, u32)>,
    words: Vec<Codeword>,
}

thread_local! {
    static EMULATE_SCRATCH: RefCell<EmulateScratch> = RefCell::new(EmulateScratch::default());
}

/// Encodes every slice of `slices` (shallowest first), appending the
/// codewords to `out` — bit-identical to running
/// [`Encoder::encode_slice`](crate::Encoder::encode_slice) over each
/// materialized slice, but driven by popcounts over the packed care/value
/// planes instead of per-symbol lookups.
///
/// `group_copy` mirrors [`Encoder::new`](crate::Encoder::new) (`true`) vs
/// [`Encoder::single_bit_only`](crate::Encoder::single_bit_only).
///
/// # Panics
///
/// Panics if the matrix's chain count differs from the code's.
pub fn encode_slices_packed(
    code: SliceCode,
    group_copy: bool,
    slices: &SliceMatrix,
    out: &mut Vec<Codeword>,
) {
    assert_eq!(
        slices.chains(),
        code.chains() as usize,
        "slice matrix and slice code disagree on the chain count"
    );
    EMULATE_SCRATCH.with(|s| {
        let scratch = &mut *s.borrow_mut();
        for depth in 0..slices.depths() {
            encode_one_slice(code, group_copy, slices, depth, scratch, out);
        }
    });
}

/// The per-slice packed planner + emitter behind [`encode_slices_packed`].
fn encode_one_slice(
    code: SliceCode,
    group_copy: bool,
    slices: &SliceMatrix,
    depth: usize,
    scratch: &mut EmulateScratch,
    out: &mut Vec<Codeword>,
) {
    let care = slices.care_row(depth);
    let value = slices.value_row(depth);
    // The value plane is zero at don't-care and pad positions, so its
    // popcount is the count of specified ones directly.
    let cares: u32 = care.iter().map(|w| w.count_ones()).sum();
    let ones: u32 = value.iter().map(|w| w.count_ones()).sum();
    let zeros = cares - ones;
    let fill = ones > zeros;
    // Target bits: the minority symbols the encoder must place explicitly.
    scratch.target.clear();
    scratch.target.extend(
        care.iter()
            .zip(value)
            .map(|(&cw, &vw)| if fill { cw & !vw } else { vw }),
    );

    let c = code.data_bits();
    scratch.singles.clear();
    scratch.copies.clear();
    for g in 0..code.group_count() {
        let start = g * c;
        let len = code.group_len(g);
        let mask = read_bits(&scratch.target, start as usize, len as usize) as u32;
        if mask.count_ones() > 2 && group_copy {
            // Literal bits carry actual logic values: target where the
            // mask is set, fill elsewhere (don't-cares take the fill).
            let group_mask = if len == 32 { u32::MAX } else { (1 << len) - 1 };
            let literal = if fill { group_mask & !mask } else { mask };
            scratch.copies.push((g, literal));
        } else {
            // Iterate set bits only: minority masks are sparse by
            // construction, so this beats a walk over every group position.
            let mut rest = mask;
            // soclint: allow(cancel-coverage) -- bounded: iterates the set bits of one u32 mask
            while rest != 0 {
                scratch.singles.push(start + rest.trailing_zeros());
                rest &= rest - 1;
            }
        }
    }

    // Emission identical to Encoder::encode_slice: header merges the first
    // single flip, then remaining singles, then group header/literal pairs,
    // and the final word carries the last flag.
    let mut singles = scratch.singles.iter().copied();
    let first = singles.next();
    out.push(Codeword {
        mode: fill,
        last: false,
        data: first.unwrap_or(code.chains()),
    });
    for pos in singles {
        out.push(Codeword {
            mode: false,
            last: false,
            data: pos,
        });
    }
    for &(group, literal) in &scratch.copies {
        out.push(Codeword {
            mode: true,
            last: false,
            data: group,
        });
        out.push(Codeword {
            mode: false,
            last: false,
            data: literal,
        });
    }
    out.last_mut().expect("header always present").last = true;
}

/// Decodes `words` through the packed [`Emulator`] and verifies the result
/// against the slice-major care/value planes of `expected` — the batched
/// equivalent of [`verify_stream`](crate::verify_stream), returning the
/// same [`StreamError`] (including the first offending `(slice, chain)`
/// location, in slice-then-chain order).
///
/// # Errors
///
/// Exactly the errors of [`verify_stream`](crate::verify_stream).
pub fn verify_stream_packed(
    code: SliceCode,
    words: impl IntoIterator<Item = Codeword>,
    expected: &SliceMatrix,
) -> Result<(), StreamError> {
    let mut emu = Emulator::new(code);
    let lanes_match = expected.chains() == code.chains() as usize;
    let mut decoded = 0usize;
    let mut first_violation: Option<(usize, usize)> = None;
    for cw in words {
        if emu.feed(cw).map_err(StreamError::Malformed)? {
            if lanes_match && first_violation.is_none() && decoded < expected.depths() {
                if let Some(chain) = expected.violating_chain(decoded, emu.slice_words()) {
                    first_violation = Some((decoded, chain));
                }
            }
            decoded += 1;
        }
    }
    if !emu.is_idle() {
        return Err(StreamError::Malformed(DecodeError::TruncatedStream));
    }
    if decoded != expected.depths() {
        return Err(StreamError::SliceCountMismatch {
            expected: expected.depths(),
            decoded,
        });
    }
    if !lanes_match && decoded > 0 {
        // The scalar verifier reports the first slice whose cube length
        // disagrees — with a uniform matrix that is always slice 0.
        return Err(StreamError::SliceLengthMismatch {
            slice: 0,
            expected: expected.chains(),
            decoded: code.chains() as usize,
        });
    }
    match first_violation {
        Some((slice, chain)) => Err(StreamError::CareBitViolation { slice, chain }),
        None => Ok(()),
    }
}

/// Encodes `cube` under `design` with the packed encoder, then decodes and
/// verifies the stream with the packed emulator; returns the codeword
/// count. This is the plan-time per-pattern check: it proves the exact
/// stream the tester would ship reproduces every care bit of the cube.
///
/// # Errors
///
/// Any [`StreamError`] the decoded stream provokes (an error here means
/// the encoder/decompressor pair is broken for this operating point, not
/// that the plan is merely suboptimal).
///
/// # Panics
///
/// Panics if the cube is shorter than the design's deepest position.
pub fn verify_cube_stream(design: &WrapperDesign, cube: &TritVec) -> Result<u64, StreamError> {
    let code = SliceCode::for_chains(design.chain_count());
    EMULATE_SCRATCH.with(|s| {
        // The scratch's slice matrix and codeword buffer are reused across
        // cubes; the per-slice planner borrows the rest disjointly.
        let (slices, words) = {
            let scratch = &mut *s.borrow_mut();
            let slices = std::mem::take(&mut scratch.slices);
            let words = std::mem::take(&mut scratch.words);
            (slices, words)
        };
        let mut slices = slices;
        let mut words = words;
        design.fill_slice_matrix(cube, &mut slices);
        words.clear();
        encode_slices_packed(code, true, &slices, &mut words);
        let result = verify_stream_packed(code, words.iter().copied(), &slices);
        let count = words.len() as u64;
        let scratch = &mut *s.borrow_mut();
        scratch.slices = slices;
        scratch.words = words;
        result.map(|()| count)
    })
}

/// Totals reported by [`verify_test_set_stream`] / [`verify_operating_point`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamReport {
    /// Patterns whose streams were encoded, decoded, and verified.
    pub patterns: u64,
    /// Total codewords across all verified streams (TAM clocks).
    pub codewords: u64,
}

/// Runs [`verify_cube_stream`] over every pattern of `test_set`.
///
/// # Errors
///
/// The first [`StreamError`] any pattern provokes, in pattern order.
///
/// # Panics
///
/// Panics if the test set's cubes are shorter than the design's deepest
/// position.
pub fn verify_test_set_stream(
    design: &WrapperDesign,
    test_set: &TestSet,
) -> Result<StreamReport, StreamError> {
    let mut report = StreamReport::default();
    for cube in test_set.iter() {
        report.codewords += verify_cube_stream(design, cube)?;
        report.patterns += 1;
    }
    Ok(report)
}

/// Stream-verifies a core at decompressor operating point `m`: designs the
/// wrapper (clamped exactly as the planner's evaluation does) and checks
/// every pattern end to end.
///
/// # Errors
///
/// The first [`StreamError`] any pattern provokes.
///
/// # Panics
///
/// Panics if the core has no attached test set or `m == 0`.
pub fn verify_operating_point(core: &Core, m: u32) -> Result<StreamReport, StreamError> {
    let test_set = core
        .test_set()
        .expect("core must carry a test set; call synthesize_missing_test_sets first");
    let design = design_wrapper(core, m);
    verify_test_set_stream(&design, test_set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::Decompressor;
    use crate::encoder::Encoder;
    use crate::integrity::verify_stream;
    use soc_model::{Core, CubeSynthesis, SplitMix64, Trit};

    fn test_core(cells: u32, patterns: u32, density: f64) -> Core {
        let mut core = Core::builder("t")
            .inputs(8)
            .outputs(8)
            .flexible_cells(cells, 256)
            .pattern_count(patterns)
            .care_density(density)
            .build()
            .unwrap();
        let cubes = CubeSynthesis::new(density).synthesize(&core, 7);
        core.attach_test_set(cubes).unwrap();
        core
    }

    fn unpack_slice(words: &[u64], m: usize) -> Vec<bool> {
        (0..m).map(|k| words[k / 64] >> (k % 64) & 1 == 1).collect()
    }

    /// Feeds the same stream to the scalar and packed decoders, asserting
    /// identical slices, errors, and counters at every step.
    fn assert_lockstep(code: SliceCode, words: &[Codeword]) {
        let mut scalar = Decompressor::new(code);
        let mut packed = Emulator::new(code);
        for &cw in words {
            let s = scalar.feed(cw);
            let p = packed.feed(cw);
            match (s, p) {
                (Ok(Some(slice)), Ok(true)) => {
                    assert_eq!(
                        unpack_slice(packed.slice_words(), code.chains() as usize),
                        slice
                    );
                }
                (Ok(None), Ok(false)) => {}
                (Err(se), Err(pe)) => {
                    assert_eq!(se, pe);
                    return;
                }
                (s, p) => panic!("decoder divergence: scalar {s:?} vs packed emit {p:?}"),
            }
            assert_eq!(scalar.is_idle(), packed.is_idle());
            assert_eq!(scalar.slices_emitted(), packed.slices_emitted());
            assert_eq!(scalar.words_consumed(), packed.words_consumed());
        }
    }

    #[test]
    fn packed_decoder_matches_scalar_on_clean_streams() {
        for m in [1u32, 2, 7, 8, 31, 63, 64, 65, 130] {
            let code = SliceCode::for_chains(m);
            let enc = Encoder::new(code);
            let mut rng = SplitMix64::new(u64::from(m) * 31 + 5);
            let mut words = Vec::new();
            for _ in 0..8 {
                let slice: TritVec = (0..m)
                    .map(|_| match rng.next_below(4) {
                        0 => Trit::Zero,
                        1 => Trit::One,
                        _ => Trit::X,
                    })
                    .collect();
                words.extend(enc.encode_slice(&slice));
            }
            assert_lockstep(code, &words);
        }
    }

    #[test]
    fn packed_decoder_matches_scalar_on_arbitrary_words() {
        // Random (mostly malformed) codewords: every error must agree.
        for m in [1u32, 5, 10, 33, 64, 100] {
            let code = SliceCode::for_chains(m);
            let mut rng = SplitMix64::new(u64::from(m) + 99);
            for _ in 0..32 {
                let words: Vec<Codeword> = (0..12)
                    .map(|_| Codeword {
                        mode: rng.next_below(2) == 0,
                        last: rng.next_below(3) == 0,
                        data: rng.next_below(1 << code.data_bits()) as u32,
                    })
                    .collect();
                assert_lockstep(code, &words);
            }
        }
    }

    #[test]
    fn packed_encoder_matches_scalar_encoder() {
        let core = test_core(300, 6, 0.25);
        let ts = core.test_set().unwrap();
        let mut sm = SliceMatrix::new();
        for m in [3u32, 16, 64, 100] {
            let design = design_wrapper(&core, m);
            let code = SliceCode::for_chains(design.chain_count());
            for group_copy in [true, false] {
                let enc = if group_copy {
                    Encoder::new(code)
                } else {
                    Encoder::single_bit_only(code)
                };
                for cube in ts.iter() {
                    design.fill_slice_matrix(cube, &mut sm);
                    let mut packed = Vec::new();
                    encode_slices_packed(code, group_copy, &sm, &mut packed);
                    let scalar: Vec<Codeword> = design
                        .slices(cube)
                        .flat_map(|s| enc.encode_slice(&s))
                        .collect();
                    assert_eq!(packed, scalar, "m={m} group_copy={group_copy}");
                }
            }
        }
    }

    #[test]
    fn packed_verifier_matches_scalar_on_flips() {
        let code = SliceCode::for_chains(10);
        let cubes: Vec<TritVec> = ["10XX01XX10", "0110100101", "X1X0X1X0X1"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let enc = Encoder::new(code);
        let words: Vec<Codeword> = cubes.iter().flat_map(|s| enc.encode_slice(s)).collect();
        // A SliceMatrix with the same planes as the cube list.
        let mut sm = SliceMatrix::new();
        fill_matrix_from_slices(&mut sm, &cubes);
        let w = code.tam_width();
        for i in 0..words.len() {
            for bit in 0..w {
                let mut flipped = words.clone();
                let packed = flipped[i].pack(code) ^ (1 << bit);
                flipped[i] = Codeword::unpack(packed, code);
                let scalar = verify_stream(code, flipped.iter().copied(), &cubes);
                let fast = verify_stream_packed(code, flipped.iter().copied(), &sm);
                assert_eq!(scalar, fast, "word {i} bit {bit}");
            }
        }
        // Truncations too.
        for cut in 0..words.len() {
            let scalar = verify_stream(code, words[..cut].iter().copied(), &cubes);
            let fast = verify_stream_packed(code, words[..cut].iter().copied(), &sm);
            assert_eq!(scalar, fast, "cut {cut}");
        }
    }

    /// Builds a slice matrix holding `slices` as its rows by staging them
    /// through a scratch core whose single chain is loaded per-depth. Test
    /// helper only: production matrices come from `fill_slice_matrix`.
    fn fill_matrix_from_slices(sm: &mut SliceMatrix, slices: &[TritVec]) {
        // Concatenate the slices into one cube and present it through a
        // design with `m` chains of length `depths` each: chain k, depth d
        // must read slice d, symbol k, i.e. cube position d + k * depths.
        let m = slices[0].len();
        let depths = slices.len();
        let mut cube = TritVec::with_capacity(m * depths);
        for k in 0..m {
            for s in slices {
                cube.push(s.get(k));
            }
        }
        let core = Core::builder("stage")
            .fixed_chains(vec![depths as u32; m])
            .pattern_count(1)
            .build()
            .unwrap();
        let design = design_wrapper(&core, m as u32);
        assert_eq!(design.chain_count() as usize, m);
        design.fill_slice_matrix(&cube, sm);
        assert_eq!(sm.depths(), depths);
        for (d, s) in slices.iter().enumerate() {
            assert_eq!(&sm.slice(d), s, "staged slice {d}");
        }
    }

    #[test]
    fn verify_cube_stream_counts_codewords() {
        let core = test_core(200, 4, 0.3);
        let ts = core.test_set().unwrap();
        let design = design_wrapper(&core, 24);
        let code = SliceCode::for_chains(design.chain_count());
        let enc = Encoder::new(code);
        for cube in ts.iter() {
            let n = verify_cube_stream(&design, cube).unwrap();
            let scalar = crate::stream::encode_cube(&enc, &design, cube);
            assert_eq!(n, scalar.len() as u64);
        }
    }

    #[test]
    fn verify_operating_point_reports_totals() {
        let core = test_core(150, 5, 0.2);
        let report = verify_operating_point(&core, 12).unwrap();
        assert_eq!(report.patterns, 5);
        let compressed = crate::stream::evaluate_clamped(&core, 12, None);
        assert_eq!(report.codewords, compressed.codewords);
    }

    #[test]
    fn splice_straddles_word_boundaries() {
        let mut words = vec![0u64; 2];
        splice_bits(&mut words, 50, 32, 0xffff_ffff);
        assert_eq!(words[0], !0u64 << 50);
        assert_eq!(words[1], (1u64 << 18) - 1);
        splice_bits(&mut words, 50, 32, 0);
        assert_eq!(words, vec![0, 0]);
        // Zero-length splices are no-ops.
        splice_bits(&mut words, 10, 0, !0);
        assert_eq!(words, vec![0, 0]);
    }
}
