//! The selective-encoding compressor.
//!
//! Every `m`-bit scan slice is encoded independently (see `DESIGN.md` §5):
//! don't-cares and majority-value care bits become the *fill*, minority
//! (*target*) care bits are produced either one-per-codeword (single-bit
//! mode) or a `c`-bit group at a time (group-copy mode, two codewords per
//! group), whichever is cheaper per group.

use soc_model::{Trit, TritVec};

use crate::code::{Codeword, SliceCode};

/// Slice-level encoder for a fixed [`SliceCode`].
///
/// # Examples
///
/// ```
/// use selenc::{Encoder, SliceCode};
///
/// let enc = Encoder::new(SliceCode::for_chains(8));
/// // An all-X slice costs exactly one codeword.
/// let cws = enc.encode_slice(&"XXXXXXXX".parse()?);
/// assert_eq!(cws.len(), 1);
/// // A slice with one minority care bit also costs one (merged header).
/// let cws = enc.encode_slice(&"XXX1X0XX".parse()?);
/// assert_eq!(cws.len(), 1);
/// # Ok::<(), soc_model::ParseTritError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Encoder {
    code: SliceCode,
    group_copy: bool,
}

/// Internal description of how one slice will be produced.
#[derive(Debug)]
struct SlicePlan {
    fill: bool,
    singles: Vec<u32>,
    /// `(group index, literal bits)` pairs, group-ascending.
    copies: Vec<(u32, u32)>,
}

impl Encoder {
    /// Creates an encoder for the given slice code (both single-bit and
    /// group-copy modes enabled, as in the paper).
    pub fn new(code: SliceCode) -> Self {
        Encoder {
            code,
            group_copy: true,
        }
    }

    /// Creates an encoder restricted to single-bit mode — used by the
    /// ablation study quantifying what group-copy mode contributes.
    pub fn single_bit_only(code: SliceCode) -> Self {
        Encoder {
            code,
            group_copy: false,
        }
    }

    /// Returns `true` when group-copy mode is enabled.
    pub fn group_copy_enabled(&self) -> bool {
        self.group_copy
    }

    /// The slice code in use.
    pub fn code(&self) -> SliceCode {
        self.code
    }

    /// Encodes one slice into its codeword sequence.
    ///
    /// # Panics
    ///
    /// Panics if `slice.len()` differs from the code's chain count.
    pub fn encode_slice(&self, slice: &TritVec) -> Vec<Codeword> {
        let plan = self.plan(slice);
        let m = self.code.chains();
        let mut out = Vec::with_capacity(plan.singles.len() + 2 * plan.copies.len() + 1);

        // Header: carries the fill polarity in its mode bit and, when the
        // first update is a single flip, that flip in its data field.
        let mut singles = plan.singles.iter().copied();
        let first = singles.next();
        out.push(Codeword {
            mode: plan.fill,
            last: false,
            data: first.unwrap_or(m),
        });
        for pos in singles {
            out.push(Codeword {
                mode: false,
                last: false,
                data: pos,
            });
        }
        for (group, literal) in &plan.copies {
            out.push(Codeword {
                mode: true,
                last: false,
                data: *group,
            });
            out.push(Codeword {
                mode: false,
                last: false,
                data: *literal,
            });
        }
        out.last_mut().expect("header always present").last = true;
        out
    }

    /// Number of codewords [`encode_slice`](Self::encode_slice) would
    /// produce, without materializing them.
    pub fn slice_cost(&self, slice: &TritVec) -> u64 {
        let plan = self.plan(slice);
        Self::cost_of(plan.singles.len() as u64, plan.copies.len() as u64)
    }

    /// Codeword count for a slice with `singles` single-bit updates and
    /// `copies` group copies (the header merges the first single).
    pub(crate) fn cost_of(singles: u64, copies: u64) -> u64 {
        if singles > 0 {
            singles + 2 * copies
        } else {
            1 + 2 * copies
        }
    }

    fn plan(&self, slice: &TritVec) -> SlicePlan {
        let m = self.code.chains();
        assert_eq!(
            slice.len() as u32,
            m,
            "slice has {} symbols but the code expects {m}",
            slice.len()
        );
        let ones = slice.count_ones() as u32;
        let zeros = slice.count_cares() as u32 - ones;
        let fill = ones > zeros;
        let target = Trit::from_bit(!fill);

        let c = self.code.data_bits();
        let mut singles = Vec::new();
        let mut copies = Vec::new();
        for g in 0..self.code.group_count() {
            let start = g * c;
            let len = self.code.group_len(g);
            let mut mask = 0u32;
            let mut count = 0u64;
            for j in 0..len {
                if slice.get((start + j) as usize) == target {
                    mask |= 1 << j;
                    count += 1;
                }
            }
            if count > 2 && self.group_copy {
                // Literal bits carry actual logic values: target where the
                // mask is set, fill elsewhere (don't-cares take the fill).
                let group_mask = if len == 32 { u32::MAX } else { (1 << len) - 1 };
                let literal = if fill { group_mask & !mask } else { mask };
                copies.push((g, literal));
            } else {
                for j in 0..len {
                    if mask >> j & 1 == 1 {
                        singles.push(start + j);
                    }
                }
            }
        }
        SlicePlan {
            fill,
            singles,
            copies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(m: u32) -> Encoder {
        Encoder::new(SliceCode::for_chains(m))
    }

    fn tv(s: &str) -> TritVec {
        s.parse().unwrap()
    }

    #[test]
    fn all_x_slice_is_one_codeword() {
        let cws = enc(8).encode_slice(&tv("XXXXXXXX"));
        assert_eq!(cws.len(), 1);
        assert!(cws[0].last);
        assert_eq!(cws[0].data, 8); // spare value: no update
        assert!(!cws[0].mode); // fill 0 by default (tie)
    }

    #[test]
    fn majority_sets_fill_polarity() {
        // 3 ones vs 1 zero → fill = 1, target = 0 at index 4.
        let cws = enc(8).encode_slice(&tv("1X11X0XX"));
        assert_eq!(cws.len(), 1);
        assert!(cws[0].mode, "fill must be 1");
        assert_eq!(cws[0].data, 5);
    }

    #[test]
    fn singles_encode_target_positions() {
        // Paper's example: target symbol 1 in slice XXX1000 is encoded by
        // its index 3.
        let cws = enc(7).encode_slice(&tv("XXX1000"));
        assert_eq!(cws.len(), 1);
        assert!(!cws[0].mode);
        assert_eq!(cws[0].data, 3);
        assert!(cws[0].last);
    }

    #[test]
    fn dense_group_switches_to_copy() {
        // m = 8 → c = 4, groups {0..4} {4..8}. Ones 3, zeros 5 → fill = 0;
        // group 0 holds 3 targets {0, 2, 3} → group copy; group 1 all fill.
        let cws = enc(8).encode_slice(&tv("10110000"));
        assert_eq!(cws.len(), 3); // pure header + group header + literal
        assert!(!cws[0].mode, "fill 0");
        assert_eq!(cws[0].data, 8, "pure header");
        assert!(cws[1].mode, "group header");
        assert_eq!(cws[1].data, 0);
        assert_eq!(cws[2].data, 0b1101, "literal: bits 0, 2, 3");
        assert!(cws[2].last);
    }

    #[test]
    fn copy_literal_carries_actual_values() {
        // Force 3 zero-targets in group 0 among ones: fill = 1.
        // Slice: 0 0 0 1 | 1 1 1 1 → targets {0,1,2} in group 0.
        let e = enc(8);
        let cws = e.encode_slice(&tv("00011111"));
        // group 0 copy (2 cws incl. header?) header is pure (data = 8),
        // then group header + literal.
        assert_eq!(cws.len(), 3);
        assert!(cws[0].mode, "fill 1");
        assert_eq!(cws[1].data, 0);
        // literal bits: positions 0..4 → values 0,0,0,1 → bit3 set only.
        assert_eq!(cws[2].data, 0b1000);
    }

    #[test]
    fn two_targets_stay_single_bit() {
        // Cost tie at 2 targets: prefer singles. Ones 2, zeros 6 → fill 0,
        // targets {0, 1}.
        let cws = enc(8).encode_slice(&tv("11000000"));
        assert_eq!(cws.len(), 2);
        assert!(!cws[0].mode);
        assert_eq!(cws[0].data, 0);
        assert_eq!(cws[1].data, 1);
        assert!(cws[1].last);
    }

    #[test]
    fn slice_cost_matches_encoding_length() {
        let e = enc(11);
        for s in [
            "XXXXXXXXXXX",
            "1XXXXXXXXXX",
            "10101010101",
            "11111111111",
            "000000X0000",
            "1X0X1X0X1X0",
            "111X0000XXX",
        ] {
            let slice = tv(s);
            assert_eq!(
                e.slice_cost(&slice),
                e.encode_slice(&slice).len() as u64,
                "slice {s}"
            );
        }
    }

    #[test]
    fn exactly_one_last_flag_and_it_is_final() {
        let e = enc(16);
        let slice = tv("0110X11010010XX1");
        let cws = e.encode_slice(&slice);
        let lasts: Vec<bool> = cws.iter().map(|c| c.last).collect();
        assert_eq!(lasts.iter().filter(|&&b| b).count(), 1);
        assert!(*lasts.last().unwrap());
    }

    #[test]
    #[should_panic(expected = "slice has 3 symbols")]
    fn wrong_slice_width_panics() {
        enc(8).encode_slice(&tv("101"));
    }

    #[test]
    fn packed_codewords_fit_width() {
        let code = SliceCode::for_chains(12);
        let e = Encoder::new(code);
        for cw in e.encode_slice(&tv("0110X11010X1")) {
            assert!(cw.pack(code) < 1 << code.tam_width());
        }
    }
}
