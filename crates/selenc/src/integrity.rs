//! End-to-end integrity checking of compressed codeword streams.
//!
//! The decompressor ([`Decompressor`](crate::Decompressor)) rejects
//! *structurally* malformed streams — out-of-range indices, truncation,
//! spare bits set in a literal. A bit-flip can also produce a stream that
//! is structurally valid but decodes to the *wrong bits*. [`verify_stream`]
//! closes that gap: it decodes a stream and checks every decoded slice
//! against the care bits of the cube the stream claims to carry, so any
//! injected flip that touches a care bit surfaces as a typed
//! [`StreamError`] instead of silently shipping a corrupted pattern to the
//! core.

use std::fmt;

use soc_model::TritVec;

use crate::code::{Codeword, SliceCode};
use crate::decoder::{DecodeError, Decompressor};

/// Decodes `words` and verifies the result against the expected slices.
///
/// `expected` holds the ternary scan slices the stream was encoded from
/// (shallowest first, as produced by the wrapper's slicing). The check
/// passes when the stream decodes cleanly, yields exactly
/// `expected.len()` slices, and every decoded slice satisfies its cube's
/// care bits. Don't-care positions are unconstrained — a flip there is
/// undetectable by construction and also harmless.
///
/// # Errors
///
/// * [`StreamError::Malformed`] — the decompressor rejected the stream.
/// * [`StreamError::SliceCountMismatch`] — flips moved a `last` flag and
///   changed the slice count.
/// * [`StreamError::SliceLengthMismatch`] — an expected slice does not
///   match the code's chain count (caller error or corrupt metadata).
/// * [`StreamError::CareBitViolation`] — a decoded bit contradicts a care
///   bit of its cube.
pub fn verify_stream(
    code: SliceCode,
    words: impl IntoIterator<Item = Codeword>,
    expected: &[TritVec],
) -> Result<(), StreamError> {
    let decoded = Decompressor::new(code)
        .decode_all(words)
        .map_err(StreamError::Malformed)?;
    if decoded.len() != expected.len() {
        return Err(StreamError::SliceCountMismatch {
            expected: expected.len(),
            decoded: decoded.len(),
        });
    }
    for (index, (bits, cube)) in decoded.iter().zip(expected).enumerate() {
        if cube.len() != bits.len() {
            return Err(StreamError::SliceLengthMismatch {
                slice: index,
                expected: cube.len(),
                decoded: bits.len(),
            });
        }
        for (chain, &bit) in bits.iter().enumerate() {
            if !cube.get(chain).accepts(bit) {
                return Err(StreamError::CareBitViolation {
                    slice: index,
                    chain,
                });
            }
        }
    }
    Ok(())
}

/// Error produced by [`verify_stream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StreamError {
    /// The decompressor rejected the stream as structurally malformed.
    Malformed(DecodeError),
    /// The stream decoded to the wrong number of slices.
    SliceCountMismatch {
        /// Slices the stream should carry.
        expected: usize,
        /// Slices it actually decoded to.
        decoded: usize,
    },
    /// An expected slice's length disagrees with the decoded chain count.
    SliceLengthMismatch {
        /// Index of the offending slice.
        slice: usize,
        /// Expected (cube) length.
        expected: usize,
        /// Decoded length (the code's chain count).
        decoded: usize,
    },
    /// A decoded bit contradicts a care bit of the expected cube.
    CareBitViolation {
        /// Index of the offending slice.
        slice: usize,
        /// Chain (bit position) within the slice.
        chain: usize,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Malformed(e) => write!(f, "malformed codeword stream: {e}"),
            StreamError::SliceCountMismatch { expected, decoded } => {
                write!(f, "stream decoded to {decoded} slices, expected {expected}")
            }
            StreamError::SliceLengthMismatch {
                slice,
                expected,
                decoded,
            } => write!(
                f,
                "slice {slice}: expected {expected} chains, decoded {decoded}"
            ),
            StreamError::CareBitViolation { slice, chain } => {
                write!(
                    f,
                    "slice {slice}, chain {chain}: decoded bit violates a care bit"
                )
            }
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;

    fn slices(specs: &[&str]) -> Vec<TritVec> {
        specs.iter().map(|s| s.parse().unwrap()).collect()
    }

    fn encode(code: SliceCode, cubes: &[TritVec]) -> Vec<Codeword> {
        let enc = Encoder::new(code);
        cubes.iter().flat_map(|s| enc.encode_slice(s)).collect()
    }

    #[test]
    fn clean_stream_verifies() {
        let code = SliceCode::for_chains(10);
        let cubes = slices(&["10XX01XX10", "XXXXXXXXXX", "0110100101"]);
        let words = encode(code, &cubes);
        verify_stream(code, words, &cubes).unwrap();
    }

    #[test]
    fn every_single_bit_flip_is_rejected_or_harmless() {
        // Flip each wire bit of each codeword in turn. Every corrupted
        // stream must either be rejected with a typed error or decode to
        // slices that still satisfy all care bits (the flip landed on a
        // don't-care). Nothing may panic.
        let code = SliceCode::for_chains(10);
        let cubes = slices(&["10XX01XX10", "0110100101", "X1X0X1X0X1"]);
        let words = encode(code, &cubes);
        let w = code.tam_width();
        let mut detected = 0u32;
        for i in 0..words.len() {
            for bit in 0..w {
                let mut flipped = words.clone();
                let packed = flipped[i].pack(code) ^ (1 << bit);
                flipped[i] = Codeword::unpack(packed, code);
                if verify_stream(code, flipped, &cubes).is_err() {
                    detected += 1;
                }
            }
        }
        assert!(detected > 0, "no flip was ever detected");
    }

    #[test]
    fn truncation_is_detected() {
        let code = SliceCode::for_chains(10);
        let cubes = slices(&["10XX01XX10", "0110100101"]);
        let words = encode(code, &cubes);
        for cut in 0..words.len() {
            let err = verify_stream(code, words[..cut].iter().copied(), &cubes).unwrap_err();
            assert!(
                matches!(
                    err,
                    StreamError::Malformed(DecodeError::TruncatedStream)
                        | StreamError::SliceCountMismatch { .. }
                        | StreamError::CareBitViolation { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn literal_spare_bits_are_rejected() {
        // m = 10 → 4 data bits, last group holds 2 chains: bits 2..3 of its
        // literal are spare and must be zero.
        let code = SliceCode::for_chains(10);
        assert_eq!(code.group_len(code.group_count() - 1), 2);
        let words = vec![
            Codeword {
                mode: false,
                last: false,
                data: 10,
            }, // header, no-op
            Codeword {
                mode: true,
                last: false,
                data: code.group_count() - 1,
            },
            Codeword {
                mode: false,
                last: true,
                data: 0b0100,
            }, // spare bit set
        ];
        let err = Decompressor::new(code).decode_all(words).unwrap_err();
        assert!(
            matches!(err, DecodeError::LiteralSpareBitsSet { .. }),
            "{err}"
        );
    }

    #[test]
    fn wrong_expectation_is_reported_with_location() {
        let code = SliceCode::for_chains(8);
        let cubes = slices(&["1011XXXX"]);
        let words = encode(code, &cubes);
        let wrong = slices(&["0011XXXX"]);
        assert_eq!(
            verify_stream(code, words, &wrong),
            Err(StreamError::CareBitViolation { slice: 0, chain: 0 })
        );
        let short = slices(&["1011"]);
        assert!(matches!(
            verify_stream(code, encode(code, &cubes), &short),
            Err(StreamError::SliceLengthMismatch { .. })
        ));
    }
}
