//! Selective-encoding test-data compression (Wang & Chakrabarty, ITC 2005)
//! with a cycle-accurate decompressor model.
//!
//! An on-chip decompressor between a core's test access mechanism (TAM) and
//! its wrapper consumes `w`-bit codewords and reconstructs `m`-bit scan
//! slices (`w = ceil(log2(m+1)) + 2 < m`), cutting both tester data volume
//! and test time. This crate provides:
//!
//! * [`SliceCode`] / [`Codeword`] — the code geometry and wire format,
//! * [`Encoder`] — the compressor (single-bit and group-copy modes),
//! * [`Decompressor`] — the executable hardware model used to verify that
//!   every encoding reproduces every care bit,
//! * [`Emulator`] — the batched bit-parallel equivalent (64 chains per
//!   `u64` lane), fast enough to stream-verify whole SOC plans,
//! * [`compress_test_set`] / [`evaluate_point`] — test-time and volume
//!   evaluation of whole test sets at a `(w, m)` operating point,
//! * [`CoreProfile`] — the per-core lookup table the SOC planner consumes,
//! * [`decompressor_area`] — the hardware cost model.
//!
//! # Examples
//!
//! Reproduce the paper's central observation — test time is non-monotonic
//! in the number of wrapper chains — on a small synthetic core:
//!
//! ```
//! use soc_model::{Core, CubeSynthesis};
//! use selenc::evaluate_point;
//!
//! let mut core = Core::builder("demo")
//!     .inputs(16)
//!     .flexible_cells(600, 256)
//!     .pattern_count(12)
//!     .care_density(0.1)
//!     .build()?;
//! let cubes = CubeSynthesis::new(0.1).synthesize(&core, 3);
//! core.attach_test_set(cubes)?;
//!
//! // Sweep m at a fixed TAM width class and watch τ_c(m) wobble.
//! let times: Vec<u64> = (128..=160)
//!     .filter_map(|m| evaluate_point(&core, m, None))
//!     .map(|c| c.test_time)
//!     .collect();
//! assert!(!times.is_empty());
//! # Ok::<(), soc_model::BuildCoreError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod analysis;
mod area;
mod code;
mod decoder;
mod emulate;
mod encoder;
mod integrity;
mod lut;
mod memo;
mod rtl;
mod stream;

pub use analysis::SliceStats;
pub use area::{decompressor_area, DecompressorArea};
pub use code::{Codeword, SliceCode};
pub use decoder::{DecodeError, Decompressor};
pub use emulate::{
    encode_slices_packed, verify_cube_stream, verify_operating_point, verify_stream_packed,
    verify_test_set_stream, Emulator, StreamReport,
};
pub use encoder::Encoder;
pub use integrity::{verify_stream, StreamError};
pub use lut::{
    core_fingerprint, fnv1a, profile_entry_for_width, CoreProfile, Interrupted, ProfileConfig,
    ProfileCsvError, ProfileEntry, FNV_OFFSET,
};
pub use memo::{EvalCache, DEFAULT_EVAL_BYTES, DEFAULT_EVAL_ENTRIES};
pub use rtl::{generate_testbench, generate_verilog};
pub use stream::{
    compress_sampled, compress_test_set, cube_cost, cube_cost_policy, cube_cost_scalar,
    encode_cube, evaluate_clamped, evaluate_point, Compressed,
};
