//! Per-core `(w, m)` lookup tables (paper §3, steps 1–2).
//!
//! For every feasible decompressor input width `w`, the builder searches the
//! feasible chain counts `m` (those with `ceil(log2(m+1)) + 2 == w`) for the
//! one minimizing the core's compressed test time, and records
//! `(w, m*, τ_c, V_c)`. The SOC planner then consults these tables when
//! assigning cores to TAMs. Because the test time is **non-monotonic** in
//! both `m` and `w` (Figs. 2 and 3), the planner must use
//! [`CoreProfile::best_at_most`] — the running minimum over widths — rather
//! than the entry at the exact TAM width.

use std::fmt;

use soc_model::Core;

use crate::code::SliceCode;
use crate::memo::EvalCache;
use crate::stream::Compressed;

/// One operating point of a core's compression profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Decompressor input width `w` (TAM wires consumed).
    pub tam_width: u32,
    /// Decompressor output width `m` (wrapper chains) minimizing test time
    /// at this `w`.
    pub chains: u32,
    /// Compressed test time in clock cycles.
    pub test_time: u64,
    /// Compressed data volume in bits.
    pub volume_bits: u64,
}

/// A core's compression lookup table: the best operating point per
/// decompressor input width.
///
/// # Examples
///
/// ```
/// use soc_model::benchmarks::Design;
/// use selenc::{CoreProfile, ProfileConfig};
///
/// let soc = Design::D695.build_with_cubes(1);
/// let (_, core) = soc.core_by_name("s13207").expect("d695 core");
/// let profile = CoreProfile::build(core, &ProfileConfig::new(16));
/// let best = profile.best_at_most(16).expect("feasible at w = 16");
/// assert!(best.test_time > 0);
/// // Narrower interfaces can never be *forced* to do worse: the planner
/// // sees the running minimum.
/// let at8 = profile.best_at_most(8).unwrap();
/// assert!(at8.test_time >= best.test_time);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreProfile {
    name: String,
    entries: Vec<ProfileEntry>,
    /// `prefix_best[i]` indexes the best entry (lowest test time, then
    /// narrowest width) among `entries[..=i]`, so
    /// [`best_at_most`](CoreProfile::best_at_most) is a binary search plus
    /// one lookup instead of a scan.
    prefix_best: Vec<usize>,
}

/// Returned by [`profile_entry_for_width`] when the cancellation callback
/// fired before the width was fully evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupted;

/// Configuration for [`CoreProfile::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileConfig {
    max_tam_width: u32,
    pattern_sample: Option<usize>,
    m_candidates: usize,
}

impl ProfileConfig {
    /// Profiles widths `3..=max_tam_width`, evaluating every feasible chain
    /// count exhaustively on the core's full test set.
    pub fn new(max_tam_width: u32) -> Self {
        ProfileConfig {
            max_tam_width,
            pattern_sample: None,
            m_candidates: usize::MAX,
        }
    }

    /// Limits each evaluation to `sample` evenly spaced patterns (scaled
    /// back to the full set). Recommended for industrial-size cores.
    ///
    /// # Panics
    ///
    /// Panics if `sample == 0`.
    pub fn pattern_sample(mut self, sample: usize) -> Self {
        assert!(sample > 0, "sample size must be positive");
        self.pattern_sample = Some(sample);
        self
    }

    /// Caps the number of chain counts evaluated per width to `n` evenly
    /// spread candidates (the range endpoints are always included).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn m_candidates(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least the two range endpoints");
        self.m_candidates = n;
        self
    }

    /// A configuration tuned for 10k–110k-cell industrial cores: 24-pattern
    /// sampling and 24 chain-count candidates per width.
    pub fn industrial(max_tam_width: u32) -> Self {
        ProfileConfig::new(max_tam_width)
            .pattern_sample(24)
            .m_candidates(24)
    }

    /// The chain counts to evaluate for width `w` on `core`.
    fn m_values(&self, core: &Core, w: u32) -> Vec<u32> {
        let range = SliceCode::feasible_chains(w);
        let lo = *range.start();
        let hi = (*range.end()).min(core.max_wrapper_chains());
        if hi < lo {
            return Vec::new();
        }
        let span = (hi - lo + 1) as usize;
        if span <= self.m_candidates {
            return (lo..=hi).collect();
        }
        let n = self.m_candidates;
        (0..n)
            .map(|i| lo + ((hi - lo) as usize * i / (n - 1)) as u32)
            .collect()
    }
}

/// Evaluates the single profile width `w` against `cache`'s core: the best
/// feasible chain count of `w`'s class, or `Ok(None)` when the class is
/// infeasible for this core. `Err(Interrupted)` if `cancelled` fires
/// mid-search (a half-searched width would mis-rank against neighbours).
///
/// This is the unit of work the planner's thread pool schedules; building
/// every width `3..=max` and keeping the `Ok(Some(_))` results reproduces
/// [`CoreProfile::build`] exactly.
///
/// # Panics
///
/// Panics if the cached core has no attached test set.
pub fn profile_entry_for_width(
    cache: &EvalCache<'_>,
    w: u32,
    config: &ProfileConfig,
    cancelled: &dyn Fn() -> bool,
) -> Result<Option<ProfileEntry>, Interrupted> {
    let mut best: Option<(u32, Compressed)> = None;
    let mut last_m = 0;
    for m in config.m_values(cache.core(), w) {
        if cancelled() {
            return Err(Interrupted);
        }
        if m == last_m {
            continue;
        }
        last_m = m;
        if let Some(c) = cache.evaluate_point(m, config.pattern_sample) {
            if best.as_ref().is_none_or(|(_, b)| c.test_time < b.test_time) {
                best = Some((m, c));
            }
        }
    }
    Ok(best.map(|(m, c)| ProfileEntry {
        tam_width: w,
        chains: m,
        test_time: c.test_time,
        volume_bits: c.volume_bits,
    }))
}

impl CoreProfile {
    /// Builds the profile of `core` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if the core has no attached test set (synthesize or attach
    /// cubes first).
    pub fn build(core: &Core, config: &ProfileConfig) -> Self {
        Self::build_cancellable(core, config, &|| false)
    }

    /// [`build`](CoreProfile::build) against an existing [`EvalCache`],
    /// sharing operating-point evaluations with every other consumer of the
    /// cache (decision tables, other profile configs, benchmarks).
    ///
    /// # Panics
    ///
    /// As [`build`](CoreProfile::build).
    pub fn build_cached(cache: &EvalCache<'_>, config: &ProfileConfig) -> Self {
        Self::build_inner(cache, config, &|| false)
    }

    /// Like [`build`](CoreProfile::build), but polls `cancelled` between
    /// operating-point evaluations and stops early when it returns `true`.
    ///
    /// The result is a *prefix* of the full profile (all widths evaluated
    /// so far) — still internally consistent, just covering fewer widths.
    /// Callers degrade gracefully: a width without an entry simply has no
    /// compressed operating point and falls back to raw access.
    ///
    /// # Panics
    ///
    /// As [`build`](CoreProfile::build).
    pub fn build_cancellable(
        core: &Core,
        config: &ProfileConfig,
        cancelled: &dyn Fn() -> bool,
    ) -> Self {
        Self::build_inner(&EvalCache::new(core), config, cancelled)
    }

    fn build_inner(
        cache: &EvalCache<'_>,
        config: &ProfileConfig,
        cancelled: &dyn Fn() -> bool,
    ) -> Self {
        let mut entries = Vec::new();
        for w in SliceCode::MIN_TAM_WIDTH..=config.max_tam_width {
            match profile_entry_for_width(cache, w, config, cancelled) {
                Ok(Some(entry)) => entries.push(entry),
                Ok(None) => {}
                // Keep only fully evaluated widths.
                Err(Interrupted) => break,
            }
        }
        Self::from_entries(cache.core().name(), entries)
    }

    /// Assembles a profile from per-width entries (as produced by
    /// [`profile_entry_for_width`]), computing the prefix-minimum index.
    ///
    /// # Panics
    ///
    /// Panics if the entries' widths are not strictly increasing.
    pub fn from_entries(name: impl Into<String>, entries: Vec<ProfileEntry>) -> Self {
        assert!(
            entries.windows(2).all(|w| w[0].tam_width < w[1].tam_width),
            "profile entries must have strictly increasing widths"
        );
        let mut prefix_best = Vec::with_capacity(entries.len());
        let mut best = 0usize;
        for (i, e) in entries.iter().enumerate() {
            if e.test_time < entries[best].test_time {
                best = i;
            }
            prefix_best.push(best);
        }
        CoreProfile {
            name: name.into(),
            entries,
            prefix_best,
        }
    }

    /// The profiled core's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-width entries, in increasing `tam_width`.
    pub fn entries(&self) -> &[ProfileEntry] {
        &self.entries
    }

    /// The entry at exactly width `w`, if that width is feasible. Binary
    /// search over the width-sorted entries.
    pub fn entry_at(&self, w: u32) -> Option<&ProfileEntry> {
        self.entries
            .binary_search_by_key(&w, |e| e.tam_width)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// The best entry over all widths `≤ w` (a core on a `w`-wide TAM may
    /// leave wires unused — essential because test time is non-monotonic
    /// in `w`). Answered from the precomputed prefix minimum in `O(log n)`.
    pub fn best_at_most(&self, w: u32) -> Option<&ProfileEntry> {
        let covered = self.entries.partition_point(|e| e.tam_width <= w);
        (covered > 0).then(|| &self.entries[self.prefix_best[covered - 1]])
    }

    /// The narrowest feasible width, or `None` for an empty profile.
    pub fn min_width(&self) -> Option<u32> {
        self.entries.first().map(|e| e.tam_width)
    }
}

impl fmt::Display for CoreProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "profile of {}:", self.name)?;
        for e in &self.entries {
            writeln!(
                f,
                "  w={:>3} m={:>5} τ={:>12} V={:>12}",
                e.tam_width, e.chains, e.test_time, e.volume_bits
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_model::{Core, CubeSynthesis};

    fn prepared(cells: u32, max_chains: u32, patterns: u32, density: f64) -> Core {
        let mut core = Core::builder("p")
            .inputs(12)
            .outputs(12)
            .flexible_cells(cells, max_chains)
            .pattern_count(patterns)
            .care_density(density)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(density).synthesize(&core, 11);
        core.attach_test_set(ts).unwrap();
        core
    }

    #[test]
    fn entries_cover_feasible_widths_in_order() {
        let core = prepared(400, 128, 6, 0.2);
        let p = CoreProfile::build(&core, &ProfileConfig::new(10));
        assert!(!p.entries().is_empty());
        assert!(p
            .entries()
            .windows(2)
            .all(|w| w[0].tam_width < w[1].tam_width));
        assert_eq!(p.min_width(), Some(3));
        // Max feasible m = 140 → widths up to ceil(log2(141)) + 2 = 10.
        assert_eq!(p.entries().last().unwrap().tam_width, 10);
    }

    #[test]
    fn chains_lie_in_the_width_class() {
        let core = prepared(400, 128, 6, 0.2);
        let p = CoreProfile::build(&core, &ProfileConfig::new(10));
        for e in p.entries() {
            assert!(
                SliceCode::feasible_chains(e.tam_width).contains(&e.chains),
                "w={} m={}",
                e.tam_width,
                e.chains
            );
        }
    }

    #[test]
    fn best_at_most_is_running_minimum() {
        let core = prepared(600, 256, 8, 0.1);
        let p = CoreProfile::build(&core, &ProfileConfig::new(11).m_candidates(8));
        let mut prev = u64::MAX;
        for w in 3..=11 {
            if let Some(e) = p.best_at_most(w) {
                assert!(e.test_time <= prev, "w={w}");
                prev = prev.min(e.test_time);
                assert!(e.tam_width <= w);
            }
        }
        assert!(p.best_at_most(2).is_none());
    }

    #[test]
    fn sampled_profile_tracks_exact_profile() {
        let core = prepared(500, 64, 30, 0.15);
        let exact = CoreProfile::build(&core, &ProfileConfig::new(8));
        let sampled = CoreProfile::build(&core, &ProfileConfig::new(8).pattern_sample(8));
        for (a, b) in exact.entries().iter().zip(sampled.entries()) {
            assert_eq!(a.tam_width, b.tam_width);
            let ratio = b.test_time as f64 / a.test_time as f64;
            assert!(
                (0.8..1.2).contains(&ratio),
                "w={} ratio {ratio}",
                a.tam_width
            );
        }
    }

    #[test]
    fn m_candidates_limits_search() {
        let core = prepared(2000, 512, 4, 0.1);
        let cfg = ProfileConfig::new(10).m_candidates(5);
        let vals = cfg.m_values(&core, 10);
        assert_eq!(vals.len(), 5);
        assert_eq!(*vals.first().unwrap(), 128);
        assert_eq!(*vals.last().unwrap(), 255);
        assert!(vals.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn infeasible_widths_are_absent() {
        // min(8, 100) stitchable scan chains + 12 input cells → at most 20
        // wrapper chains. w = 7 needs m ∈ [16, 31] → feasible (16..=20);
        // w = 8 needs m ∈ [32, 63] → infeasible.
        let core = prepared(100, 8, 4, 0.3);
        assert_eq!(core.max_wrapper_chains(), 20);
        let p = CoreProfile::build(&core, &ProfileConfig::new(12));
        assert!(p.entry_at(7).is_some());
        assert!(p.entry_at(8).is_none());
        assert!(p.entry_at(10).is_none());
        assert_eq!(p.entries().last().unwrap().tam_width, 7);
    }

    #[test]
    fn cached_build_matches_plain_build() {
        let core = prepared(500, 128, 10, 0.15);
        let plain = CoreProfile::build(&core, &ProfileConfig::new(9).m_candidates(6));
        let cache = EvalCache::new(&core);
        let cached = CoreProfile::build_cached(&cache, &ProfileConfig::new(9).m_candidates(6));
        assert_eq!(plain, cached);
        // A second build off the same cache is also identical (warm hits).
        let again = CoreProfile::build_cached(&cache, &ProfileConfig::new(9).m_candidates(6));
        assert_eq!(plain, again);
    }

    #[test]
    fn per_width_entries_reassemble_the_profile() {
        let core = prepared(400, 96, 6, 0.2);
        let cfg = ProfileConfig::new(9).m_candidates(5);
        let plain = CoreProfile::build(&core, &cfg);
        let cache = EvalCache::new(&core);
        let entries: Vec<ProfileEntry> = (SliceCode::MIN_TAM_WIDTH..=9)
            .filter_map(|w| {
                profile_entry_for_width(&cache, w, &cfg, &|| false).expect("not cancelled")
            })
            .collect();
        assert_eq!(plain, CoreProfile::from_entries(core.name(), entries));
    }

    #[test]
    fn width_queries_match_linear_reference() {
        let core = prepared(600, 256, 8, 0.1);
        let p = CoreProfile::build(&core, &ProfileConfig::new(11).m_candidates(8));
        for w in 0..=14 {
            assert_eq!(
                p.entry_at(w),
                p.entries().iter().find(|e| e.tam_width == w),
                "entry_at({w})"
            );
            assert_eq!(
                p.best_at_most(w),
                p.entries()
                    .iter()
                    .take_while(|e| e.tam_width <= w)
                    .min_by_key(|e| (e.test_time, e.tam_width)),
                "best_at_most({w})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_entries_rejects_unsorted_widths() {
        let e = ProfileEntry {
            tam_width: 5,
            chains: 16,
            test_time: 10,
            volume_bits: 10,
        };
        let _ = CoreProfile::from_entries("x", vec![e, e]);
    }

    #[test]
    fn display_lists_every_width() {
        let core = prepared(100, 16, 3, 0.4);
        let p = CoreProfile::build(&core, &ProfileConfig::new(6));
        let s = p.to_string();
        assert!(s.contains("w=  3"));
    }
}

/// Why a profile CSV was rejected. Corruption of an on-disk cache entry —
/// truncation, bit flips, stray edits — must surface as one of these typed
/// errors so callers can quarantine the file and rebuild, never parse a
/// bogus profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileCsvError {
    /// A data row did not have exactly 4 comma-separated fields.
    FieldCount {
        /// 1-based line number of the offending row.
        line: usize,
    },
    /// A field failed to parse as an unsigned number.
    Number {
        /// 1-based line number of the offending row.
        line: usize,
    },
    /// A width or chain count exceeded `u32`.
    Overflow {
        /// 1-based line number of the offending row.
        line: usize,
    },
    /// Widths were not strictly increasing.
    NonMonotonic {
        /// 1-based line number of the offending row.
        line: usize,
    },
    /// The integrity trailer was present but unparsable.
    BadTrailer {
        /// 1-based line number of the trailer.
        line: usize,
    },
    /// The trailer's entry count disagrees with the rows actually read —
    /// the classic truncated-write signature.
    Truncated {
        /// Entry count the trailer promised.
        expected: usize,
        /// Entries actually present.
        found: usize,
    },
    /// The trailer's checksum disagrees with the rows — a bit flip or
    /// stray edit somewhere in the data.
    ChecksumMismatch,
    /// No integrity trailer at all, in a context that requires one
    /// ([`CoreProfile::from_csv_checked`]).
    MissingTrailer,
}

impl fmt::Display for ProfileCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileCsvError::FieldCount { line } => {
                write!(f, "line {line}: expected 4 fields")
            }
            ProfileCsvError::Number { line } => write!(f, "line {line}: invalid number"),
            ProfileCsvError::Overflow { line } => {
                write!(f, "line {line}: width or chain count exceeds u32")
            }
            ProfileCsvError::NonMonotonic { line } => {
                write!(f, "line {line}: widths must be strictly increasing")
            }
            ProfileCsvError::BadTrailer { line } => {
                write!(f, "line {line}: malformed integrity trailer")
            }
            ProfileCsvError::Truncated { expected, found } => {
                write!(
                    f,
                    "truncated: trailer promises {expected} entries, found {found}"
                )
            }
            ProfileCsvError::ChecksumMismatch => f.write_str("checksum mismatch"),
            ProfileCsvError::MissingTrailer => f.write_str("missing integrity trailer"),
        }
    }
}

impl std::error::Error for ProfileCsvError {}

/// FNV-1a 64-bit over `bytes`, continuing from `acc`. Seed the first call
/// with [`FNV_OFFSET`]. This is the deterministic (machine- and
/// run-independent) hash every cache key and integrity trailer in the
/// workspace is built from — hash-collection hashers are banned by the
/// determinism contract, this is the sanctioned replacement.
pub fn fnv1a(acc: u64, bytes: &[u8]) -> u64 {
    let mut h = acc;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Content fingerprint of a core: a 64-bit FNV-1a digest over its name,
/// terminal/scan geometry, and the care/value planes of every attached
/// test cube.
///
/// Two cores share a fingerprint exactly when every input that profile
/// construction reads is identical, so the digest is the dirty-tracking
/// key for incremental table/profile rebuilds: edit one core's cubes or
/// scan structure and only that core's fingerprint moves, leaving every
/// other core's cached profile valid. The digest is independent of the
/// machine, the process, and the pattern *sampling* configuration (which
/// is keyed separately in cache file names).
pub fn core_fingerprint(core: &Core) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, core.name().as_bytes());
    // Terminator so (name, geometry) concatenations cannot alias.
    h = fnv1a(h, &[0xff]);
    for v in [
        u64::from(core.inputs()),
        u64::from(core.outputs()),
        u64::from(core.bidirs()),
        u64::from(core.pattern_count()),
    ] {
        h = fnv1a(h, &v.to_le_bytes());
    }
    match core.scan() {
        soc_model::ScanArchitecture::Combinational => h = fnv1a(h, &[1]),
        soc_model::ScanArchitecture::Fixed { chain_lengths } => {
            h = fnv1a(h, &[2]);
            for &len in chain_lengths {
                h = fnv1a(h, &u64::from(len).to_le_bytes());
            }
        }
        soc_model::ScanArchitecture::Flexible { cells, max_chains } => {
            h = fnv1a(h, &[3]);
            h = fnv1a(h, &u64::from(*cells).to_le_bytes());
            h = fnv1a(h, &u64::from(*max_chains).to_le_bytes());
        }
    }
    match core.test_set() {
        None => h = fnv1a(h, &[4]),
        Some(ts) => {
            h = fnv1a(h, &[5]);
            h = fnv1a(h, &(ts.pattern_count() as u64).to_le_bytes());
            for cube in ts.iter() {
                h = fnv1a(h, &(cube.len() as u64).to_le_bytes());
                for &w in cube.care_words() {
                    h = fnv1a(h, &w.to_le_bytes());
                }
                for &w in cube.value_words() {
                    h = fnv1a(h, &w.to_le_bytes());
                }
            }
        }
    }
    h
}

impl CoreProfile {
    /// Serializes the profile as CSV (`w,m,test_time,volume_bits` rows
    /// with a header), for caching — profile construction is the expensive
    /// step of planning, and the table is tiny. The final line is an
    /// integrity trailer (`# end <n> fnv <hex>`) covering the data rows,
    /// letting [`from_csv_checked`](Self::from_csv_checked) detect
    /// truncation and bit flips.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("# profile of {}\nw,m,test_time,volume_bits\n", self.name);
        let mut sum = FNV_OFFSET;
        for e in &self.entries {
            let row = format!(
                "{},{},{},{}",
                e.tam_width, e.chains, e.test_time, e.volume_bits
            );
            sum = fnv1a(sum, row.as_bytes());
            sum = fnv1a(sum, b"\n");
            let _ = writeln!(out, "{row}");
        }
        let _ = writeln!(out, "# end {} fnv {sum:016x}", self.entries.len());
        out
    }

    /// Parses a profile previously written by [`to_csv`](Self::to_csv).
    ///
    /// Lenient about the integrity trailer: hand-written CSVs without one
    /// parse fine, but a trailer that *is* present must agree with the
    /// data. Cache readers that only ever see [`to_csv`](Self::to_csv)
    /// output should use [`from_csv_checked`](Self::from_csv_checked),
    /// which demands the trailer and therefore catches truncation.
    ///
    /// # Errors
    ///
    /// A [`ProfileCsvError`] naming the offending line when the CSV is
    /// malformed, the widths are not strictly increasing, or a present
    /// trailer disagrees with the rows.
    pub fn from_csv(name: impl Into<String>, csv: &str) -> Result<Self, ProfileCsvError> {
        CoreProfile::parse_csv(name, csv, false)
    }

    /// Parses a profile written by [`to_csv`](Self::to_csv), *requiring*
    /// the integrity trailer.
    ///
    /// This is the right entry point for on-disk cache reads: a truncated
    /// file (trailer lost) fails with [`ProfileCsvError::MissingTrailer`]
    /// or [`ProfileCsvError::Truncated`], and a bit-flipped digit — which
    /// would parse into a numerically plausible but wrong entry — fails
    /// with [`ProfileCsvError::ChecksumMismatch`].
    ///
    /// # Errors
    ///
    /// As [`from_csv`](Self::from_csv), plus
    /// [`ProfileCsvError::MissingTrailer`] when no trailer is present.
    pub fn from_csv_checked(name: impl Into<String>, csv: &str) -> Result<Self, ProfileCsvError> {
        CoreProfile::parse_csv(name, csv, true)
    }

    fn parse_csv(
        name: impl Into<String>,
        csv: &str,
        require_trailer: bool,
    ) -> Result<Self, ProfileCsvError> {
        let mut entries: Vec<ProfileEntry> = Vec::new();
        let mut sum = FNV_OFFSET;
        let mut trailer: Option<(usize, u64)> = None;
        for (idx, raw) in csv.lines().enumerate() {
            let line = raw.trim();
            if let Some(rest) = line.strip_prefix("# end ") {
                let bad = ProfileCsvError::BadTrailer { line: idx + 1 };
                let mut parts = rest.split_whitespace();
                let count: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(bad.clone())?;
                if parts.next() != Some("fnv") {
                    return Err(bad);
                }
                let hex = parts.next().ok_or(bad.clone())?;
                let checksum = u64::from_str_radix(hex, 16).map_err(|_| bad.clone())?;
                if parts.next().is_some() {
                    return Err(bad);
                }
                trailer = Some((count, checksum));
                continue;
            }
            if line.is_empty() || line.starts_with('#') || line.starts_with("w,") {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 4 {
                return Err(ProfileCsvError::FieldCount { line: idx + 1 });
            }
            let parse = |s: &str| -> Result<u64, ProfileCsvError> {
                s.trim()
                    .parse()
                    .map_err(|_| ProfileCsvError::Number { line: idx + 1 })
            };
            let narrow = |v: u64| -> Result<u32, ProfileCsvError> {
                u32::try_from(v).map_err(|_| ProfileCsvError::Overflow { line: idx + 1 })
            };
            let entry = ProfileEntry {
                tam_width: narrow(parse(fields[0])?)?,
                chains: narrow(parse(fields[1])?)?,
                test_time: parse(fields[2])?,
                volume_bits: parse(fields[3])?,
            };
            if let Some(last) = entries.last() {
                if entry.tam_width <= last.tam_width {
                    return Err(ProfileCsvError::NonMonotonic { line: idx + 1 });
                }
            }
            sum = fnv1a(sum, line.as_bytes());
            sum = fnv1a(sum, b"\n");
            entries.push(entry);
        }
        match trailer {
            Some((count, _)) if count != entries.len() => {
                return Err(ProfileCsvError::Truncated {
                    expected: count,
                    found: entries.len(),
                });
            }
            Some((_, checksum)) if checksum != sum => {
                return Err(ProfileCsvError::ChecksumMismatch);
            }
            Some(_) => {}
            None if require_trailer => return Err(ProfileCsvError::MissingTrailer),
            None => {}
        }
        Ok(CoreProfile::from_entries(name, entries))
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;
    use soc_model::{Core, CubeSynthesis};

    fn profile() -> CoreProfile {
        let mut core = Core::builder("csv")
            .inputs(10)
            .flexible_cells(500, 64)
            .pattern_count(6)
            .care_density(0.1)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(0.1).synthesize(&core, 2);
        core.attach_test_set(ts).unwrap();
        CoreProfile::build(&core, &ProfileConfig::new(8).m_candidates(4))
    }

    #[test]
    fn csv_roundtrip() {
        let p = profile();
        let csv = p.to_csv();
        let q = CoreProfile::from_csv(p.name().to_string(), &csv).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(CoreProfile::from_csv("x", "1,2,3\n").is_err());
        assert!(CoreProfile::from_csv("x", "a,b,c,d\n").is_err());
        assert!(CoreProfile::from_csv("x", "5,3,10,50\n4,3,10,50\n").is_err());
        // Empty profiles parse (a core can be infeasible everywhere).
        assert!(CoreProfile::from_csv("x", "# nothing\n")
            .unwrap()
            .entries()
            .is_empty());
    }

    #[test]
    fn parsed_profiles_answer_queries() {
        let p = profile();
        let q = CoreProfile::from_csv("csv", &p.to_csv()).unwrap();
        for w in 3..=8 {
            assert_eq!(
                p.best_at_most(w).map(|e| e.test_time),
                q.best_at_most(w).map(|e| e.test_time)
            );
        }
    }

    #[test]
    fn checked_roundtrip_and_trailer_required() {
        let p = profile();
        let csv = p.to_csv();
        assert_eq!(CoreProfile::from_csv_checked("csv", &csv).unwrap(), p);
        // Hand-written CSV without a trailer: lenient parse passes, the
        // checked parse demands the trailer.
        let bare = "3,4,100,50\n5,6,90,60\n";
        assert!(CoreProfile::from_csv("x", bare).is_ok());
        assert_eq!(
            CoreProfile::from_csv_checked("x", bare),
            Err(ProfileCsvError::MissingTrailer)
        );
    }

    #[test]
    fn truncation_is_detected() {
        let p = profile();
        let csv = p.to_csv();
        // Drop one data row but keep the trailer: entry count disagrees.
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines.len() >= 4, "need rows to drop");
        let mut cut = lines.clone();
        cut.remove(2);
        let err = CoreProfile::from_csv_checked("csv", &cut.join("\n")).unwrap_err();
        assert!(matches!(err, ProfileCsvError::Truncated { .. }), "{err}");
        // Chop the file mid-way (trailer lost entirely).
        let half = &csv[..csv.len() / 2];
        assert!(CoreProfile::from_csv_checked("csv", half).is_err());
    }

    #[test]
    fn bit_flips_are_detected() {
        let p = profile();
        let csv = p.to_csv();
        // Flip the last digit of a data row's volume field: still perfectly
        // parsable, numerically plausible — only the checksum catches it.
        let mut offset = 0usize;
        let mut pos = None;
        for line in csv.lines() {
            if !line.starts_with('#') && !line.starts_with("w,") && !line.is_empty() {
                pos = Some(offset + line.len() - 1);
                break;
            }
            offset += line.len() + 1;
        }
        let pos = pos.expect("profile has a data row");
        let mut bytes = csv.into_bytes();
        assert!(bytes[pos].is_ascii_digit());
        bytes[pos] = if bytes[pos] == b'9' { b'8' } else { b'9' };
        let flipped = String::from_utf8(bytes).unwrap();
        assert_eq!(
            CoreProfile::from_csv_checked("csv", &flipped),
            Err(ProfileCsvError::ChecksumMismatch)
        );
    }

    #[test]
    fn overflowing_widths_are_typed_errors() {
        let row = format!("{},3,10,50\n", u64::from(u32::MAX) + 1);
        assert_eq!(
            CoreProfile::from_csv("x", &row),
            Err(ProfileCsvError::Overflow { line: 1 })
        );
        assert!(matches!(
            CoreProfile::from_csv("x", "1,2,3\n"),
            Err(ProfileCsvError::FieldCount { line: 1 })
        ));
        assert!(matches!(
            CoreProfile::from_csv("x", "a,b,c,d\n"),
            Err(ProfileCsvError::Number { line: 1 })
        ));
        assert!(matches!(
            CoreProfile::from_csv("x", "# end banana\n"),
            Err(ProfileCsvError::BadTrailer { line: 1 })
        ));
    }
}
