//! Memoized compression evaluations for one core.
//!
//! A [`Compressed`] result depends only on the chain count `m` and the
//! pattern sample — not on the TAM width the caller happens to be
//! considering — yet the decision-table builder, the per-TAM internal
//! planner mode and the benchmarks all evaluate overlapping `m` ranges.
//! [`EvalCache`] wraps a [`DesignCache`] and memoizes
//! [`compress_sampled`](crate::compress_sampled) results so each distinct
//! operating point is compressed exactly once per core, no matter how many
//! widths, modes or threads ask for it.

use std::sync::{Mutex, OnceLock};

use robust::{BoundedCache, CacheLimits, CacheStats};
use soc_model::Core;
use wrapper::DesignCache;

use crate::stream::{compress_sampled, Compressed};

/// Default entry cap for the per-core evaluation memo. An evaluation is
/// keyed by (chain count, sample), so even exhaustive profile sweeps stay
/// far below this; the cap is a backstop for long-lived servers.
pub const DEFAULT_EVAL_ENTRIES: usize = 65_536;

/// Default byte cap for the per-core evaluation memo (4 MiB of
/// [`Compressed`] summaries).
pub const DEFAULT_EVAL_BYTES: usize = 4 << 20;

/// Per-core bounded memo of sampled compression results, keyed by the
/// effective chain count and sample size. Entries are evicted
/// least-recently-used once the entry or byte cap is hit; eviction only
/// ever costs recomputation, never changes a result
/// ([`compress_sampled`] is deterministic in its key).
///
/// Shared by reference across planner worker threads; all methods take
/// `&self`.
///
/// # Examples
///
/// ```
/// use soc_model::benchmarks::Design;
/// use selenc::{evaluate_point, EvalCache};
///
/// let soc = Design::D695.build_with_cubes(1);
/// let (_, core) = soc.core_by_name("s13207").expect("d695 core");
/// let cache = EvalCache::new(core);
/// assert_eq!(cache.evaluate_point(8, Some(4)), evaluate_point(core, 8, Some(4)));
/// ```
// BoundedCache is BTreeMap-backed, not hash-backed: the memo is shared
// across planner threads and a hash-ordered drain sneaking in later would
// be a worker-count-dependent bug. Compression dominates the lookup cost.
#[derive(Debug)]
pub struct EvalCache<'a> {
    designs: DesignCache<'a>,
    evals: Mutex<BoundedCache<(u32, Option<usize>), Compressed>>,
    /// Lazily computed [`core_fingerprint`](crate::core_fingerprint) of
    /// the core — the dirty-tracking key for everything derived from this
    /// cache (on-disk profiles, incremental rebuilds).
    stamp: OnceLock<u64>,
}

/// Approximate bytes one memoized evaluation pins (key + value + tree
/// node overhead, rounded up).
const EVAL_ENTRY_BYTES: usize =
    std::mem::size_of::<(u32, Option<usize>)>() + std::mem::size_of::<Compressed>() + 64;

impl<'a> EvalCache<'a> {
    /// Creates an empty cache for `core` with the default bounds
    /// ([`DEFAULT_EVAL_ENTRIES`] / [`DEFAULT_EVAL_BYTES`] for evaluations,
    /// the [`DesignCache`] defaults for designs). Nothing is computed up
    /// front.
    pub fn new(core: &'a Core) -> Self {
        EvalCache::with_limits(
            core,
            CacheLimits::new(
                wrapper::DEFAULT_DESIGN_ENTRIES,
                wrapper::DEFAULT_DESIGN_BYTES,
            ),
            CacheLimits::new(DEFAULT_EVAL_ENTRIES, DEFAULT_EVAL_BYTES),
        )
    }

    /// Creates an empty cache with explicit caps for the design memo and
    /// the evaluation memo. Tighter caps trade recomputation for memory;
    /// they never change any returned evaluation.
    pub fn with_limits(core: &'a Core, designs: CacheLimits, evals: CacheLimits) -> Self {
        EvalCache {
            designs: DesignCache::with_limits(core, designs),
            evals: Mutex::new(BoundedCache::new(evals)),
            stamp: OnceLock::new(),
        }
    }

    /// Content fingerprint of the core this cache evaluates
    /// ([`core_fingerprint`](crate::core_fingerprint)), computed at most
    /// once per cache lifetime. Everything memoized here — and every
    /// profile derived from it — is a pure function of the fingerprinted
    /// inputs plus the sampling configuration, so equal stamps mean a
    /// cached profile is still valid and differing stamps mean the core
    /// was edited and its entries are dirty.
    pub fn content_stamp(&self) -> u64 {
        *self
            .stamp
            .get_or_init(|| crate::lut::core_fingerprint(self.core()))
    }

    /// Hit/miss/eviction counters of the evaluation memo.
    pub fn stats(&self) -> CacheStats {
        self.evals.lock().expect("eval memo poisoned").stats()
    }

    /// Bytes currently pinned by memoized evaluations.
    pub fn resident_bytes(&self) -> usize {
        self.evals.lock().expect("eval memo poisoned").bytes()
    }

    /// The underlying wrapper-design memo.
    pub fn designs(&self) -> &DesignCache<'a> {
        &self.designs
    }

    /// The core this cache evaluates.
    pub fn core(&self) -> &'a Core {
        self.designs.core()
    }

    /// Memoized [`evaluate_clamped`](crate::evaluate_clamped).
    ///
    /// # Panics
    ///
    /// Panics if the core has no attached test set or `m == 0`.
    pub fn evaluate_clamped(&self, m: u32, sample: Option<usize>) -> Compressed {
        assert!(m > 0, "chain count must be positive");
        let core = self.core();
        let test_set = core
            .test_set()
            .expect("core must carry a test set; call synthesize_missing_test_sets first");
        let point = self.designs.design_at(m);
        // Normalize the key: chain counts collapse to the effective design,
        // and any sample covering the whole set is the exact computation.
        let p = test_set.pattern_count();
        let key = (point.design.chain_count(), sample.filter(|&s| s < p.max(1)));
        if let Some(hit) = self.evals.lock().expect("eval memo poisoned").get(&key) {
            return *hit;
        }
        let sample = sample.unwrap_or(p.max(1));
        let result = compress_sampled(&point.design, test_set, sample);
        self.evals
            .lock()
            .expect("eval memo poisoned")
            .insert(key, result, EVAL_ENTRY_BYTES);
        result
    }

    /// Memoized [`evaluate_point`](crate::evaluate_point): `None` when the
    /// core cannot realize `m` distinct chains.
    ///
    /// # Panics
    ///
    /// Panics if the core has no attached test set.
    pub fn evaluate_point(&self, m: u32, sample: Option<usize>) -> Option<Compressed> {
        if m == 0 || self.designs.design_at(m).design.chain_count() != m {
            return None;
        }
        Some(self.evaluate_clamped(m, sample))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{evaluate_clamped, evaluate_point};
    use soc_model::{Core, CubeSynthesis};

    fn prepared() -> Core {
        let mut core = Core::builder("memo")
            .inputs(9)
            .outputs(4)
            .flexible_cells(300, 64)
            .pattern_count(12)
            .care_density(0.2)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(0.2).synthesize(&core, 5);
        core.attach_test_set(ts).unwrap();
        core
    }

    #[test]
    fn matches_unmemoized_functions() {
        let core = prepared();
        let cache = EvalCache::new(&core);
        for m in [1u32, 5, 16, 40, 73, 200] {
            for sample in [None, Some(3), Some(500)] {
                assert_eq!(
                    cache.evaluate_point(m, sample),
                    evaluate_point(&core, m, sample),
                    "point m={m} sample={sample:?}"
                );
                assert_eq!(
                    cache.evaluate_clamped(m, sample),
                    evaluate_clamped(&core, m, sample),
                    "clamped m={m} sample={sample:?}"
                );
            }
        }
    }

    #[test]
    fn collapsing_keys_share_one_evaluation() {
        let core = prepared();
        let cache = EvalCache::new(&core);
        // Saturating sample == exact; both land on the None-sample key.
        let a = cache.evaluate_clamped(10, Some(999));
        let b = cache.evaluate_clamped(10, None);
        assert_eq!(a, b);
        let memo = cache.evals.lock().unwrap();
        assert_eq!(memo.len(), 1, "saturating samples must share a key");
    }

    /// A thrashing-tight eval memo returns the same results as an
    /// unbounded one — eviction recomputes, never corrupts.
    #[test]
    fn tiny_caps_preserve_evaluation_identity() {
        let core = prepared();
        let unbounded =
            EvalCache::with_limits(&core, CacheLimits::unbounded(), CacheLimits::unbounded());
        let tight = EvalCache::with_limits(
            &core,
            CacheLimits::new(2, usize::MAX),
            CacheLimits::new(2, usize::MAX),
        );
        let ms: Vec<u32> = (1..=12).chain((1..=12).rev()).collect();
        for m in ms {
            for sample in [None, Some(3)] {
                assert_eq!(
                    tight.evaluate_point(m, sample),
                    unbounded.evaluate_point(m, sample),
                    "m={m} sample={sample:?}"
                );
            }
        }
        assert!(tight.stats().evictions > 0, "cap must actually bite");
        assert!(tight.evals.lock().unwrap().len() <= 2);
    }

    /// The eval memo's byte cap is respected under a sustained sweep.
    #[test]
    fn eval_byte_cap_holds() {
        let core = prepared();
        let cap = 3 * EVAL_ENTRY_BYTES;
        let cache = EvalCache::with_limits(
            &core,
            CacheLimits::unbounded(),
            CacheLimits::new(usize::MAX, cap),
        );
        for m in 1..=40 {
            let _ = cache.evaluate_clamped(m, Some(4));
            assert!(cache.resident_bytes() <= cap);
        }
    }
}
