//! Memoized compression evaluations for one core.
//!
//! A [`Compressed`] result depends only on the chain count `m` and the
//! pattern sample — not on the TAM width the caller happens to be
//! considering — yet the decision-table builder, the per-TAM internal
//! planner mode and the benchmarks all evaluate overlapping `m` ranges.
//! [`EvalCache`] wraps a [`DesignCache`] and memoizes
//! [`compress_sampled`](crate::compress_sampled) results so each distinct
//! operating point is compressed exactly once per core, no matter how many
//! widths, modes or threads ask for it.

use std::collections::BTreeMap;
use std::sync::Mutex;

use soc_model::Core;
use wrapper::DesignCache;

use crate::stream::{compress_sampled, Compressed};

/// Per-core memo of sampled compression results, keyed by the effective
/// chain count and sample size.
///
/// Shared by reference across planner worker threads; all methods take
/// `&self`.
///
/// # Examples
///
/// ```
/// use soc_model::benchmarks::Design;
/// use selenc::{evaluate_point, EvalCache};
///
/// let soc = Design::D695.build_with_cubes(1);
/// let (_, core) = soc.core_by_name("s13207").expect("d695 core");
/// let cache = EvalCache::new(core);
/// assert_eq!(cache.evaluate_point(8, Some(4)), evaluate_point(core, 8, Some(4)));
/// ```
// BTreeMap, not HashMap: the memo is lookup-only today, but it is shared
// across planner threads and a hash-ordered drain sneaking in later would
// be a worker-count-dependent bug. Compression dominates the lookup cost.
#[derive(Debug)]
pub struct EvalCache<'a> {
    designs: DesignCache<'a>,
    evals: Mutex<BTreeMap<(u32, Option<usize>), Compressed>>,
}

impl<'a> EvalCache<'a> {
    /// Creates an empty cache for `core`. Nothing is computed up front.
    pub fn new(core: &'a Core) -> Self {
        EvalCache {
            designs: DesignCache::new(core),
            evals: Mutex::new(BTreeMap::new()),
        }
    }

    /// The underlying wrapper-design memo.
    pub fn designs(&self) -> &DesignCache<'a> {
        &self.designs
    }

    /// The core this cache evaluates.
    pub fn core(&self) -> &'a Core {
        self.designs.core()
    }

    /// Memoized [`evaluate_clamped`](crate::evaluate_clamped).
    ///
    /// # Panics
    ///
    /// Panics if the core has no attached test set or `m == 0`.
    pub fn evaluate_clamped(&self, m: u32, sample: Option<usize>) -> Compressed {
        assert!(m > 0, "chain count must be positive");
        let core = self.core();
        let test_set = core
            .test_set()
            .expect("core must carry a test set; call synthesize_missing_test_sets first");
        let point = self.designs.design_at(m);
        // Normalize the key: chain counts collapse to the effective design,
        // and any sample covering the whole set is the exact computation.
        let p = test_set.pattern_count();
        let key = (point.design.chain_count(), sample.filter(|&s| s < p.max(1)));
        if let Some(hit) = self.evals.lock().expect("eval memo poisoned").get(&key) {
            return *hit;
        }
        let sample = sample.unwrap_or(p.max(1));
        let result = compress_sampled(&point.design, test_set, sample);
        self.evals
            .lock()
            .expect("eval memo poisoned")
            .insert(key, result);
        result
    }

    /// Memoized [`evaluate_point`](crate::evaluate_point): `None` when the
    /// core cannot realize `m` distinct chains.
    ///
    /// # Panics
    ///
    /// Panics if the core has no attached test set.
    pub fn evaluate_point(&self, m: u32, sample: Option<usize>) -> Option<Compressed> {
        if m == 0 || self.designs.design_at(m).design.chain_count() != m {
            return None;
        }
        Some(self.evaluate_clamped(m, sample))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{evaluate_clamped, evaluate_point};
    use soc_model::{Core, CubeSynthesis};

    fn prepared() -> Core {
        let mut core = Core::builder("memo")
            .inputs(9)
            .outputs(4)
            .flexible_cells(300, 64)
            .pattern_count(12)
            .care_density(0.2)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(0.2).synthesize(&core, 5);
        core.attach_test_set(ts).unwrap();
        core
    }

    #[test]
    fn matches_unmemoized_functions() {
        let core = prepared();
        let cache = EvalCache::new(&core);
        for m in [1u32, 5, 16, 40, 73, 200] {
            for sample in [None, Some(3), Some(500)] {
                assert_eq!(
                    cache.evaluate_point(m, sample),
                    evaluate_point(&core, m, sample),
                    "point m={m} sample={sample:?}"
                );
                assert_eq!(
                    cache.evaluate_clamped(m, sample),
                    evaluate_clamped(&core, m, sample),
                    "clamped m={m} sample={sample:?}"
                );
            }
        }
    }

    #[test]
    fn collapsing_keys_share_one_evaluation() {
        let core = prepared();
        let cache = EvalCache::new(&core);
        // Saturating sample == exact; both land on the None-sample key.
        let a = cache.evaluate_clamped(10, Some(999));
        let b = cache.evaluate_clamped(10, None);
        assert_eq!(a, b);
        let memo = cache.evals.lock().unwrap();
        assert_eq!(memo.len(), 1, "saturating samples must share a key");
    }
}
