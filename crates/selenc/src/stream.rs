//! Compression of whole cubes and test sets against a wrapper design.
//!
//! The TAM delivers one codeword per clock, so the compressed test time of
//! a core mirrors the classic uncompressed formula with the shift term
//! replaced by the codeword count:
//!
//! ```text
//! τ_c = Σ_patterns codewords(pattern) + p + min(s_i, s_o)
//! ```
//!
//! (`p` capture cycles, plus the usual pipeline fill/drain term). The
//! compressed data volume is `codewords × w` bits.

use std::cell::RefCell;

use soc_model::{read_bits, Core, TestSet, Trit, TritVec};
use wrapper::{design_wrapper, SliceMatrix, WrapperDesign};

use crate::code::{Codeword, SliceCode};
use crate::encoder::Encoder;

/// Compresses one cube into its codeword stream, slice by slice
/// (shallowest slice first).
///
/// # Panics
///
/// Panics if the design's chain count differs from the encoder's chain
/// count, or the cube is shorter than the design's deepest position.
pub fn encode_cube(encoder: &Encoder, design: &WrapperDesign, cube: &TritVec) -> Vec<Codeword> {
    assert_eq!(
        design.chain_count(),
        encoder.code().chains(),
        "wrapper design and slice code disagree on the chain count"
    );
    let mut out = Vec::new();
    for slice in design.slices(cube) {
        out.extend(encoder.encode_slice(&slice));
    }
    out
}

/// Counts the codewords [`encode_cube`] would produce, without building
/// slices or codewords. This is the hot path of the lookup-table builder.
///
/// # Panics
///
/// Panics under the same conditions as [`encode_cube`].
pub fn cube_cost(code: SliceCode, design: &WrapperDesign, cube: &TritVec) -> u64 {
    cube_cost_policy(code, design, cube, true)
}

/// [`cube_cost`] with group-copy mode optionally disabled (matching
/// [`Encoder::single_bit_only`]); used by the mode-contribution ablation.
///
/// Runs the packed word-parallel kernel; [`cube_cost_scalar`] is the
/// per-symbol reference it is tested against.
///
/// # Panics
///
/// Panics under the same conditions as [`encode_cube`].
pub fn cube_cost_policy(
    code: SliceCode,
    design: &WrapperDesign,
    cube: &TritVec,
    group_copy: bool,
) -> u64 {
    COST_SCRATCH.with(|s| cube_cost_packed(code, design, cube, group_copy, &mut s.borrow_mut()))
}

/// Reusable buffers for [`cube_cost_packed`]: the slice-major planes of the
/// cube and the per-slice target-bit plane.
#[derive(Debug, Default)]
struct CostScratch {
    slices: SliceMatrix,
    target: Vec<u64>,
}

thread_local! {
    // One scratch per thread makes the public cost functions allocation-free
    // across calls without threading a handle through every caller.
    static COST_SCRATCH: RefCell<CostScratch> = RefCell::new(CostScratch::default());
}

/// Packed slice-cost kernel: builds the cube's slice-major care/value
/// planes once, then derives each slice's fill polarity and per-group
/// target counts from popcounts instead of per-symbol lookups.
fn cube_cost_packed(
    code: SliceCode,
    design: &WrapperDesign,
    cube: &TritVec,
    group_copy: bool,
    scratch: &mut CostScratch,
) -> u64 {
    assert_eq!(
        design.chain_count(),
        code.chains(),
        "wrapper design and slice code disagree on the chain count"
    );
    design.fill_slice_matrix(cube, &mut scratch.slices);
    let c = code.data_bits() as usize;
    let groups = code.group_count();
    let mut total = 0u64;
    for depth in 0..scratch.slices.depths() {
        let care = scratch.slices.care_row(depth);
        let value = scratch.slices.value_row(depth);
        // The value plane is zero at don't-care and pad positions, so its
        // popcount is the count of specified ones directly.
        let cares: u32 = care.iter().map(|w| w.count_ones()).sum();
        let ones: u32 = value.iter().map(|w| w.count_ones()).sum();
        let zeros = cares - ones;
        let fill_one = ones > zeros;
        // Target bits: the minority symbols the encoder must place
        // explicitly (specified zeros when filling ones, and vice versa).
        scratch.target.clear();
        scratch.target.extend(
            care.iter()
                .zip(value)
                .map(|(&cw, &vw)| if fill_one { cw & !vw } else { vw }),
        );
        let mut singles = 0u64;
        let mut copies = 0u64;
        for g in 0..groups {
            let glen = code.group_len(g) as usize;
            let t = read_bits(&scratch.target, g as usize * c, glen).count_ones();
            if t > 2 && group_copy {
                copies += 1;
            } else {
                singles += u64::from(t);
            }
        }
        total += Encoder::cost_of(singles, copies);
    }
    total
}

/// Per-symbol reference implementation of [`cube_cost_policy`]: walks every
/// (depth, chain) pair through [`position_at`](wrapper::ChainLayout::position_at).
/// Kept as the oracle the packed kernel is property-tested against; use
/// [`cube_cost`] / [`cube_cost_policy`] everywhere else.
///
/// # Panics
///
/// Panics under the same conditions as [`encode_cube`].
pub fn cube_cost_scalar(
    code: SliceCode,
    design: &WrapperDesign,
    cube: &TritVec,
    group_copy: bool,
) -> u64 {
    assert_eq!(
        design.chain_count(),
        code.chains(),
        "wrapper design and slice code disagree on the chain count"
    );
    let c = code.data_bits();
    let groups = code.group_count() as usize;
    let mut ones_per_group = vec![0u32; groups];
    let mut zeros_per_group = vec![0u32; groups];
    let mut total = 0u64;

    for depth in 0..design.scan_in_length() {
        ones_per_group.fill(0);
        zeros_per_group.fill(0);
        let mut ones = 0u32;
        let mut zeros = 0u32;
        for (k, chain) in design.chains().iter().enumerate() {
            let trit = match chain.position_at(depth) {
                Some(pos) => cube.get(pos as usize),
                None => Trit::X,
            };
            match trit {
                Trit::One => {
                    ones += 1;
                    ones_per_group[k / c as usize] += 1;
                }
                Trit::Zero => {
                    zeros += 1;
                    zeros_per_group[k / c as usize] += 1;
                }
                Trit::X => {}
            }
        }
        let fill_one = ones > zeros;
        let target_counts = if fill_one {
            &zeros_per_group
        } else {
            &ones_per_group
        };
        let mut singles = 0u64;
        let mut copies = 0u64;
        for &t in target_counts {
            if t > 2 && group_copy {
                copies += 1;
            } else {
                singles += u64::from(t);
            }
        }
        total += Encoder::cost_of(singles, copies);
    }
    total
}

/// Result of compressing a core's full test set at one `(w, m)` operating
/// point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Compressed {
    /// The slice code (decompressor I/O widths) used.
    pub code: SliceCode,
    /// Total codewords over all patterns (TAM clocks spent shifting).
    pub codewords: u64,
    /// Compressed test time in clock cycles:
    /// `codewords + p + min(s_i, s_o)`.
    pub test_time: u64,
    /// Compressed data volume in bits: `codewords × w`.
    pub volume_bits: u64,
}

/// Compresses `test_set` for a core wrapped by `design`, counting codewords
/// exactly over every pattern.
///
/// # Panics
///
/// Panics if the design and test set disagree with each other (cube length
/// vs. deepest chain position).
pub fn compress_test_set(design: &WrapperDesign, test_set: &TestSet) -> Compressed {
    compress_sampled(design, test_set, test_set.pattern_count().max(1))
}

/// Like [`compress_test_set`], but encodes only `sample` evenly spaced
/// patterns and scales the codeword count to the full set — the estimator
/// used by the lookup-table builder on multi-hundred-pattern industrial
/// cores. With `sample >= pattern_count` the result is exact.
///
/// # Panics
///
/// Panics if `sample == 0`.
pub fn compress_sampled(design: &WrapperDesign, test_set: &TestSet, sample: usize) -> Compressed {
    assert!(sample > 0, "sample size must be positive");
    let code = SliceCode::for_chains(design.chain_count());
    let p = test_set.pattern_count();
    let codewords = if p == 0 {
        0
    } else if sample >= p {
        test_set
            .iter()
            .map(|cube| cube_cost(code, design, cube))
            .sum()
    } else {
        let mut sum = 0u64;
        let mut seen = 0u64;
        let mut last = usize::MAX;
        for i in 0..sample {
            let idx = i * p / sample;
            if idx == last {
                continue;
            }
            last = idx;
            sum += cube_cost(code, design, test_set.pattern(idx).expect("idx < p"));
            seen += 1;
        }
        scale_codewords(sum, p as u64, seen)
    };
    let fill_drain = design.scan_in_length().min(design.scan_out_length());
    Compressed {
        code,
        codewords,
        test_time: codewords + p as u64 + fill_drain,
        volume_bits: codewords * u64::from(code.tam_width()),
    }
}

/// Scales a sampled codeword sum to the full pattern count, rounding to
/// nearest. Widened to `u128` internally: `sum × patterns` overflows `u64`
/// on deep industrial cores (a multi-million-cycle sample sum times
/// hundreds of patterns) even though the scaled result always fits.
fn scale_codewords(sum: u64, patterns: u64, seen: u64) -> u64 {
    let scaled = (u128::from(sum) * u128::from(patterns) + u128::from(seen / 2)) / u128::from(seen);
    u64::try_from(scaled).expect("scaled codeword count fits u64: sum/seen <= sum")
}

/// Like [`evaluate_point`], but when the core cannot realize `m` distinct
/// chains the evaluation proceeds at the effective (smaller) chain count
/// instead of returning `None` — the behaviour of a *shared* decompressor
/// whose `m` outputs a smaller core only partially uses.
///
/// # Panics
///
/// Panics if the core has no attached test set or `m == 0`.
pub fn evaluate_clamped(core: &Core, m: u32, sample: Option<usize>) -> Compressed {
    let test_set = core
        .test_set()
        .expect("core must carry a test set; call synthesize_missing_test_sets first");
    let design = design_wrapper(core, m);
    let sample = sample.unwrap_or(test_set.pattern_count().max(1));
    compress_sampled(&design, test_set, sample)
}

/// Evaluates core compression at an explicit chain count `m`: designs the
/// wrapper, compresses (optionally sampled), and returns `None` when the
/// core cannot actually realize `m` distinct chains (the operating point is
/// then covered by a smaller `m`).
///
/// # Panics
///
/// Panics if the core has no attached test set.
pub fn evaluate_point(core: &Core, m: u32, sample: Option<usize>) -> Option<Compressed> {
    let test_set = core
        .test_set()
        .expect("core must carry a test set; call synthesize_missing_test_sets first");
    let design = design_wrapper(core, m);
    if design.chain_count() != m {
        return None;
    }
    let sample = sample.unwrap_or(test_set.pattern_count().max(1));
    Some(compress_sampled(&design, test_set, sample))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_model::{Core, CubeSynthesis};

    fn test_core(cells: u32, patterns: u32, density: f64) -> Core {
        let mut core = Core::builder("t")
            .inputs(8)
            .outputs(8)
            .flexible_cells(cells, 256)
            .pattern_count(patterns)
            .care_density(density)
            .build()
            .unwrap();
        let cubes = CubeSynthesis::new(density).synthesize(&core, 7);
        core.attach_test_set(cubes).unwrap();
        core
    }

    #[test]
    fn cost_matches_full_encoding() {
        let core = test_core(300, 6, 0.2);
        let ts = core.test_set().unwrap();
        for m in [5u32, 16, 40, 100] {
            let design = design_wrapper(&core, m);
            let code = SliceCode::for_chains(design.chain_count());
            let enc = Encoder::new(code);
            for cube in ts.iter() {
                assert_eq!(
                    cube_cost(code, &design, cube),
                    encode_cube(&enc, &design, cube).len() as u64,
                    "m={m}"
                );
            }
        }
    }

    #[test]
    fn packed_kernel_matches_scalar_oracle() {
        for (cells, density) in [(120u32, 0.4), (500, 0.08), (64, 0.9)] {
            let core = test_core(cells, 4, density);
            let ts = core.test_set().unwrap();
            for m in [1u32, 7, 31, 64, 130] {
                let design = design_wrapper(&core, m);
                let code = SliceCode::for_chains(design.chain_count());
                for cube in ts.iter() {
                    for group_copy in [true, false] {
                        assert_eq!(
                            cube_cost_policy(code, &design, cube, group_copy),
                            cube_cost_scalar(code, &design, cube, group_copy),
                            "cells={cells} m={m} group_copy={group_copy}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sampled_scaling_survives_huge_codeword_sums() {
        // sum × patterns = 3e20, past u64::MAX, while the scaled result
        // still fits comfortably.
        let sum = 500_000_000_000_000_000u64;
        let patterns = 600u64;
        let seen = 300u64;
        assert_eq!(scale_codewords(sum, patterns, seen), sum * 2);
        // Rounding matches the narrow formula on small inputs.
        assert_eq!(scale_codewords(10, 3, 4), 8); // (30 + 2) / 4
        assert_eq!(scale_codewords(7, 7, 2), 25); // (49 + 1) / 2
    }

    #[test]
    fn compress_test_set_aggregates() {
        let core = test_core(200, 5, 0.3);
        let design = design_wrapper(&core, 20);
        let ts = core.test_set().unwrap();
        let c = compress_test_set(&design, ts);
        let manual: u64 = ts.iter().map(|cube| cube_cost(c.code, &design, cube)).sum();
        assert_eq!(c.codewords, manual);
        assert_eq!(
            c.test_time,
            manual + 5 + design.scan_in_length().min(design.scan_out_length())
        );
        assert_eq!(c.volume_bits, manual * u64::from(c.code.tam_width()));
    }

    #[test]
    fn sampling_is_exact_when_sample_covers_set() {
        let core = test_core(150, 8, 0.25);
        let design = design_wrapper(&core, 12);
        let ts = core.test_set().unwrap();
        assert_eq!(
            compress_sampled(&design, ts, 8),
            compress_sampled(&design, ts, 100)
        );
    }

    #[test]
    fn sampling_estimates_within_tolerance() {
        let core = test_core(800, 40, 0.1);
        let design = design_wrapper(&core, 60);
        let ts = core.test_set().unwrap();
        let exact = compress_test_set(&design, ts);
        let est = compress_sampled(&design, ts, 10);
        let ratio = est.codewords as f64 / exact.codewords as f64;
        assert!((0.85..1.15).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sparser_cubes_compress_better() {
        let sparse = test_core(500, 10, 0.02);
        let dense = test_core(500, 10, 0.5);
        let ds = design_wrapper(&sparse, 64);
        let dd = design_wrapper(&dense, 64);
        let cs = compress_test_set(&ds, sparse.test_set().unwrap());
        let cd = compress_test_set(&dd, dense.test_set().unwrap());
        assert!(
            cs.codewords * 2 < cd.codewords,
            "sparse {} vs dense {}",
            cs.codewords,
            cd.codewords
        );
    }

    #[test]
    fn compression_beats_raw_volume_on_sparse_cubes() {
        let core = test_core(2000, 10, 0.02);
        let design = design_wrapper(&core, 128);
        let c = compress_test_set(&design, core.test_set().unwrap());
        assert!(
            c.volume_bits * 3 < core.initial_volume_bits(),
            "compressed {} vs raw {}",
            c.volume_bits,
            core.initial_volume_bits()
        );
    }

    #[test]
    fn evaluate_point_skips_unrealizable_chain_counts() {
        let core = test_core(100, 3, 0.3);
        // 100 cells + 8 inputs: m = 108 realizable, m = 200 collapses.
        assert!(evaluate_point(&core, 100, None).is_some());
        assert!(evaluate_point(&core, 200, None).is_none());
    }

    #[test]
    fn decoder_reproduces_every_care_bit_of_a_cube() {
        let core = test_core(120, 4, 0.35);
        let ts = core.test_set().unwrap();
        let design = design_wrapper(&core, 10);
        let code = SliceCode::for_chains(design.chain_count());
        let enc = Encoder::new(code);
        let mut dec = crate::Decompressor::new(code);
        for cube in ts.iter() {
            let words = encode_cube(&enc, &design, cube);
            let slices = dec.decode_all(words).unwrap();
            assert_eq!(slices.len() as u64, design.scan_in_length());
            for (depth, slice) in slices.iter().enumerate() {
                for (k, chain) in design.chains().iter().enumerate() {
                    if let Some(pos) = chain.position_at(depth as u64) {
                        assert!(
                            cube.get(pos as usize).accepts(slice[k]),
                            "depth {depth} chain {k}"
                        );
                    }
                }
            }
        }
    }
}
