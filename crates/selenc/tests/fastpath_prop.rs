//! Property equivalence for the profile-build fast path.
//!
//! The packed word-parallel cost kernel must agree with the per-symbol
//! reference on every (core, cube, chain count, policy) combination, and
//! the memoized profile builder must reproduce the plain one exactly —
//! these are the invariants that let the planner run the fast path
//! unconditionally.

#![forbid(unsafe_code)]

use proptest::prelude::*;

use selenc::{
    cube_cost_policy, cube_cost_scalar, CoreProfile, EvalCache, ProfileConfig, SliceCode,
};
use soc_model::{Core, CubeSynthesis};
use wrapper::design_wrapper;

fn prepared(inputs: u32, cells: u32, max_chains: u32, patterns: u32, density: f64) -> Core {
    let mut core = Core::builder("prop")
        .inputs(inputs)
        .outputs(4)
        .flexible_cells(cells, max_chains)
        .pattern_count(patterns)
        .care_density(density)
        .build()
        .unwrap();
    let ts = CubeSynthesis::new(density).synthesize(&core, 0xFA57);
    core.attach_test_set(ts).unwrap();
    core
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The packed kernel and the scalar oracle count identical codewords
    /// for every cube, at chain counts spanning sub-word, word-boundary
    /// and multi-word slices, with and without group-copy mode.
    #[test]
    fn packed_cube_cost_matches_scalar_oracle(
        inputs in 0u32..24,
        cells in 40u32..900,
        max_chains in 1u32..200,
        density in 0.02f64..0.6,
        m in 1u32..260,
        group_copy in any::<bool>(),
    ) {
        let core = prepared(inputs, cells, max_chains, 3, density);
        let design = design_wrapper(&core, m);
        let code = SliceCode::for_chains(design.chain_count());
        let ts = core.test_set().unwrap();
        for p in 0..ts.pattern_count() {
            let cube = ts.pattern(p).unwrap();
            prop_assert_eq!(
                cube_cost_policy(code, &design, cube, group_copy),
                cube_cost_scalar(code, &design, cube, group_copy),
                "m={} chains={} pattern={} group_copy={}",
                m, design.chain_count(), p, group_copy
            );
        }
    }

    /// Building a profile through the shared evaluation cache — including
    /// rebuilding off a warm cache — yields the plain builder's profile
    /// bit for bit.
    #[test]
    fn cached_profile_build_matches_plain(
        cells in 60u32..600,
        max_chains in 2u32..96,
        density in 0.05f64..0.4,
        max_width in 3u32..10,
        candidates in 2usize..7,
    ) {
        let core = prepared(10, cells, max_chains, 4, density);
        let cfg = ProfileConfig::new(max_width).m_candidates(candidates);
        let plain = CoreProfile::build(&core, &cfg);
        let cache = EvalCache::new(&core);
        let cold = CoreProfile::build_cached(&cache, &cfg);
        let warm = CoreProfile::build_cached(&cache, &cfg);
        prop_assert_eq!(&plain, &cold);
        prop_assert_eq!(&plain, &warm);
    }
}
