//! Robustness tests for the decompressor: arbitrary codeword streams must
//! never panic — they either decode or produce a typed error — and valid
//! streams produced by the encoder always decode.

#![forbid(unsafe_code)]

use proptest::prelude::*;

use selenc::{Codeword, DecodeError, Decompressor, Encoder, SliceCode};
use soc_model::{Trit, TritVec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_streams_never_panic(
        m in 1u32..40,
        words in proptest::collection::vec(any::<(bool, bool, u32)>(), 0..64),
    ) {
        let code = SliceCode::for_chains(m);
        let mask = (1u32 << code.data_bits()) - 1;
        let mut dec = Decompressor::new(code);
        for (mode, last, data) in words {
            let cw = Codeword { mode, last, data: data & mask };
            match dec.feed(cw) {
                Ok(Some(slice)) => prop_assert_eq!(slice.len() as u32, m),
                Ok(None) => {}
                Err(_) => {
                    // A typed error; the decompressor is garbage now, stop.
                    break;
                }
            }
        }
    }

    #[test]
    fn valid_streams_always_decode(
        m in 1u32..32,
        raw in proptest::collection::vec(0u8..3, 1..200),
    ) {
        let code = SliceCode::for_chains(m);
        let enc = Encoder::new(code);
        // Chop the symbol soup into m-wide slices.
        let slices: Vec<TritVec> = raw
            .chunks_exact(m as usize)
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|&b| match b {
                        0 => Trit::Zero,
                        1 => Trit::One,
                        _ => Trit::X,
                    })
                    .collect()
            })
            .collect();
        prop_assume!(!slices.is_empty());
        let mut words = Vec::new();
        for s in &slices {
            words.extend(enc.encode_slice(s));
        }
        let mut dec = Decompressor::new(code);
        let decoded = dec.decode_all(words).expect("encoder output is valid");
        prop_assert_eq!(decoded.len(), slices.len());
        for (s, d) in slices.iter().zip(&decoded) {
            prop_assert!(s.is_satisfied_by(d));
        }
    }

    #[test]
    fn truncation_anywhere_is_detected_or_harmless(
        m in 2u32..24,
        cut in 0usize..16,
    ) {
        let code = SliceCode::for_chains(m);
        let enc = Encoder::new(code);
        // Build a stream with several update kinds.
        let mut slice = TritVec::all_x(m as usize);
        slice.set(0, Trit::One);
        slice.set((m - 1) as usize, Trit::Zero);
        let mut words = enc.encode_slice(&slice);
        words.extend(enc.encode_slice(&slice));
        prop_assume!(cut < words.len());
        let mut dec = Decompressor::new(code);
        match dec.decode_all(words[..cut].iter().copied()) {
            Ok(decoded) => {
                // Only complete slices came out.
                prop_assert!(decoded.len() <= 2);
            }
            Err(e) => prop_assert_eq!(e, DecodeError::TruncatedStream),
        }
    }

    #[test]
    fn encoder_cost_is_translation_invariant(
        m in 4u32..32,
        offset in 0u32..4,
    ) {
        // Shifting a single care bit within a group never changes the cost.
        let code = SliceCode::for_chains(m);
        let enc = Encoder::new(code);
        let place = |at: u32| {
            let mut s = TritVec::all_x(m as usize);
            s.set((at % m) as usize, Trit::One);
            enc.slice_cost(&s)
        };
        prop_assert_eq!(place(0), place(offset));
    }
}
