//! Injectable fault hooks for crash testing the daemon.
//!
//! The fault-injection suite needs to kill the daemon at *precise* points
//! — after a request is journaled but before planning, after planning but
//! before the plan is written — to prove restart recovery. [`FaultPlan`]
//! reads the `SOCTDC_FAULT` environment variable once at startup and
//! aborts the process (simulating `kill -9`: no destructors, no flushing)
//! when execution crosses an armed point.
//!
//! Syntax: a comma-separated list of `abort:<point>` directives, e.g.
//! `SOCTDC_FAULT=abort:plan-started,abort:before-plan-write`. Unknown
//! directives are ignored so a newer test matrix degrades gracefully on an
//! older binary. Production runs simply leave the variable unset; every
//! hook is then a branch on an empty set.

use std::collections::BTreeSet;

/// Name of the fault-directive environment variable.
pub const FAULT_ENV: &str = "SOCTDC_FAULT";

/// The set of armed crash points for this process.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    aborts: BTreeSet<String>,
}

impl FaultPlan {
    /// A plan with no armed faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Parses the [`FAULT_ENV`] variable; unset or unparsable directives
    /// yield no armed faults.
    pub fn from_env() -> Self {
        match std::env::var(FAULT_ENV) {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => FaultPlan::none(),
        }
    }

    /// Parses a directive list (`abort:a,abort:b`).
    pub fn parse(spec: &str) -> Self {
        let mut aborts = BTreeSet::new();
        for directive in spec.split(',') {
            if let Some(point) = directive.trim().strip_prefix("abort:") {
                if !point.is_empty() {
                    aborts.insert(point.to_string());
                }
            }
        }
        FaultPlan { aborts }
    }

    /// Whether any fault is armed (used to skip bookkeeping fast paths).
    pub fn is_armed(&self) -> bool {
        !self.aborts.is_empty()
    }

    /// Crash point: aborts the process when `point` is armed, otherwise
    /// does nothing. `abort` is the closest in-process stand-in for
    /// `SIGKILL` — no unwinding, no buffered writes flushed.
    pub fn point(&self, point: &str) {
        if self.aborts.contains(point) {
            eprintln!("fault injection: aborting at `{point}`");
            std::process::abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_directives() {
        let plan = FaultPlan::parse("abort:a, abort:b,nonsense,abort:");
        assert!(plan.is_armed());
        assert!(plan.aborts.contains("a"));
        assert!(plan.aborts.contains("b"));
        assert_eq!(plan.aborts.len(), 2);
        assert!(!FaultPlan::parse("").is_armed());
    }

    #[test]
    fn unarmed_points_are_noops() {
        FaultPlan::none().point("anything");
        FaultPlan::parse("abort:x").point("y");
    }
}
