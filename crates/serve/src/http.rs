//! A minimal HTTP/1.1 request reader and response writer.
//!
//! Only what the daemon needs: one request per connection, `GET`/`POST`,
//! `Content-Length` bodies. The parser reads untrusted sockets and is held
//! to the untrusted-parser contract: typed errors, hard caps on line
//! count, line length and body size, and no input-derived value used in
//! unchecked arithmetic or indexing.

use std::fmt;
use std::io::BufRead;

/// Maximum accepted request-line or header-line length.
const MAX_LINE_BYTES: usize = 16 * 1024;
/// Maximum accepted header count.
const MAX_HEADERS: usize = 128;
/// Maximum accepted body size (16 MiB, matching the JSON input cap).
pub const MAX_BODY_BYTES: usize = 16 << 20;

/// A parsed HTTP request head plus body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercased as received.
    pub method: String,
    /// Request target path, e.g. `/session/s1/plan`.
    pub path: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Why a request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Socket closed or errored mid-request.
    Io,
    /// Malformed request line.
    BadRequestLine,
    /// Malformed header line.
    BadHeader,
    /// More than [`MAX_HEADERS`] headers or an over-long line.
    TooLarge,
    /// `Content-Length` missing, unparsable, or above [`MAX_BODY_BYTES`].
    BadLength,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io => f.write_str("connection error"),
            HttpError::BadRequestLine => f.write_str("malformed request line"),
            HttpError::BadHeader => f.write_str("malformed header"),
            HttpError::TooLarge => f.write_str("request too large"),
            HttpError::BadLength => f.write_str("bad content length"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Reads one line capped at [`MAX_LINE_BYTES`], stripping `\r\n`.
fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => return Err(HttpError::Io),
            Ok(_) => {
                let Some(&b) = byte.first() else {
                    return Err(HttpError::Io);
                };
                if b == b'\n' {
                    break;
                }
                if raw.len() >= MAX_LINE_BYTES {
                    return Err(HttpError::TooLarge);
                }
                raw.push(b);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(HttpError::Io),
        }
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| HttpError::BadHeader)
}

/// Reads one request (head + body) from `reader`.
///
/// # Errors
///
/// A typed [`HttpError`]; never panics on any input.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let line = read_line(reader)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(HttpError::BadRequestLine)?.to_string();
    let path = parts.next().ok_or(HttpError::BadRequestLine)?.to_string();
    let version = parts.next().ok_or(HttpError::BadRequestLine)?;
    if !version.starts_with("HTTP/1.") || parts.next().is_some() || !path.starts_with('/') {
        return Err(HttpError::BadRequestLine);
    }

    let mut content_length: Option<usize> = None;
    for _ in 0..MAX_HEADERS {
        let line = read_line(reader)?;
        if line.is_empty() {
            let body = match content_length {
                None | Some(0) => Vec::new(),
                Some(len) => {
                    // `len` is already validated against MAX_BODY_BYTES.
                    let mut body = vec![0u8; len];
                    reader.read_exact(&mut body).map_err(|_| HttpError::Io)?;
                    body
                }
            };
            return Ok(Request { method, path, body });
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
        if name.trim().eq_ignore_ascii_case("content-length") {
            let len: usize = value.trim().parse().map_err(|_| HttpError::BadLength)?;
            if len > MAX_BODY_BYTES {
                return Err(HttpError::BadLength);
            }
            content_length = Some(len);
        }
    }
    Err(HttpError::TooLarge)
}

/// Serializes an HTTP/1.1 response with the given status, optional
/// `Retry-After` (seconds) header, and a JSON body.
pub fn response(status: u16, reason: &str, retry_after_s: Option<u64>, body: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "HTTP/1.1 {status} {reason}\r\n");
    out.push_str("Content-Type: application/json\r\n");
    let _ = write!(out, "Content-Length: {}\r\n", body.len());
    if let Some(secs) = retry_after_s {
        let _ = write!(out, "Retry-After: {secs}\r\n");
    }
    out.push_str("Connection: close\r\n\r\n");
    out.push_str(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_and_post() {
        let r = parse("GET /status HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!((r.method.as_str(), r.path.as_str()), ("GET", "/status"));
        assert!(r.body.is_empty());

        let r = parse("POST /plan HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn rejects_malformed_heads() {
        assert_eq!(parse(""), Err(HttpError::Io));
        assert_eq!(parse("GET\r\n\r\n"), Err(HttpError::BadRequestLine));
        assert_eq!(
            parse("GET nopath HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequestLine)
        );
        assert_eq!(
            parse("GET / HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(HttpError::BadHeader)
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            Err(HttpError::BadLength)
        );
        assert_eq!(
            parse(&format!(
                "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )),
            Err(HttpError::BadLength)
        );
    }

    #[test]
    fn caps_hold() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE_BYTES + 10));
        assert_eq!(parse(&long), Err(HttpError::TooLarge));
        let many = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            "X-H: 1\r\n".repeat(MAX_HEADERS + 1)
        );
        assert_eq!(parse(&many), Err(HttpError::TooLarge));
    }

    #[test]
    fn truncated_bodies_fail_io() {
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Io)
        );
    }

    #[test]
    fn response_shape() {
        let r = response(429, "Too Many Requests", Some(3), "{}");
        assert!(r.starts_with("HTTP/1.1 429"));
        assert!(r.contains("Retry-After: 3\r\n"));
        assert!(r.ends_with("\r\n\r\n{}"));
    }
}
