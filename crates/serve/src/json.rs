//! A minimal, std-only JSON reader/writer for the daemon's wire protocol.
//!
//! This file parses untrusted bytes off a socket or stdin, so it is held
//! to the workspace's untrusted-parser contract: every failure is a typed
//! [`JsonError`] (never a panic), container depth and string sizes are
//! bounded, and no input-derived value is used in unchecked arithmetic or
//! indexing. Objects are `BTreeMap`s so serialization order — and
//! therefore every byte the daemon emits — is deterministic.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 32;

/// Maximum accepted input length in bytes (16 MiB); uploads of large
/// ITC'02 designs fit comfortably, runaway inputs do not.
pub const MAX_INPUT_BYTES: usize = 16 << 20;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is sorted, duplicate keys keep the last value.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen losslessly for the range the
    /// protocol uses).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            // Exact decimal widening via the float parser (correctly
            // rounded for any i64, no lossy casts involved).
            Value::Int(n) => format!("{n}").parse::<f64>().ok(),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object field `key`, if this is an object containing it.
    pub fn field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Serializes the value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }
}

/// Convenience: build an object from key/value pairs.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    let mut map = BTreeMap::new();
    for (k, v) in pairs {
        map.insert(k.to_string(), v);
    }
    Value::Obj(map)
}

/// Why an input was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Input longer than [`MAX_INPUT_BYTES`].
    TooLarge,
    /// More than [`MAX_DEPTH`] nested containers.
    TooDeep,
    /// Unexpected character or end of input at the given byte offset.
    Syntax {
        /// Byte offset of the failure.
        at: usize,
    },
    /// A number that fits neither `i64` nor `f64` grammar.
    BadNumber {
        /// Byte offset of the failure.
        at: usize,
    },
    /// A malformed string escape.
    BadEscape {
        /// Byte offset of the failure.
        at: usize,
    },
    /// Valid value followed by trailing non-whitespace.
    Trailing {
        /// Byte offset of the first trailing byte.
        at: usize,
    },
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::TooLarge => f.write_str("input too large"),
            JsonError::TooDeep => f.write_str("nesting too deep"),
            JsonError::Syntax { at } => write!(f, "syntax error at byte {at}"),
            JsonError::BadNumber { at } => write!(f, "bad number at byte {at}"),
            JsonError::BadEscape { at } => write!(f, "bad string escape at byte {at}"),
            JsonError::Trailing { at } => write!(f, "trailing data at byte {at}"),
        }
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value from `text`.
///
/// # Errors
///
/// A typed [`JsonError`]; never panics on any input.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    if text.len() > MAX_INPUT_BYTES {
        return Err(JsonError::TooLarge);
    }
    let mut p = Parser {
        chars: text.char_indices().peekable(),
        len: text.len(),
    };
    p.skip_ws();
    let value = p.value(MAX_DEPTH)?;
    p.skip_ws();
    match p.peek() {
        None => Ok(value),
        Some((at, _)) => Err(JsonError::Trailing { at }),
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&mut self) -> Option<(usize, char)> {
        self.chars.peek().copied()
    }

    fn next(&mut self) -> Option<(usize, char)> {
        self.chars.next()
    }

    fn pos(&mut self) -> usize {
        self.peek().map_or(self.len, |(i, _)| i)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some((_, ' ' | '\t' | '\n' | '\r'))) {
            self.next();
        }
    }

    fn eat(&mut self, want: char) -> Result<(), JsonError> {
        match self.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((at, _)) => Err(JsonError::Syntax { at }),
            None => Err(JsonError::Syntax { at: self.len }),
        }
    }

    /// Consumes a keyword like `true` after its first char matched.
    fn keyword(&mut self, rest: &str) -> Result<(), JsonError> {
        for want in rest.chars() {
            match self.next() {
                Some((_, c)) if c == want => {}
                Some((at, _)) => return Err(JsonError::Syntax { at }),
                None => return Err(JsonError::Syntax { at: self.len }),
            }
        }
        Ok(())
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        let next_depth = depth.checked_sub(1).ok_or(JsonError::TooDeep)?;
        match self.peek() {
            Some((_, 'n')) => {
                self.next();
                self.keyword("ull")?;
                Ok(Value::Null)
            }
            Some((_, 't')) => {
                self.next();
                self.keyword("rue")?;
                Ok(Value::Bool(true))
            }
            Some((_, 'f')) => {
                self.next();
                self.keyword("alse")?;
                Ok(Value::Bool(false))
            }
            Some((_, '"')) => self.string().map(Value::Str),
            Some((_, '[')) => {
                self.next();
                self.skip_ws();
                let mut items = Vec::new();
                if matches!(self.peek(), Some((_, ']'))) {
                    self.next();
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value(next_depth)?);
                    self.skip_ws();
                    match self.next() {
                        Some((_, ',')) => self.skip_ws(),
                        Some((_, ']')) => return Ok(Value::Arr(items)),
                        Some((at, _)) => return Err(JsonError::Syntax { at }),
                        None => return Err(JsonError::Syntax { at: self.len }),
                    }
                }
            }
            Some((_, '{')) => {
                self.next();
                self.skip_ws();
                let mut map = BTreeMap::new();
                if matches!(self.peek(), Some((_, '}'))) {
                    self.next();
                    return Ok(Value::Obj(map));
                }
                loop {
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(':')?;
                    self.skip_ws();
                    let val = self.value(next_depth)?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.next() {
                        Some((_, ',')) => self.skip_ws(),
                        Some((_, '}')) => return Ok(Value::Obj(map)),
                        Some((at, _)) => return Err(JsonError::Syntax { at }),
                        None => return Err(JsonError::Syntax { at: self.len }),
                    }
                }
            }
            Some((_, c)) if c == '-' || c.is_ascii_digit() => self.number(),
            Some((at, _)) => Err(JsonError::Syntax { at }),
            None => Err(JsonError::Syntax { at: self.len }),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some((_, '"')) => return Ok(out),
                Some((at, '\\')) => match self.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut hex = String::new();
                        for _ in 0..4 {
                            match self.next() {
                                Some((_, c)) if c.is_ascii_hexdigit() => hex.push(c),
                                _ => return Err(JsonError::BadEscape { at }),
                            }
                        }
                        let code = u32::from_str_radix(&hex, 16)
                            .ok()
                            .and_then(char::from_u32)
                            .ok_or(JsonError::BadEscape { at })?;
                        out.push(code);
                    }
                    _ => return Err(JsonError::BadEscape { at }),
                },
                Some((at, c)) if (c < ' ') => return Err(JsonError::Syntax { at }),
                Some((_, c)) => out.push(c),
                None => return Err(JsonError::Syntax { at: self.len }),
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos();
        let mut text = String::new();
        let mut fractional = false;
        if matches!(self.peek(), Some((_, '-'))) {
            text.push('-');
            self.next();
        }
        while let Some((_, c)) = self.peek() {
            match c {
                '0'..='9' => {
                    text.push(c);
                    self.next();
                }
                '.' | 'e' | 'E' | '+' | '-' => {
                    fractional = true;
                    text.push(c);
                    self.next();
                }
                _ => break,
            }
        }
        if fractional {
            text.parse::<f64>()
                .ok()
                .filter(|x| x.is_finite())
                .map(Value::Num)
                .ok_or(JsonError::BadNumber { at: start })
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| JsonError::BadNumber { at: start })
        }
    }
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            use std::fmt::Write as _;
            let _ = write!(out, "{n}");
        }
        Value::Num(x) => {
            use std::fmt::Write as _;
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if c < ' ' => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_protocol_shapes() {
        let v = obj(vec![
            ("id", Value::Int(7)),
            ("op", Value::Str("plan".into())),
            ("width", Value::Int(16)),
            ("density", Value::Num(0.5)),
            ("flags", Value::Arr(vec![Value::Bool(true), Value::Null])),
        ]);
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(v.field("id").and_then(Value::as_u64), Some(7));
        assert_eq!(v.field("density").and_then(Value::as_f64), Some(0.5));
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::Str("a\"b\\c\nd\u{1}e".into());
        assert_eq!(parse(&v.to_json()).unwrap(), v);
        assert_eq!(
            parse("\"\\u0041\\u00e9\"").unwrap(),
            Value::Str("Aé".into())
        );
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "tru",
            "nul",
            "\"abc",
            "1e999",
            "--3",
            "{\"a\":1}x",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(40) + &"]".repeat(40);
        assert_eq!(parse(&deep), Err(JsonError::TooDeep));
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn numbers_split_int_and_float() {
        assert_eq!(parse("42").unwrap().as_i64(), Some(42));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("-7").unwrap().as_u64(), None);
        assert_eq!(parse("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        // Large integers widen to f64 without `as` casts.
        let big = parse("9007199254740992").unwrap();
        assert_eq!(big.as_f64(), Some(9007199254740992.0));
    }
}
