//! `soctdc serve`: a fault-tolerant persistent planning service.
//!
//! This crate turns the planner into a long-running daemon:
//!
//! * **Protocol** — newline-delimited JSON over stdio ([`proto`],
//!   [`json`]) plus a minimal HTTP/1.1 listener ([`http`]), both built on
//!   std only and held to the untrusted-parser contract.
//! * **Persistence** — per-session directories with atomic writes and a
//!   write-ahead inflight journal ([`session`]); a restart after any
//!   crash recovers every session and re-executes journaled requests.
//! * **Bounded resources** — a bounded request queue with explicit load
//!   shedding ([`queue`]), a bounded plan-text memo, and the bounded
//!   design/eval/profile caches of the underlying planner.
//! * **Fault injection** — [`fault`] arms process aborts at named points
//!   so the crash-recovery story is *tested*, not asserted.
//!
//! The daemon itself lives in [`server`]; the `soctdc serve` subcommand
//! is a thin wrapper over [`server::run`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod fault;
pub mod http;
pub mod json;
pub mod proto;
pub mod queue;
pub mod server;
pub mod session;

pub use fault::{FaultPlan, FAULT_ENV};
pub use server::{run, ServeConfig};
pub use session::{DesignSource, Recovery, ServeError, SessionStore};
