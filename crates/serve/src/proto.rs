//! The daemon's request/response schema.
//!
//! One JSON object per request. Over stdio each line is a request and the
//! daemon answers with one acknowledgment line per request (matched by
//! `id`) plus, for plans, a later completion event line. Over HTTP the
//! same operations map onto paths and the response is synchronous.
//!
//! Requests:
//!
//! ```text
//! {"id":1,"op":"ping"}
//! {"id":2,"op":"open","session":"s1","benchmark":"d695","seed":1,"density":0.5}
//! {"id":3,"op":"open","session":"s2","itc02":"<ITC'02 text>","density":0.5}
//! {"id":4,"op":"plan","session":"s1","mode":"per-core","width":16,"budget_ms":2000}
//! {"id":5,"op":"get-plan","session":"s1","request":"0001"}
//! {"id":6,"op":"sessions"}
//! {"id":7,"op":"status"}
//! {"id":8,"op":"shutdown"}
//! ```

use crate::json::{obj, JsonError, Value};
use crate::session::DesignSource;

/// A decoded protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Daemon status: queue depth, cache counters, session count.
    Status,
    /// List sessions.
    Sessions,
    /// Create (or replace) a session.
    Open {
        /// Session name.
        session: String,
        /// Design source.
        source: DesignSource,
        /// Cube-synthesis seed (default 1).
        seed: u64,
        /// Care-bit density (default 0.5).
        density: f64,
    },
    /// Queue a planning run on a session.
    Plan {
        /// Session name.
        session: String,
        /// Planner mode keyword (`per-core`, `no-tdc`, …).
        mode: String,
        /// External TAM width budget.
        width: u32,
        /// Wall-clock budget in ms; `None` uses the server default and
        /// `0` disables the deadline entirely (deterministic plan).
        budget_ms: Option<u64>,
    },
    /// Fetch a completed plan's text.
    GetPlan {
        /// Session name.
        session: String,
        /// Request id returned by the `plan` acknowledgment.
        request: String,
    },
    /// Graceful shutdown: drain the queue, then exit.
    Shutdown,
}

/// Why a wire request could not be decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// The line was not valid JSON.
    Json(JsonError),
    /// Structurally valid JSON that is not a valid request.
    Invalid(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Json(e) => write!(f, "json: {e}"),
            DecodeError::Invalid(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes one request line. Returns the caller-chosen correlation id
/// (0 when absent) alongside the request so errors can still be matched.
///
/// # Errors
///
/// [`DecodeError`] naming the problem; the id is best-effort extracted
/// even from invalid requests.
pub fn decode(line: &str) -> (u64, Result<Request, DecodeError>) {
    let value = match crate::json::parse(line) {
        Ok(v) => v,
        Err(e) => return (0, Err(DecodeError::Json(e))),
    };
    let id = value.field("id").and_then(Value::as_u64).unwrap_or(0);
    (id, decode_value(&value))
}

fn decode_value(value: &Value) -> Result<Request, DecodeError> {
    let op = value
        .field("op")
        .and_then(Value::as_str)
        .ok_or_else(|| DecodeError::Invalid("missing `op`".into()))?;
    let need_str = |key: &str| -> Result<String, DecodeError> {
        value
            .field(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| DecodeError::Invalid(format!("missing `{key}`")))
    };
    match op {
        "ping" => Ok(Request::Ping),
        "status" => Ok(Request::Status),
        "sessions" => Ok(Request::Sessions),
        "shutdown" => Ok(Request::Shutdown),
        "open" => {
            let session = need_str("session")?;
            let source = match (
                value.field("benchmark").and_then(Value::as_str),
                value.field("itc02").and_then(Value::as_str),
            ) {
                (Some(b), None) => DesignSource::Benchmark(b.to_string()),
                (None, Some(t)) => DesignSource::Itc02(t.to_string()),
                _ => {
                    return Err(DecodeError::Invalid(
                        "`open` needs exactly one of `benchmark` or `itc02`".into(),
                    ))
                }
            };
            let seed = match value.field("seed") {
                None => 1,
                Some(v) => v.as_u64().ok_or_else(|| {
                    DecodeError::Invalid("`seed` must be a non-negative integer".into())
                })?,
            };
            let density = match value.field("density") {
                None => 0.5,
                Some(v) => v
                    .as_f64()
                    .filter(|d| (0.0..=1.0).contains(d))
                    .ok_or_else(|| DecodeError::Invalid("`density` must be in [0,1]".into()))?,
            };
            Ok(Request::Open {
                session,
                source,
                seed,
                density,
            })
        }
        "plan" => {
            let session = need_str("session")?;
            let mode = match value.field("mode") {
                None => "per-core".to_string(),
                Some(v) => v
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| DecodeError::Invalid("`mode` must be a string".into()))?,
            };
            let width = value
                .field("width")
                .and_then(Value::as_u64)
                .and_then(|w| u32::try_from(w).ok())
                .filter(|&w| (1..=4096).contains(&w))
                .ok_or_else(|| DecodeError::Invalid("`width` must be in 1..=4096".into()))?;
            let budget_ms = match value.field("budget_ms") {
                None => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    DecodeError::Invalid("`budget_ms` must be a non-negative integer".into())
                })?),
            };
            Ok(Request::Plan {
                session,
                mode,
                width,
                budget_ms,
            })
        }
        "get-plan" => Ok(Request::GetPlan {
            session: need_str("session")?,
            request: need_str("request")?,
        }),
        other => Err(DecodeError::Invalid(format!("unknown op `{other}`"))),
    }
}

/// A successful acknowledgment: `{"id":N,"ok":true,"result":...}`.
pub fn ok(id: u64, result: Value) -> Value {
    obj(vec![
        ("id", Value::Int(i64::try_from(id).unwrap_or(0))),
        ("ok", Value::Bool(true)),
        ("result", result),
    ])
}

/// An error response; `retry_after_ms` is set only for shed load.
pub fn err(id: u64, message: &str, retry_after_ms: Option<u64>) -> Value {
    let mut pairs = vec![
        ("id", Value::Int(i64::try_from(id).unwrap_or(0))),
        ("ok", Value::Bool(false)),
        ("error", Value::Str(message.to_string())),
    ];
    if let Some(ms) = retry_after_ms {
        pairs.push(("retry_after_ms", Value::Int(i64::try_from(ms).unwrap_or(0))));
    }
    obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_the_documented_shapes() {
        let (id, req) = decode(r#"{"id":1,"op":"ping"}"#);
        assert_eq!((id, req.unwrap()), (1, Request::Ping));

        let (_, req) = decode(r#"{"id":2,"op":"open","session":"s1","benchmark":"d695","seed":3}"#);
        assert_eq!(
            req.unwrap(),
            Request::Open {
                session: "s1".into(),
                source: DesignSource::Benchmark("d695".into()),
                seed: 3,
                density: 0.5,
            }
        );

        let (_, req) = decode(r#"{"id":4,"op":"plan","session":"s1","width":16,"budget_ms":500}"#);
        assert_eq!(
            req.unwrap(),
            Request::Plan {
                session: "s1".into(),
                mode: "per-core".into(),
                width: 16,
                budget_ms: Some(500),
            }
        );
    }

    #[test]
    fn invalid_requests_keep_their_id() {
        let (id, req) = decode(r#"{"id":9,"op":"warp"}"#);
        assert_eq!(id, 9);
        assert!(req.is_err());
        let (id, req) = decode("not json at all");
        assert_eq!(id, 0);
        assert!(matches!(req, Err(DecodeError::Json(_))));
        let (_, req) = decode(r#"{"op":"plan","session":"s","width":0}"#);
        assert!(req.is_err(), "zero width rejected");
        let (_, req) = decode(r#"{"op":"open","session":"s"}"#);
        assert!(req.is_err(), "open needs a source");
    }

    #[test]
    fn responses_serialize_deterministically() {
        assert_eq!(
            ok(3, Value::Str("pong".into())).to_json(),
            r#"{"id":3,"ok":true,"result":"pong"}"#
        );
        assert_eq!(
            err(4, "queue full", Some(1500)).to_json(),
            r#"{"error":"queue full","id":4,"ok":false,"retry_after_ms":1500}"#
        );
    }
}
