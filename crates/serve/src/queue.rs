//! A bounded MPMC request queue with explicit load shedding.
//!
//! The daemon accepts work only through [`BoundedQueue::try_push`], which
//! *fails fast* with [`QueueFull`] when the queue is at capacity — the
//! caller turns that into a reject-with-retry-after response instead of
//! buffering unboundedly. Workers block on [`BoundedQueue::pop`] until
//! work arrives or the queue is closed for shutdown.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Returned by [`BoundedQueue::try_push`] when the queue cannot accept
/// more work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; shed load and ask the client to retry.
    Full {
        /// Current depth (== capacity).
        depth: usize,
    },
    /// The queue was closed for shutdown.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO shared between the protocol front ends (producers) and
/// the planning workers (consumers).
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, or rejects it when full/closed. On success returns
    /// the new depth (for retry-after estimation by the caller).
    pub fn try_push(&self, item: T) -> Result<usize, PushError> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full {
                depth: state.items.len(),
            });
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed *and* drained (returning `None`).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// blocked workers wake up once the backlog is empty.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Drains and discards everything queued, returning how many items
    /// were dropped. Used on fast shutdown.
    pub fn drain(&self) -> usize {
        let mut state = self.state.lock().expect("queue poisoned");
        let dropped = state.items.len();
        state.items.clear();
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_load_when_full() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full { depth: 2 }));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(2));
    }

    #[test]
    fn close_rejects_pushes_but_drains_backlog() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert_eq!(q.try_push("b"), Err(PushError::Closed));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn workers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for i in 0..5 {
            while q.try_push(i).is_err() {
                std::thread::yield_now();
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
