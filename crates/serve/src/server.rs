//! The planning daemon: stdio NDJSON front end, optional HTTP/1.1
//! listener, bounded worker pool, and crash recovery.
//!
//! ```text
//!           stdin lines ──┐                       ┌── worker 0 ──┐
//!   TCP connections ──────┼──> BoundedQueue ──────┼── worker 1 ──┼──> SessionStore
//!   recovered inflight ───┘    (load shedding)    └── …          ┘    (atomic writes)
//! ```
//!
//! Every accepted plan request is journaled to the session's `inflight/`
//! directory *before* it is queued, so a crash at any point is recoverable:
//! on the next start [`SessionStore::recover`] re-enqueues the journaled
//! requests and the daemon finishes them. Each request runs under its own
//! [`robust::Deadline`] (from `budget_ms`) and [`robust::CancelToken`]
//! (tripped when an HTTP client disconnects mid-plan), which the planner
//! cascade turns into `Degraded`/`Interrupted` plans rather than failures.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use robust::{BoundedCache, CacheLimits, CancelToken, Deadline};
use tdcsoc::{PlanControl, PlanRequest, Planner, ProfileCacheConfig};

use crate::fault::FaultPlan;
use crate::http;
use crate::json::{obj, Value};
use crate::proto::{self, Request};
use crate::queue::{BoundedQueue, PushError};
use crate::session::SessionStore;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Persistent state root (sessions, caches, quarantine).
    pub root: PathBuf,
    /// Optional `host:port` for the HTTP listener.
    pub http: Option<String>,
    /// Planning worker threads.
    pub workers: usize,
    /// Request-queue capacity; pushes beyond it are shed with
    /// `retry_after_ms`.
    pub queue_cap: usize,
    /// Wall-clock budget applied to plan requests that do not carry one.
    pub default_budget_ms: u64,
    /// Entry/byte caps for the in-memory plan-text memo.
    pub memo_limits: CacheLimits,
}

impl ServeConfig {
    /// A daemon rooted at `root` with conservative defaults: two workers,
    /// a 16-deep queue, 30 s default budget, 256-entry/8 MiB plan memo,
    /// no HTTP listener.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ServeConfig {
            root: root.into(),
            http: None,
            workers: 2,
            queue_cap: 16,
            default_budget_ms: 30_000,
            memo_limits: CacheLimits::new(256, 8 << 20),
        }
    }
}

/// Maps a wire mode keyword onto a planner (same keywords as the CLI).
pub fn planner_for(mode: &str) -> Option<Planner> {
    Some(match mode {
        "no-tdc" => Planner::no_tdc(),
        "per-core" => Planner::per_core_tdc(),
        "per-tam" => Planner::per_tam_tdc(),
        "fixed4" => Planner::fixed_width_tdc(4),
        "reseed" => Planner::reseeding_tdc(),
        "fdr" => Planner::fdr_tdc(),
        "select" => Planner::select_tdc(),
        _ => return None,
    })
}

/// A queued planning job. Journaled before queuing, so it survives a
/// crash; the reply channel (HTTP) or the event stream (stdio) carries
/// the completion.
struct PlanJob {
    session: String,
    request: String,
    mode: String,
    width: u32,
    budget_ms: u64,
    token: CancelToken,
    reply: Option<mpsc::Sender<Value>>,
}

#[derive(Default)]
struct Counters {
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
}

/// Shared daemon state.
struct Ctx {
    store: SessionStore,
    queue: BoundedQueue<PlanJob>,
    faults: FaultPlan,
    stdout: Mutex<Box<dyn Write + Send>>,
    memo: Mutex<BoundedCache<String, String>>,
    counters: Counters,
    default_budget_ms: u64,
    shutting_down: AtomicBool,
}

impl Ctx {
    /// Writes one NDJSON line to the stdio front end.
    fn emit(&self, value: &Value) {
        let mut out = self.stdout.lock().expect("stdout poisoned");
        let _ = writeln!(out, "{}", value.to_json());
        let _ = out.flush();
    }

    /// Conservative client-facing retry hint: assume every queued job
    /// consumes its full budget on a single worker. Deliberately derived
    /// from queue state only — the daemon never reads a wall clock.
    fn retry_after_ms(&self, depth: usize) -> u64 {
        let per_job = self.default_budget_ms.max(100);
        u64::try_from(depth)
            .unwrap_or(u64::MAX)
            .saturating_mul(per_job)
            .min(600_000)
    }
}

/// Validates, journals, and enqueues a plan request. On success returns
/// the allocated request id; on shed load returns the retry hint.
fn enqueue_plan(
    ctx: &Arc<Ctx>,
    session: &str,
    mode: &str,
    width: u32,
    budget_ms: Option<u64>,
    reply: Option<mpsc::Sender<Value>>,
) -> Result<(String, CancelToken), (String, Option<u64>)> {
    if ctx.store.load_meta(session).is_none() {
        return Err((format!("unknown session `{session}`"), None));
    }
    if planner_for(mode).is_none() {
        return Err((format!("unknown mode `{mode}`"), None));
    }
    let budget_ms = budget_ms.unwrap_or(ctx.default_budget_ms);
    let request = ctx.store.next_request_id(session);
    let body = obj(vec![
        ("op", Value::Str("plan".into())),
        ("session", Value::Str(session.to_string())),
        ("mode", Value::Str(mode.to_string())),
        ("width", Value::Int(i64::from(width))),
        (
            "budget_ms",
            Value::Int(i64::try_from(budget_ms).unwrap_or(i64::MAX)),
        ),
    ]);
    // Journal BEFORE queueing: from here on a crash is recoverable.
    if let Err(e) = ctx.store.journal_inflight(session, &request, &body) {
        return Err((e.to_string(), None));
    }
    ctx.faults.point("after-journal");
    let token = CancelToken::never();
    let job = PlanJob {
        session: session.to_string(),
        request: request.clone(),
        mode: mode.to_string(),
        width,
        budget_ms,
        token: token.clone(),
        reply,
    };
    match ctx.queue.try_push(job) {
        Ok(_) => Ok((request, token)),
        Err(PushError::Full { depth }) => {
            // Shed: un-journal so the rejected request is not replayed.
            ctx.store.abandon_inflight(session, &request);
            ctx.counters.shed.fetch_add(1, Ordering::SeqCst);
            Err(("queue full".to_string(), Some(ctx.retry_after_ms(depth))))
        }
        Err(PushError::Closed) => {
            ctx.store.abandon_inflight(session, &request);
            Err(("shutting down".to_string(), None))
        }
    }
}

/// Executes one job end to end: load the session's SOC, plan under the
/// job's deadline/token, persist the plan, clear the journal entry.
fn run_job(ctx: &Arc<Ctx>, job: &PlanJob) -> Value {
    ctx.faults.point("plan-started");
    let fail = |msg: String| -> Value {
        ctx.counters.failed.fetch_add(1, Ordering::SeqCst);
        // The request itself is bad; replaying it on restart would fail
        // identically, so drop the journal entry.
        ctx.store.abandon_inflight(&job.session, &job.request);
        obj(vec![
            ("event", Value::Str("plan-failed".into())),
            ("session", Value::Str(job.session.clone())),
            ("request", Value::Str(job.request.clone())),
            ("error", Value::Str(msg)),
        ])
    };
    let Some(meta) = ctx.store.load_meta(&job.session) else {
        return fail(format!("unknown session `{}`", job.session));
    };
    let soc = match ctx.store.load_soc(&meta) {
        Ok(soc) => soc,
        Err(e) => return fail(e.to_string()),
    };
    let Some(planner) = planner_for(&job.mode) else {
        return fail(format!("unknown mode `{}`", job.mode));
    };
    // `budget_ms: 0` means *no* deadline (the fully deterministic plan),
    // not an already-expired one.
    let deadline = match job.budget_ms {
        0 => Deadline::none(),
        ms => Deadline::within(Duration::from_millis(ms)),
    };
    let control = PlanControl {
        deadline,
        token: job.token.clone(),
        profile_cache: Some(ProfileCacheConfig::new(
            ctx.store.cache_dir(),
            format!("{}-seed{}-d{:.3}", soc.name(), meta.seed, meta.density),
        )),
        ..PlanControl::default()
    };
    let request = PlanRequest::tam_width(job.width);
    let (plan, stats) = match planner.plan_with_stats(&soc, &request, &control) {
        Ok(result) => result,
        Err(e) => return fail(format!("plan: {e}")),
    };
    let text = tdcsoc::write_plan(&plan);
    ctx.faults.point("before-plan-write");
    if let Err(e) = ctx.store.complete(&job.session, &job.request, &text) {
        // Persisting failed but the journal entry is intact: the request
        // will be replayed on the next start, so report it as retryable.
        ctx.counters.failed.fetch_add(1, Ordering::SeqCst);
        return obj(vec![
            ("event", Value::Str("plan-failed".into())),
            ("session", Value::Str(job.session.clone())),
            ("request", Value::Str(job.request.clone())),
            ("error", Value::Str(format!("persist: {e}"))),
            ("retryable", Value::Bool(true)),
        ]);
    }
    ctx.faults.point("after-plan-write");
    let weight = text.len().saturating_add(64);
    ctx.memo.lock().expect("memo poisoned").insert(
        format!("{}/{}", job.session, job.request),
        text,
        weight,
    );
    ctx.counters.completed.fetch_add(1, Ordering::SeqCst);
    obj(vec![
        ("event", Value::Str("plan-done".into())),
        ("session", Value::Str(job.session.clone())),
        ("request", Value::Str(job.request.clone())),
        ("outcome", Value::Str(plan.outcome.to_string())),
        (
            "test_time",
            Value::Int(i64::try_from(plan.test_time).unwrap_or(i64::MAX)),
        ),
        (
            "volume_bits",
            Value::Int(i64::try_from(plan.volume_bits).unwrap_or(i64::MAX)),
        ),
        // Plan-time stream verification totals (0 streams would mean an
        // uncompressed plan, not a skipped check — serve never opts out).
        (
            "verified_streams",
            Value::Int(i64::try_from(stats.streams_verified).unwrap_or(i64::MAX)),
        ),
        (
            "verified_words",
            Value::Int(i64::try_from(stats.stream_words).unwrap_or(i64::MAX)),
        ),
        // Profile-cache effectiveness: how much of the plan was answered
        // from prior requests' work (incremental rebuilds across sessions).
        (
            "profile_hits",
            Value::Int(i64::try_from(stats.profile_hits).unwrap_or(i64::MAX)),
        ),
        (
            "profile_partial",
            Value::Int(i64::try_from(stats.profile_partial_hits).unwrap_or(i64::MAX)),
        ),
        (
            "profile_misses",
            Value::Int(i64::try_from(stats.profile_misses).unwrap_or(i64::MAX)),
        ),
    ])
}

/// Worker loop: pop, execute, deliver (reply channel for HTTP, event
/// line for stdio/recovered jobs).
fn worker_loop(ctx: Arc<Ctx>) {
    while let Some(job) = ctx.queue.pop() {
        let result = run_job(&ctx, &job);
        match &job.reply {
            Some(tx) => {
                // A dropped receiver means the client went away; the plan
                // is persisted either way.
                let _ = tx.send(result);
            }
            None => ctx.emit(&result),
        }
    }
}

/// Reads a completed plan, memoized through the bounded plan cache.
fn plan_text_cached(ctx: &Arc<Ctx>, session: &str, request: &str) -> Option<String> {
    let key = format!("{session}/{request}");
    if let Some(text) = ctx.memo.lock().expect("memo poisoned").get(&key) {
        return Some(text.clone());
    }
    let text = ctx.store.plan_text(session, request)?;
    let weight = text.len().saturating_add(64);
    ctx.memo
        .lock()
        .expect("memo poisoned")
        .insert(key, text.clone(), weight);
    Some(text)
}

fn status_value(ctx: &Arc<Ctx>) -> Value {
    let memo = ctx.memo.lock().expect("memo poisoned");
    let stats = memo.stats();
    let as_int = |n: u64| Value::Int(i64::try_from(n).unwrap_or(i64::MAX));
    let usize_int = |n: usize| Value::Int(i64::try_from(n).unwrap_or(i64::MAX));
    obj(vec![
        ("sessions", usize_int(ctx.store.session_names().len())),
        ("queue_depth", usize_int(ctx.queue.len())),
        ("queue_capacity", usize_int(ctx.queue.capacity())),
        (
            "completed",
            as_int(ctx.counters.completed.load(Ordering::SeqCst)),
        ),
        ("failed", as_int(ctx.counters.failed.load(Ordering::SeqCst))),
        ("shed", as_int(ctx.counters.shed.load(Ordering::SeqCst))),
        ("memo_hits", as_int(stats.hits)),
        ("memo_misses", as_int(stats.misses)),
        ("memo_evictions", as_int(stats.evictions)),
    ])
}

/// Handles one decoded request from the stdio front end, returning the
/// acknowledgment line. Plan requests are acknowledged as queued; their
/// completion arrives later as an event line.
fn handle_stdio(ctx: &Arc<Ctx>, id: u64, request: &Request) -> Value {
    match request {
        Request::Ping => proto::ok(id, Value::Str("pong".into())),
        Request::Status => proto::ok(id, status_value(ctx)),
        Request::Sessions => proto::ok(
            id,
            Value::Arr(
                ctx.store
                    .session_names()
                    .into_iter()
                    .map(Value::Str)
                    .collect(),
            ),
        ),
        Request::Open {
            session,
            source,
            seed,
            density,
        } => match ctx.store.create_session(session, source, *seed, *density) {
            Ok(meta) => proto::ok(
                id,
                obj(vec![
                    ("session", Value::Str(meta.name)),
                    ("kind", Value::Str(meta.kind)),
                ]),
            ),
            Err(e) => proto::err(id, &e.to_string(), None),
        },
        Request::Plan {
            session,
            mode,
            width,
            budget_ms,
        } => match enqueue_plan(ctx, session, mode, *width, *budget_ms, None) {
            Ok((request, _token)) => proto::ok(
                id,
                obj(vec![
                    ("state", Value::Str("queued".into())),
                    ("request", Value::Str(request)),
                ]),
            ),
            Err((msg, retry)) => proto::err(id, &msg, retry),
        },
        Request::GetPlan { session, request } => match plan_text_cached(ctx, session, request) {
            Some(text) => proto::ok(
                id,
                obj(vec![
                    ("request", Value::Str(request.clone())),
                    ("plan", Value::Str(text)),
                ]),
            ),
            None => proto::err(id, &format!("no plan `{session}/{request}`"), None),
        },
        Request::Shutdown => {
            ctx.shutting_down.store(true, Ordering::SeqCst);
            ctx.queue.close();
            proto::ok(id, Value::Str("draining".into()))
        }
    }
}

/// True when the HTTP peer has disconnected (used to cancel in-flight
/// plans whose requester is gone).
fn peer_gone(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    let _ = stream.set_nonblocking(false);
    gone
}

/// Serves one HTTP connection (one request per connection).
fn handle_http_connection(ctx: &Arc<Ctx>, stream: TcpStream) {
    let respond =
        |mut stream: &TcpStream, status: u16, reason: &str, retry: Option<u64>, body: &Value| {
            let text = http::response(status, reason, retry, &body.to_json());
            let _ = stream.write_all(text.as_bytes());
            let _ = stream.flush();
        };
    let request = {
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        });
        match http::read_request(&mut reader) {
            Ok(r) => r,
            Err(e) => {
                let body = proto::err(0, &e.to_string(), None);
                respond(&stream, 400, "Bad Request", None, &body);
                return;
            }
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/status") => {
            respond(&stream, 200, "OK", None, &proto::ok(0, status_value(ctx)));
        }
        ("GET", "/sessions") => {
            let body = proto::ok(
                0,
                Value::Arr(
                    ctx.store
                        .session_names()
                        .into_iter()
                        .map(Value::Str)
                        .collect(),
                ),
            );
            respond(&stream, 200, "OK", None, &body);
        }
        ("GET", path) => {
            // /session/<name>/plan/<request>
            let mut parts = path.split('/').skip(1);
            match (
                parts.next(),
                parts.next(),
                parts.next(),
                parts.next(),
                parts.next(),
            ) {
                (Some("session"), Some(session), Some("plan"), Some(request), None) => {
                    match plan_text_cached(ctx, session, request) {
                        Some(text) => {
                            respond(&stream, 200, "OK", None, &proto::ok(0, Value::Str(text)))
                        }
                        None => respond(
                            &stream,
                            404,
                            "Not Found",
                            None,
                            &proto::err(0, "no such plan", None),
                        ),
                    }
                }
                _ => respond(
                    &stream,
                    404,
                    "Not Found",
                    None,
                    &proto::err(0, "no such path", None),
                ),
            }
        }
        ("POST", "/rpc") => {
            let Ok(text) = std::str::from_utf8(&request.body) else {
                respond(
                    &stream,
                    400,
                    "Bad Request",
                    None,
                    &proto::err(0, "body is not utf-8", None),
                );
                return;
            };
            let (id, decoded) = proto::decode(text);
            match decoded {
                Err(e) => respond(
                    &stream,
                    400,
                    "Bad Request",
                    None,
                    &proto::err(id, &e.to_string(), None),
                ),
                // Plans run synchronously over HTTP: journal, queue, wait
                // for the worker, watching for client disconnects.
                Ok(Request::Plan {
                    session,
                    mode,
                    width,
                    budget_ms,
                }) => {
                    let (tx, rx) = mpsc::channel();
                    match enqueue_plan(ctx, &session, &mode, width, budget_ms, Some(tx)) {
                        Err((msg, retry)) => {
                            let (status, reason) = if retry.is_some() {
                                (429, "Too Many Requests")
                            } else {
                                (400, "Bad Request")
                            };
                            let secs = retry.map(|ms| ms.div_ceil(1000));
                            respond(&stream, status, reason, secs, &proto::err(id, &msg, retry));
                        }
                        Ok((_request_id, token)) => loop {
                            match rx.recv_timeout(Duration::from_millis(200)) {
                                Ok(result) => {
                                    respond(&stream, 200, "OK", None, &proto::ok(id, result));
                                    break;
                                }
                                Err(mpsc::RecvTimeoutError::Timeout) => {
                                    // Disconnected requester → cancel; the
                                    // worker still persists the best
                                    // incumbent (Interrupted outcome).
                                    if peer_gone(&stream) {
                                        token.cancel();
                                    }
                                }
                                Err(mpsc::RecvTimeoutError::Disconnected) => {
                                    respond(
                                        &stream,
                                        500,
                                        "Internal Server Error",
                                        None,
                                        &proto::err(id, "worker lost", None),
                                    );
                                    break;
                                }
                            }
                        },
                    }
                }
                Ok(other) => {
                    let ack = handle_stdio(ctx, id, &other);
                    let ok = ack.field("ok").and_then(Value::as_bool).unwrap_or(false);
                    let (status, reason) = if ok {
                        (200, "OK")
                    } else {
                        (400, "Bad Request")
                    };
                    respond(&stream, status, reason, None, &ack);
                }
            }
        }
        _ => respond(
            &stream,
            405,
            "Method Not Allowed",
            None,
            &proto::err(0, "unsupported method", None),
        ),
    }
}

/// Re-enqueues requests journaled by a previous (crashed) process. When
/// the queue is full the job runs inline — recovered work is never shed.
fn reenqueue_recovered(ctx: &Arc<Ctx>, inflight: Vec<crate::session::InflightRequest>) {
    for req in inflight {
        let mode = req
            .body
            .field("mode")
            .and_then(Value::as_str)
            .unwrap_or("per-core")
            .to_string();
        let width = req
            .body
            .field("width")
            .and_then(Value::as_u64)
            .and_then(|w| u32::try_from(w).ok())
            .unwrap_or(16);
        let budget_ms = req
            .body
            .field("budget_ms")
            .and_then(Value::as_u64)
            .unwrap_or(ctx.default_budget_ms);
        let job = PlanJob {
            session: req.session,
            request: req.request,
            mode,
            width,
            budget_ms,
            token: CancelToken::never(),
            reply: None,
        };
        // Cannot fail: the queue was sized to hold every recovered job
        // (see `run_with_io`) and is still open at startup.
        let _ = ctx.queue.try_push(job);
    }
}

/// Runs the daemon until stdin closes or a `shutdown` request drains it.
/// Returns a process exit code.
pub fn run(config: &ServeConfig) -> i32 {
    run_with_io(
        config,
        &mut BufReader::new(std::io::stdin()),
        Box::new(std::io::stdout()),
    )
}

/// [`run`] with injectable stdio, for tests.
pub fn run_with_io(
    config: &ServeConfig,
    input: &mut dyn BufRead,
    output: Box<dyn Write + Send>,
) -> i32 {
    let store = match SessionStore::open(&config.root) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("soctdc serve: cannot open state root: {e}");
            return 2;
        }
    };
    let recovery = store.recover();
    // Size the queue so every recovered job fits alongside new work;
    // recovered work must never be shed.
    let capacity = config
        .queue_cap
        .max(recovery.inflight.len().saturating_add(1));
    let ctx = Arc::new(Ctx {
        store,
        queue: BoundedQueue::new(capacity),
        faults: FaultPlan::from_env(),
        stdout: Mutex::new(output),
        memo: Mutex::new(BoundedCache::new(config.memo_limits)),
        counters: Counters::default(),
        default_budget_ms: config.default_budget_ms.max(1),
        shutting_down: AtomicBool::new(false),
    });

    ctx.emit(&obj(vec![
        ("event", Value::Str("ready".into())),
        (
            "recovered_sessions",
            Value::Int(i64::try_from(recovery.sessions.len()).unwrap_or(0)),
        ),
        (
            "recovered_inflight",
            Value::Int(i64::try_from(recovery.inflight.len()).unwrap_or(0)),
        ),
        (
            "quarantined",
            Value::Int(i64::try_from(recovery.quarantined.len()).unwrap_or(0)),
        ),
    ]));
    reenqueue_recovered(&ctx, recovery.inflight);

    let mut workers = Vec::new();
    for _ in 0..config.workers.max(1) {
        let ctx = Arc::clone(&ctx);
        workers.push(std::thread::spawn(move || worker_loop(ctx)));
    }

    // Optional HTTP listener; its accept loop exits when the socket
    // errors or the process does.
    if let Some(addr) = &config.http {
        match TcpListener::bind(addr) {
            Ok(listener) => {
                if let Ok(local) = listener.local_addr() {
                    ctx.emit(&obj(vec![
                        ("event", Value::Str("http-listening".into())),
                        ("addr", Value::Str(local.to_string())),
                    ]));
                }
                let ctx = Arc::clone(&ctx);
                std::thread::spawn(move || {
                    for stream in listener.incoming() {
                        let Ok(stream) = stream else { continue };
                        if ctx.shutting_down.load(Ordering::SeqCst) {
                            break;
                        }
                        let ctx = Arc::clone(&ctx);
                        std::thread::spawn(move || handle_http_connection(&ctx, stream));
                    }
                });
            }
            Err(e) => {
                eprintln!("soctdc serve: cannot bind {addr}: {e}");
                return 2;
            }
        }
    }

    // Stdio front end on this thread: one request per line.
    let mut line = String::new();
    loop {
        line.clear();
        match input.read_line(&mut line) {
            Ok(0) => break, // stdin closed: drain and exit
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                let (id, decoded) = proto::decode(trimmed);
                let ack = match decoded {
                    Ok(request) => handle_stdio(&ctx, id, &request),
                    Err(e) => proto::err(id, &e.to_string(), None),
                };
                ctx.emit(&ack);
                if ctx.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }

    ctx.shutting_down.store(true, Ordering::SeqCst);
    ctx.queue.close();
    for worker in workers {
        let _ = worker.join();
    }
    ctx.emit(&obj(vec![("event", Value::Str("bye".into()))]));
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::DesignSource;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("serve-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn test_ctx(root: &PathBuf) -> Arc<Ctx> {
        Arc::new(Ctx {
            store: SessionStore::open(root).unwrap(),
            queue: BoundedQueue::new(2),
            faults: FaultPlan::none(),
            stdout: Mutex::new(Box::new(Vec::new())),
            memo: Mutex::new(BoundedCache::new(CacheLimits::new(8, 1 << 20))),
            counters: Counters::default(),
            default_budget_ms: 1000,
            shutting_down: AtomicBool::new(false),
        })
    }

    #[test]
    fn mode_keywords_match_the_cli() {
        for mode in [
            "no-tdc", "per-core", "per-tam", "fixed4", "reseed", "fdr", "select",
        ] {
            assert!(planner_for(mode).is_some(), "{mode}");
        }
        assert!(planner_for("warp").is_none());
    }

    #[test]
    fn ping_status_sessions_and_open() {
        let root = tmp_root("ops");
        let ctx = test_ctx(&root);
        let ack = handle_stdio(&ctx, 1, &Request::Ping);
        assert_eq!(ack.field("ok"), Some(&Value::Bool(true)));

        let ack = handle_stdio(
            &ctx,
            2,
            &Request::Open {
                session: "s1".into(),
                source: DesignSource::Benchmark("d695".into()),
                seed: 1,
                density: 0.5,
            },
        );
        assert_eq!(ack.field("ok"), Some(&Value::Bool(true)));

        let ack = handle_stdio(&ctx, 3, &Request::Sessions);
        assert_eq!(
            ack.field("result"),
            Some(&Value::Arr(vec![Value::Str("s1".into())]))
        );

        let ack = handle_stdio(&ctx, 4, &Request::Status);
        let status = ack.field("result").unwrap();
        assert_eq!(status.field("sessions").and_then(Value::as_i64), Some(1));
        assert_eq!(status.field("queue_depth").and_then(Value::as_i64), Some(0));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn plan_requests_queue_and_shed() {
        let root = tmp_root("shed");
        let ctx = test_ctx(&root);
        handle_stdio(
            &ctx,
            1,
            &Request::Open {
                session: "s".into(),
                source: DesignSource::Benchmark("d695".into()),
                seed: 1,
                density: 0.5,
            },
        );
        // Capacity 2: two queued, third shed with a retry hint.
        for id in [2u64, 3] {
            let ack = handle_stdio(
                &ctx,
                id,
                &Request::Plan {
                    session: "s".into(),
                    mode: "no-tdc".into(),
                    width: 8,
                    budget_ms: Some(100),
                },
            );
            assert_eq!(ack.field("ok"), Some(&Value::Bool(true)), "{ack:?}");
        }
        let ack = handle_stdio(
            &ctx,
            4,
            &Request::Plan {
                session: "s".into(),
                mode: "no-tdc".into(),
                width: 8,
                budget_ms: Some(100),
            },
        );
        assert_eq!(ack.field("ok"), Some(&Value::Bool(false)));
        assert!(ack.field("retry_after_ms").and_then(Value::as_u64).unwrap() > 0);
        // The shed request's journal entry is gone: replay would double-run.
        let rec = ctx.store.recover();
        assert_eq!(rec.inflight.len(), 2);
        // Unknown session / mode are rejected before journaling.
        let ack = handle_stdio(
            &ctx,
            5,
            &Request::Plan {
                session: "nope".into(),
                mode: "no-tdc".into(),
                width: 8,
                budget_ms: None,
            },
        );
        assert_eq!(ack.field("ok"), Some(&Value::Bool(false)));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn worker_completes_a_plan_end_to_end() {
        let root = tmp_root("e2e");
        let ctx = test_ctx(&root);
        handle_stdio(
            &ctx,
            1,
            &Request::Open {
                session: "s".into(),
                source: DesignSource::Benchmark("d695".into()),
                seed: 1,
                density: 0.5,
            },
        );
        let (request, _token) = enqueue_plan(&ctx, "s", "no-tdc", 16, Some(2_000), None).unwrap();
        let job = ctx.queue.pop().unwrap();
        let result = run_job(&ctx, &job);
        assert_eq!(
            result.field("event"),
            Some(&Value::Str("plan-done".into())),
            "{result:?}"
        );
        // Plan persisted, journal cleared, memo primed.
        let text = plan_text_cached(&ctx, "s", &request).unwrap();
        assert!(tdcsoc::parse_plan(&text).is_ok());
        assert!(ctx.store.recover().inflight.is_empty());
        assert_eq!(ctx.memo.lock().unwrap().stats().hits >= 1, true);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn stdio_loop_smoke() {
        let root = tmp_root("loop");
        let config = ServeConfig {
            workers: 1,
            queue_cap: 2,
            default_budget_ms: 1_000,
            ..ServeConfig::new(&root)
        };
        let input = "{\"id\":1,\"op\":\"ping\"}\n{\"id\":2,\"op\":\"shutdown\"}\n";
        let code = run_with_io(
            &config,
            &mut BufReader::new(input.as_bytes()),
            Box::new(Vec::new()),
        );
        assert_eq!(code, 0);
        let _ = std::fs::remove_dir_all(&root);
    }
}
