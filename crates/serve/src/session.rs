//! Persistent session directories and crash recovery.
//!
//! Every uploaded design lives in its own session directory under the
//! daemon's root:
//!
//! ```text
//! root/
//!   sessions/<name>/
//!     meta.json        session descriptor (source, seed, density)
//!     design.itc02     uploaded ITC'02 text (upload sessions only)
//!     inflight/NNNN.json   accepted-but-unfinished plan requests
//!     plans/NNNN.plan      completed plans, one file per request
//!   cache/             on-disk profile cache (managed by the planner)
//!   quarantine/        corrupt files moved aside during recovery
//! ```
//!
//! All writes are atomic (write to `.tmp`, rename into place) and a plan
//! request is journaled into `inflight/` *before* planning starts, so a
//! crash at any instant leaves either a completed artifact or a journaled
//! request — never a half-written one. [`SessionStore::recover`] walks the
//! tree on startup, quarantines anything that fails validation, and hands
//! back the journaled requests for re-execution.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use soc_model::benchmarks::Design;
use soc_model::generator::synthesize_missing_test_sets;
use soc_model::itc02::parse_itc02;
use soc_model::Soc;

use crate::json::{self, obj, Value};

/// A daemon-level failure surfaced to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request was malformed or referenced something invalid.
    BadRequest(String),
    /// The referenced session or artifact does not exist.
    NotFound(String),
    /// An I/O failure the daemon could not work around.
    Io(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::NotFound(m) => write!(f, "not found: {m}"),
            ServeError::Io(m) => write!(f, "io: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Where a session's design comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignSource {
    /// A built-in benchmark by name (`d695`, `p93791`, …).
    Benchmark(String),
    /// Uploaded ITC'02 text, stored verbatim in the session dir.
    Itc02(String),
}

/// A recovered or newly created session descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionMeta {
    /// Session name (also the directory name).
    pub name: String,
    /// `"benchmark"` or `"itc02"`.
    pub kind: String,
    /// Benchmark name for benchmark sessions.
    pub benchmark: Option<String>,
    /// Cube-synthesis seed.
    pub seed: u64,
    /// Care-bit density for synthesized cubes / ITC'02 parsing.
    pub density: f64,
}

impl SessionMeta {
    fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("name", Value::Str(self.name.clone())),
            ("kind", Value::Str(self.kind.clone())),
            (
                "seed",
                Value::Int(i64::try_from(self.seed).unwrap_or(i64::MAX)),
            ),
            ("density", Value::Num(self.density)),
        ];
        if let Some(b) = &self.benchmark {
            pairs.push(("benchmark", Value::Str(b.clone())));
        }
        obj(pairs)
    }

    fn from_value(v: &Value) -> Option<SessionMeta> {
        let name = v.field("name")?.as_str()?.to_string();
        let kind = v.field("kind")?.as_str()?.to_string();
        if kind != "benchmark" && kind != "itc02" {
            return None;
        }
        Some(SessionMeta {
            name,
            benchmark: v
                .field("benchmark")
                .and_then(Value::as_str)
                .map(str::to_string),
            kind,
            seed: v.field("seed")?.as_u64()?,
            density: v.field("density")?.as_f64()?,
        })
    }
}

/// One journaled-but-unfinished plan request found during recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct InflightRequest {
    /// Owning session.
    pub session: String,
    /// Request id (the `NNNN` in `inflight/NNNN.json`).
    pub request: String,
    /// The original request object, as journaled.
    pub body: Value,
}

/// What [`SessionStore::recover`] found.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Names of sessions that validated and are being served again.
    pub sessions: Vec<String>,
    /// Journaled requests to re-execute, oldest first.
    pub inflight: Vec<InflightRequest>,
    /// Files moved to `quarantine/` because they failed validation.
    pub quarantined: Vec<String>,
}

/// The daemon's persistent state root.
#[derive(Debug)]
pub struct SessionStore {
    root: PathBuf,
    quarantine_seq: std::sync::atomic::AtomicU64,
}

/// Validates a client-supplied name used as a path component: short,
/// non-empty, `[A-Za-z0-9._-]` only, no leading dot. Rejecting everything
/// else closes path traversal by construction.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
}

/// Atomic write: `.tmp` next to the target, then rename into place.
fn write_atomic(path: &Path, contents: &str) -> Result<(), ServeError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents).map_err(|e| ServeError::Io(e.to_string()))?;
    std::fs::rename(&tmp, path).map_err(|e| ServeError::Io(e.to_string()))
}

impl SessionStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the directory tree cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, ServeError> {
        let root = root.into();
        for sub in ["sessions", "cache", "quarantine"] {
            std::fs::create_dir_all(root.join(sub)).map_err(|e| ServeError::Io(e.to_string()))?;
        }
        Ok(SessionStore {
            root,
            quarantine_seq: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The shared on-disk profile-cache directory.
    pub fn cache_dir(&self) -> PathBuf {
        self.root.join("cache")
    }

    fn session_dir(&self, name: &str) -> PathBuf {
        self.root.join("sessions").join(name)
    }

    /// Moves `path` into `quarantine/`, uniquified, best-effort. Returns
    /// the quarantined file's display name when the move happened.
    fn quarantine(&self, path: &Path) -> Option<String> {
        let seq = self
            .quarantine_seq
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let base = path.file_name()?.to_string_lossy().into_owned();
        let target = self
            .root
            .join("quarantine")
            .join(format!("{seq:04}-{base}"));
        if std::fs::rename(path, &target).is_ok() {
            Some(format!("{seq:04}-{base}"))
        } else {
            let _ = std::fs::remove_file(path);
            None
        }
    }

    /// Creates a session directory, persisting its descriptor and (for
    /// uploads) the design text. Overwrites an existing session of the
    /// same name atomically — the descriptor is written last.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for invalid names, unknown benchmarks,
    /// or ITC'02 text that does not parse; [`ServeError::Io`] on write
    /// failures.
    pub fn create_session(
        &self,
        name: &str,
        source: &DesignSource,
        seed: u64,
        density: f64,
    ) -> Result<SessionMeta, ServeError> {
        if !valid_name(name) {
            return Err(ServeError::BadRequest(format!(
                "invalid session name `{name}`"
            )));
        }
        if !(0.0..=1.0).contains(&density) {
            return Err(ServeError::BadRequest(format!(
                "density {density} outside [0,1]"
            )));
        }
        let meta = match source {
            DesignSource::Benchmark(bench) => {
                if !Design::ALL.iter().any(|d| d.name() == bench) {
                    return Err(ServeError::BadRequest(format!(
                        "unknown benchmark `{bench}`"
                    )));
                }
                SessionMeta {
                    name: name.to_string(),
                    kind: "benchmark".to_string(),
                    benchmark: Some(bench.clone()),
                    seed,
                    density,
                }
            }
            DesignSource::Itc02(text) => {
                // Validate before persisting: a design that cannot parse
                // must be rejected at upload, not at plan time.
                parse_itc02(text, density)
                    .map_err(|e| ServeError::BadRequest(format!("itc02: {e}")))?;
                SessionMeta {
                    name: name.to_string(),
                    kind: "itc02".to_string(),
                    benchmark: None,
                    seed,
                    density,
                }
            }
        };
        let dir = self.session_dir(name);
        for sub in ["plans", "inflight"] {
            std::fs::create_dir_all(dir.join(sub)).map_err(|e| ServeError::Io(e.to_string()))?;
        }
        if let DesignSource::Itc02(text) = source {
            write_atomic(&dir.join("design.itc02"), text)?;
        }
        write_atomic(&dir.join("meta.json"), &meta.to_value().to_json())?;
        Ok(meta)
    }

    /// Loads a session descriptor, or `None` when it does not exist or
    /// does not validate (the caller decides whether to quarantine).
    pub fn load_meta(&self, name: &str) -> Option<SessionMeta> {
        if !valid_name(name) {
            return None;
        }
        let text = std::fs::read_to_string(self.session_dir(name).join("meta.json")).ok()?;
        let meta = SessionMeta::from_value(&json::parse(&text).ok()?)?;
        // The descriptor must agree with the directory it lives in.
        (meta.name == name).then_some(meta)
    }

    /// Builds the session's SOC with cubes attached — deterministic in
    /// (source, seed, density), so a rebuild after a crash or cache loss
    /// produces the identical model.
    ///
    /// # Errors
    ///
    /// [`ServeError::NotFound`] for missing designs,
    /// [`ServeError::Io`]/[`ServeError::BadRequest`] for unreadable or
    /// corrupt design files (caller quarantines).
    pub fn load_soc(&self, meta: &SessionMeta) -> Result<Soc, ServeError> {
        match (&meta.kind[..], &meta.benchmark) {
            ("benchmark", Some(bench)) => Design::ALL
                .iter()
                .find(|d| d.name() == bench.as_str())
                .map(|d| d.build_with_cubes(meta.seed))
                .ok_or_else(|| ServeError::NotFound(format!("benchmark `{bench}`"))),
            ("itc02", _) => {
                let path = self.session_dir(&meta.name).join("design.itc02");
                let text = std::fs::read_to_string(&path)
                    .map_err(|_| ServeError::NotFound(format!("design for `{}`", meta.name)))?;
                let mut soc = parse_itc02(&text, meta.density)
                    .map_err(|e| ServeError::BadRequest(format!("itc02: {e}")))?
                    .soc;
                synthesize_missing_test_sets(&mut soc, meta.seed);
                Ok(soc)
            }
            _ => Err(ServeError::BadRequest(format!(
                "session `{}` has a malformed descriptor",
                meta.name
            ))),
        }
    }

    /// Lists the names of sessions with a readable, valid descriptor.
    pub fn session_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        if let Ok(entries) = std::fs::read_dir(self.root.join("sessions")) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if self.load_meta(&name).is_some() {
                    names.push(name);
                }
            }
        }
        names.sort();
        names
    }

    /// Allocates the next request id for `session`: one past the highest
    /// id present in `plans/` or `inflight/`, zero-padded to 4 digits.
    pub fn next_request_id(&self, session: &str) -> String {
        let dir = self.session_dir(session);
        let mut max = 0u64;
        for sub in ["plans", "inflight"] {
            if let Ok(entries) = std::fs::read_dir(dir.join(sub)) {
                for entry in entries.flatten() {
                    let name = entry.file_name().to_string_lossy().into_owned();
                    if let Some(stem) = name.split('.').next() {
                        if let Ok(n) = stem.parse::<u64>() {
                            max = max.max(n);
                        }
                    }
                }
            }
        }
        format!("{:04}", max.saturating_add(1))
    }

    /// Journals an accepted plan request before execution (atomic).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the journal cannot be written — the caller
    /// must then reject the request rather than run it un-journaled.
    pub fn journal_inflight(
        &self,
        session: &str,
        request: &str,
        body: &Value,
    ) -> Result<(), ServeError> {
        let dir = self.session_dir(session).join("inflight");
        std::fs::create_dir_all(&dir).map_err(|e| ServeError::Io(e.to_string()))?;
        write_atomic(&dir.join(format!("{request}.json")), &body.to_json())
    }

    /// Persists a completed plan (atomic) and clears its journal entry.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the plan cannot be persisted (the journal
    /// entry is then kept, so the request is retried on restart).
    pub fn complete(
        &self,
        session: &str,
        request: &str,
        plan_text: &str,
    ) -> Result<(), ServeError> {
        let dir = self.session_dir(session);
        std::fs::create_dir_all(dir.join("plans")).map_err(|e| ServeError::Io(e.to_string()))?;
        write_atomic(
            &dir.join("plans").join(format!("{request}.plan")),
            plan_text,
        )?;
        let _ = std::fs::remove_file(dir.join("inflight").join(format!("{request}.json")));
        Ok(())
    }

    /// Drops a journaled request without a plan (used when re-execution
    /// finds the request itself invalid — retrying would never succeed).
    pub fn abandon_inflight(&self, session: &str, request: &str) {
        let path = self
            .session_dir(session)
            .join("inflight")
            .join(format!("{request}.json"));
        let _ = std::fs::remove_file(path);
    }

    /// Reads a completed plan's text.
    pub fn plan_text(&self, session: &str, request: &str) -> Option<String> {
        if !valid_name(session) || !valid_name(request) {
            return None;
        }
        std::fs::read_to_string(
            self.session_dir(session)
                .join("plans")
                .join(format!("{request}.plan")),
        )
        .ok()
    }

    /// Completed plan ids for a session, sorted.
    pub fn plan_ids(&self, session: &str) -> Vec<String> {
        let mut ids = Vec::new();
        if let Ok(entries) = std::fs::read_dir(self.session_dir(session).join("plans")) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if let Some(stem) = name.strip_suffix(".plan") {
                    ids.push(stem.to_string());
                }
            }
        }
        ids.sort();
        ids
    }

    /// Walks the whole tree after a (possibly unclean) shutdown:
    ///
    /// * sessions whose descriptor or design fails validation have the
    ///   corrupt file quarantined and are dropped from service;
    /// * completed plans that no longer parse are quarantined (the session
    ///   survives — the plan can be requested again);
    /// * journaled inflight requests are collected for re-execution;
    ///   unparsable journal entries are quarantined.
    pub fn recover(&self) -> Recovery {
        let mut recovery = Recovery::default();
        let mut sessions: BTreeMap<String, PathBuf> = BTreeMap::new();
        if let Ok(entries) = std::fs::read_dir(self.root.join("sessions")) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if valid_name(&name) {
                    sessions.insert(name, entry.path());
                }
            }
        }
        for (name, dir) in sessions {
            // Descriptor first; without it nothing else is trustworthy.
            let Some(meta) = self.load_meta(&name) else {
                let meta_path = dir.join("meta.json");
                if meta_path.exists() {
                    if let Some(q) = self.quarantine(&meta_path) {
                        recovery.quarantined.push(q);
                    }
                }
                continue;
            };
            // The design must actually load (catches corrupt uploads).
            if let Err(e) = self.load_soc(&meta) {
                let design = dir.join("design.itc02");
                if design.exists() {
                    if let Some(q) = self.quarantine(&design) {
                        recovery.quarantined.push(q);
                    }
                }
                let _ = e;
                continue;
            }
            // Completed plans must still parse.
            for id in self.plan_ids(&name) {
                let path = dir.join("plans").join(format!("{id}.plan"));
                let ok = std::fs::read_to_string(&path)
                    .ok()
                    .and_then(|text| tdcsoc::parse_plan(&text).ok())
                    .is_some();
                if !ok {
                    if let Some(q) = self.quarantine(&path) {
                        recovery.quarantined.push(q);
                    }
                }
            }
            // Journaled requests come back for re-execution.
            let mut journaled = Vec::new();
            if let Ok(entries) = std::fs::read_dir(dir.join("inflight")) {
                for entry in entries.flatten() {
                    let fname = entry.file_name().to_string_lossy().into_owned();
                    let Some(stem) = fname.strip_suffix(".json") else {
                        continue;
                    };
                    match std::fs::read_to_string(entry.path())
                        .ok()
                        .and_then(|text| json::parse(&text).ok())
                    {
                        Some(body) => journaled.push(InflightRequest {
                            session: name.clone(),
                            request: stem.to_string(),
                            body,
                        }),
                        None => {
                            if let Some(q) = self.quarantine(&entry.path()) {
                                recovery.quarantined.push(q);
                            }
                        }
                    }
                }
            }
            journaled.sort_by(|a, b| a.request.cmp(&b.request));
            recovery.inflight.extend(journaled);
            recovery.sessions.push(name);
        }
        recovery
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("serve-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_load_and_list() {
        let root = tmp_root("basic");
        let store = SessionStore::open(&root).unwrap();
        let meta = store
            .create_session("s1", &DesignSource::Benchmark("d695".into()), 1, 0.5)
            .unwrap();
        assert_eq!(store.load_meta("s1"), Some(meta.clone()));
        assert_eq!(store.session_names(), vec!["s1".to_string()]);
        let soc = store.load_soc(&meta).unwrap();
        assert_eq!(soc.name(), "d695");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn rejects_bad_names_and_benchmarks() {
        let root = tmp_root("names");
        let store = SessionStore::open(&root).unwrap();
        for bad in ["", "../x", "a/b", ".hidden", &"x".repeat(65)] {
            assert!(
                store
                    .create_session(bad, &DesignSource::Benchmark("d695".into()), 1, 0.5)
                    .is_err(),
                "{bad:?}"
            );
        }
        assert!(store
            .create_session("ok", &DesignSource::Benchmark("nope".into()), 1, 0.5)
            .is_err());
        assert!(store
            .create_session("ok", &DesignSource::Itc02("not itc02".into()), 1, 0.5)
            .is_err());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn request_ids_increment_and_journal_roundtrips() {
        let root = tmp_root("journal");
        let store = SessionStore::open(&root).unwrap();
        store
            .create_session("s", &DesignSource::Benchmark("d695".into()), 1, 0.5)
            .unwrap();
        let r1 = store.next_request_id("s");
        assert_eq!(r1, "0001");
        let body = obj(vec![("op", Value::Str("plan".into()))]);
        store.journal_inflight("s", &r1, &body).unwrap();
        assert_eq!(store.next_request_id("s"), "0002");
        let rec = store.recover();
        assert_eq!(rec.inflight.len(), 1);
        assert_eq!(rec.inflight.first().unwrap().body, body);
        store.complete("s", &r1, "# placeholder\n").unwrap();
        // A completed (but unparsable) plan is quarantined on recovery;
        // the journal entry is gone either way.
        let rec = store.recover();
        assert!(rec.inflight.is_empty());
        assert_eq!(rec.quarantined.len(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_meta_is_quarantined() {
        let root = tmp_root("corrupt");
        let store = SessionStore::open(&root).unwrap();
        store
            .create_session("s", &DesignSource::Benchmark("d695".into()), 1, 0.5)
            .unwrap();
        std::fs::write(root.join("sessions/s/meta.json"), "{broken").unwrap();
        let rec = store.recover();
        assert!(rec.sessions.is_empty());
        assert_eq!(rec.quarantined.len(), 1);
        assert!(root.join("quarantine").read_dir().unwrap().count() == 1);
        let _ = std::fs::remove_dir_all(&root);
    }
}
