//! Benchmark designs used in the paper's evaluation.
//!
//! * [`d695`] — the ITC'02 SOC test benchmark built from ISCAS'85/'89 cores,
//!   with the published wrapper parameters (terminal counts, scan-chain
//!   lengths, pattern counts). Care-bit density ≈ 66% as reported in the
//!   paper.
//! * [`d2758`] — a d2758-like SOC: the original (Iyengar & Chandra, IEE
//!   Proc. 2005) is not publicly distributed, so an SOC of the same size
//!   class is synthesized from ISCAS-like cores at the published ≈ 44%
//!   care-bit density.
//! * [`ckt`] — industrial-like cores `ckt-1` … `ckt-16`. The paper's
//!   industrial cores are proprietary; these match the published envelope:
//!   10k–110k scan cells, soft (re-stitchable) chains, 1–5% care-bit
//!   density, hundreds of patterns.
//! * [`system1`] … [`system4`] — SOCs composed of industrial-like cores,
//!   standing in for the paper's System1–System4.
//!
//! All designs are deterministic; attach cubes with
//! [`Design::build_with_cubes`] or
//! [`crate::generator::synthesize_missing_test_sets`].

use crate::core::Core;
use crate::generator::synthesize_missing_test_sets;
use crate::soc::Soc;

/// Care-bit density of the ISCAS'89-based d695 test sets (paper §4: "the
/// density of care bits is on average 66%").
pub const D695_CARE_DENSITY: f64 = 0.66;

/// Care-bit density of the d2758-like test sets (paper §4: "the designs
/// have a care-bit density of 44% on average").
pub const D2758_CARE_DENSITY: f64 = 0.44;

/// The benchmark designs of the paper's evaluation — plus the three
/// classic large ITC'02 SOCs (as `*-like` approximations, see
/// [`p93791`]) — as an enumerable set.
///
/// # Examples
///
/// ```
/// use soc_model::benchmarks::Design;
///
/// let soc = Design::D695.build();
/// assert_eq!(soc.core_count(), 10);
/// let prepared = Design::D695.build_with_cubes(42);
/// assert!(prepared.cores().iter().all(|c| c.test_set().is_some()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// ITC'02 benchmark d695 (10 ISCAS cores).
    D695,
    /// d2758-like SOC (24 ISCAS-like cores).
    D2758,
    /// Industrial-like SOC with 6 cores.
    System1,
    /// Industrial-like SOC with 8 cores.
    System2,
    /// Industrial-like SOC with 10 cores.
    System3,
    /// Industrial-like SOC with 12 cores.
    System4,
    /// p22810-like large ITC'02 SOC (28 cores).
    P22810,
    /// p34392-like large ITC'02 SOC (19 cores).
    P34392,
    /// p93791-like large ITC'02 SOC (32 cores, the classic TAM stress
    /// test).
    P93791,
}

impl Design {
    /// All designs: the paper's Table 3 set first, then the large ITC'02
    /// SOCs.
    pub const ALL: [Design; 9] = [
        Design::D695,
        Design::D2758,
        Design::System1,
        Design::System2,
        Design::System3,
        Design::System4,
        Design::P22810,
        Design::P34392,
        Design::P93791,
    ];

    /// The design's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Design::D695 => "d695",
            Design::D2758 => "d2758",
            Design::System1 => "System1",
            Design::System2 => "System2",
            Design::System3 => "System3",
            Design::System4 => "System4",
            Design::P22810 => "p22810",
            Design::P34392 => "p34392",
            Design::P93791 => "p93791",
        }
    }

    /// Builds the design without test cubes.
    pub fn build(self) -> Soc {
        match self {
            Design::D695 => d695(),
            Design::D2758 => d2758(),
            Design::System1 => system1(),
            Design::System2 => system2(),
            Design::System3 => system3(),
            Design::System4 => system4(),
            Design::P22810 => p22810(),
            Design::P34392 => p34392(),
            Design::P93791 => p93791(),
        }
    }

    /// Builds the design and attaches deterministic synthetic cubes.
    pub fn build_with_cubes(self, seed: u64) -> Soc {
        let mut soc = self.build();
        synthesize_missing_test_sets(&mut soc, seed);
        soc
    }

    /// Returns `true` for the SOCs crafted from industrial-like cores only
    /// (the paper reports a separate average over these).
    pub fn is_industrial(self) -> bool {
        matches!(
            self,
            Design::System1 | Design::System2 | Design::System3 | Design::System4
        )
    }
}

impl std::fmt::Display for Design {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Splits `total` scan cells into `k` chains whose lengths differ by at
/// most one (longest first).
///
/// # Panics
///
/// Panics if `k == 0` or `total < k`.
///
/// ```
/// use soc_model::benchmarks::balanced_chains;
/// assert_eq!(balanced_chains(10, 3), vec![4, 3, 3]);
/// ```
pub fn balanced_chains(total: u32, k: u32) -> Vec<u32> {
    assert!(k > 0, "chain count must be positive");
    assert!(
        total >= k,
        "cannot split {total} cells into {k} non-empty chains"
    );
    let base = total / k;
    let extra = total % k;
    (0..k)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect()
}

fn iscas_core(
    name: &str,
    inputs: u32,
    outputs: u32,
    chains: &[u32],
    patterns: u32,
    density: f64,
) -> Core {
    let mut b = Core::builder(name)
        .inputs(inputs)
        .outputs(outputs)
        .pattern_count(patterns)
        .care_density(density);
    if !chains.is_empty() {
        b = b.fixed_chains(chains.to_vec());
    }
    b.build().expect("benchmark core parameters are valid")
}

/// The ITC'02 benchmark SOC d695: ten ISCAS'85/'89 cores with the published
/// terminal counts, scan-chain structure, and pattern counts.
pub fn d695() -> Soc {
    let d = D695_CARE_DENSITY;
    Soc::new(
        "d695",
        vec![
            iscas_core("c6288", 32, 32, &[], 12, d),
            iscas_core("c7552", 207, 108, &[], 73, d),
            iscas_core("s838", 34, 1, &[32], 75, d),
            iscas_core("s9234", 36, 39, &balanced_chains(211, 4), 105, d),
            iscas_core("s38584", 38, 304, &balanced_chains(1426, 32), 110, d),
            iscas_core("s13207", 62, 152, &balanced_chains(638, 16), 234, d),
            iscas_core("s15850", 77, 150, &balanced_chains(534, 16), 95, d),
            iscas_core("s5378", 35, 49, &balanced_chains(179, 4), 97, d),
            iscas_core("s35932", 35, 320, &balanced_chains(1728, 32), 12, d),
            iscas_core("s38417", 28, 106, &balanced_chains(1636, 32), 68, d),
        ],
    )
}

/// A d2758-like SOC: 24 ISCAS-like hard cores spanning the same size range
/// as d695's cores (the original d2758 of Iyengar & Chandra is not publicly
/// distributed), with the published ≈ 44% care-bit density.
pub fn d2758() -> Soc {
    let d = D2758_CARE_DENSITY;
    let mut cores = Vec::new();
    // Three scaled echoes of a d695-like core mix plus combinational cores,
    // sized so total test data lands in the d2758 class (a few Mbit).
    let templates: [(&str, u32, u32, u32, u32, u32); 8] = [
        // (name stem, inputs, outputs, scan cells, chains, patterns)
        ("m-a", 34, 16, 256, 4, 96),
        ("m-b", 48, 40, 512, 8, 120),
        ("m-c", 36, 39, 211, 4, 105),
        ("m-d", 62, 152, 638, 16, 234),
        ("m-e", 77, 150, 534, 16, 95),
        ("m-f", 38, 304, 1426, 32, 110),
        ("m-g", 28, 106, 1636, 32, 68),
        ("m-h", 35, 320, 1728, 32, 12),
    ];
    for rep in 0..3u32 {
        for (stem, inp, out, cells, chains, patterns) in templates {
            let scale = rep + 1;
            let name = format!("{stem}{}", rep + 1);
            let chains = balanced_chains(cells * scale, chains);
            cores.push(iscas_core(&name, inp, out, &chains, patterns + 13 * rep, d));
        }
    }
    Soc::new("d2758", cores)
}

/// Parameters of the industrial-like cores `ckt-1` … `ckt-16`:
/// `(scan cells, max chains, inputs, outputs, patterns, care density)`.
///
/// Matches the published envelope of the paper's proprietary cores: 10k to
/// 110k scan cells, care-bit density no more than 5%.
const CKT_TABLE: [(u32, u32, u32, u32, u32, f64); 16] = [
    (12_104, 512, 109, 32, 210, 0.030),    // ckt-1
    (16_408, 512, 66, 79, 180, 0.025),     // ckt-2
    (10_240, 400, 44, 51, 150, 0.050),     // ckt-3
    (35_200, 600, 120, 88, 260, 0.020),    // ckt-4
    (28_650, 512, 96, 104, 200, 0.015),    // ckt-5
    (45_056, 640, 140, 150, 300, 0.012),   // ckt-6
    (24_576, 512, 130, 120, 240, 0.020),   // ckt-7 (used for Figs. 2 and 3)
    (54_800, 768, 180, 166, 320, 0.010),   // ckt-8
    (18_200, 448, 72, 60, 170, 0.035),     // ckt-9
    (66_000, 768, 200, 210, 360, 0.010),   // ckt-10
    (30_720, 512, 110, 96, 230, 0.018),    // ckt-11
    (80_200, 896, 240, 220, 400, 0.008),   // ckt-12
    (14_336, 400, 58, 63, 160, 0.040),     // ckt-13
    (92_160, 1024, 260, 255, 420, 0.008),  // ckt-14
    (22_100, 512, 84, 90, 190, 0.022),     // ckt-15
    (110_000, 1024, 300, 280, 440, 0.006), // ckt-16
];

/// Number of industrial-like cores available via [`ckt`].
pub const CKT_COUNT: u32 = CKT_TABLE.len() as u32;

/// Builds industrial-like core `ckt-<index>` (1-based, like the paper).
///
/// # Panics
///
/// Panics if `index` is 0 or greater than [`CKT_COUNT`].
///
/// ```
/// use soc_model::benchmarks::ckt;
/// let c = ckt(7);
/// assert_eq!(c.name(), "ckt-7");
/// assert!(c.scan_cells() >= 10_000);
/// ```
pub fn ckt(index: u32) -> Core {
    assert!(
        (1..=CKT_COUNT).contains(&index),
        "ckt index {index} outside 1..={CKT_COUNT}"
    );
    let (cells, max_chains, inputs, outputs, patterns, density) = CKT_TABLE[(index - 1) as usize];
    Core::builder(format!("ckt-{index}"))
        .inputs(inputs)
        .outputs(outputs)
        .flexible_cells(cells, max_chains)
        .pattern_count(patterns)
        .care_density(density)
        .build()
        .expect("industrial core parameters are valid")
}

/// Builds a `p*-like` ITC'02-class SOC: `cores` hard cores whose scan
/// structure is drawn deterministically from `seed` inside the published
/// aggregate envelope (total flip-flops ≈ `total_ffs`, chain counts up to
/// 46, a few unscanned cores). The real p-SOC module tables are
/// distributed with the ITC'02 benchmark set; these stand-ins match the
/// class (core count, size spread) but not the exact numbers — use them
/// for scheduling/architecture experiments, not for citing absolute test
/// times.
fn p_like(name: &str, seed: u64, cores: u32, total_ffs: u64, max_patterns: u32) -> Soc {
    let mut rng = crate::rng::SplitMix64::new(seed);
    // Pareto-ish size mix: a few giants dominate, many small cores.
    let mut weights: Vec<f64> = (0..cores)
        .map(|_| {
            let u = rng.next_f64().max(1e-6);
            u.powi(3)
        })
        .collect();
    let total_w: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total_w;
    }
    let mut list = Vec::with_capacity(cores as usize);
    for (i, w) in weights.iter().enumerate() {
        let ffs = ((total_ffs as f64 * w) as u32).min(30_000);
        let inputs = 8 + rng.next_below(120) as u32;
        let outputs = 8 + rng.next_below(120) as u32;
        let patterns = (12 + rng.next_below(u64::from(max_patterns - 12)) as u32).min(max_patterns);
        let mut b = Core::builder(format!("{name}.c{:02}", i + 1))
            .inputs(inputs)
            .outputs(outputs)
            .pattern_count(patterns)
            .care_density(0.4 + 0.3 * rng.next_f64());
        if ffs >= 8 {
            let chains = (1 + rng.next_below(45) as u32).min(ffs);
            b = b.fixed_chains(balanced_chains(ffs, chains));
        }
        list.push(b.build().expect("generated core parameters are valid"));
    }
    Soc::new(name, list)
}

/// p22810-like SOC: 28 cores, ≈ 25k scan flip-flops.
pub fn p22810() -> Soc {
    p_like("p22810", 22_810, 28, 25_000, 400)
}

/// p34392-like SOC: 19 cores, ≈ 20k scan flip-flops.
pub fn p34392() -> Soc {
    p_like("p34392", 34_392, 19, 20_000, 500)
}

/// p93791-like SOC: 32 cores, ≈ 98k scan flip-flops — the classic
/// TAM-optimization stress test.
pub fn p93791() -> Soc {
    p_like("p93791", 93_791, 32, 98_000, 600)
}

fn system(name: &str, indices: &[u32]) -> Soc {
    Soc::new(name, indices.iter().map(|&i| ckt(i)).collect())
}

/// Industrial-like SOC System1 (6 smaller cores).
pub fn system1() -> Soc {
    system("System1", &[1, 2, 3, 9, 13, 15])
}

/// Industrial-like SOC System2 (8 cores).
pub fn system2() -> Soc {
    system("System2", &[1, 2, 3, 4, 5, 6, 7, 8])
}

/// Industrial-like SOC System3 (10 mixed cores).
pub fn system3() -> Soc {
    system("System3", &[2, 4, 5, 6, 8, 10, 11, 12, 14, 15])
}

/// Industrial-like SOC System4 (12 cores, the largest).
pub fn system4() -> Soc {
    system("System4", &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_chain_invariants() {
        for (total, k) in [(10u32, 3u32), (211, 4), (1426, 32), (5, 5), (7, 1)] {
            let chains = balanced_chains(total, k);
            assert_eq!(chains.len(), k as usize);
            assert_eq!(chains.iter().sum::<u32>(), total);
            let max = *chains.iter().max().unwrap();
            let min = *chains.iter().min().unwrap();
            assert!(max - min <= 1);
            assert!(chains.windows(2).all(|w| w[0] >= w[1]), "sorted desc");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty chains")]
    fn balanced_chains_rejects_too_many() {
        balanced_chains(3, 4);
    }

    #[test]
    fn d695_matches_published_structure() {
        let soc = d695();
        assert_eq!(soc.core_count(), 10);
        let (_, s38584) = soc.core_by_name("s38584").unwrap();
        assert_eq!(s38584.scan_cells(), 1426);
        let (_, s9234) = soc.core_by_name("s9234").unwrap();
        assert_eq!(s9234.scan_cells(), 211);
        assert_eq!(s9234.pattern_count(), 105);
        let (_, c6288) = soc.core_by_name("c6288").unwrap();
        assert!(c6288.scan().is_combinational());
        // Published totals: chain counts below 33, patterns 12..=234.
        for c in soc.cores() {
            assert!(c.pattern_count() >= 12 && c.pattern_count() <= 234);
        }
    }

    #[test]
    fn d2758_is_larger_than_d695() {
        let a = d695();
        let b = d2758();
        assert!(b.core_count() > a.core_count());
        assert!(b.initial_volume_bits() > a.initial_volume_bits());
    }

    #[test]
    fn ckt_cores_match_published_envelope() {
        for i in 1..=CKT_COUNT {
            let c = ckt(i);
            assert!(
                (10_000..=110_000).contains(&(c.scan_cells() as u32)),
                "{}: {} cells",
                c.name(),
                c.scan_cells()
            );
            assert!(c.nominal_care_density() <= 0.05, "{}", c.name());
            assert!(c.nominal_care_density() > 0.0, "{}", c.name());
        }
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn ckt_out_of_range_panics() {
        ckt(0);
    }

    #[test]
    fn systems_grow_in_size() {
        let sizes: Vec<usize> = [system1(), system2(), system3(), system4()]
            .iter()
            .map(Soc::core_count)
            .collect();
        assert_eq!(sizes, vec![6, 8, 10, 12]);
    }

    #[test]
    fn p_like_socs_match_their_class() {
        let p = p93791();
        assert_eq!(p.core_count(), 32);
        let ffs = p.total_scan_cells();
        assert!((60_000..130_000).contains(&ffs), "{ffs} FFs");
        // Deterministic.
        assert_eq!(p93791(), p93791());
        assert_eq!(p22810().core_count(), 28);
        assert_eq!(p34392().core_count(), 19);
        // Hard cores only; chain counts within the ITC'02 envelope.
        for c in p.cores() {
            if let crate::core::ScanArchitecture::Fixed { chain_lengths } = c.scan() {
                assert!(chain_lengths.len() <= 46, "{}", c.name());
            }
        }
    }

    #[test]
    fn design_enum_builds_everything() {
        for d in Design::ALL {
            let soc = d.build();
            assert!(!soc.is_empty(), "{d}");
            assert_eq!(soc.name(), d.name());
        }
        assert!(Design::System1.is_industrial());
        assert!(!Design::D695.is_industrial());
    }

    #[test]
    fn build_with_cubes_is_deterministic() {
        let a = Design::D695.build_with_cubes(11);
        let b = Design::D695.build_with_cubes(11);
        assert_eq!(a, b);
        let measured = a.cores()[3].test_set().unwrap().care_density();
        assert!(
            (measured - D695_CARE_DENSITY).abs() < 0.12,
            "density {measured}"
        );
    }
}
