//! Packed bit matrices with word-parallel transpose and sub-word copies.
//!
//! The slice-cost kernel of the compression stack views a test cube two
//! ways: *chain-major* (each wrapper chain's load sequence is a contiguous
//! run of cube bits — cheap to fill with sub-word copies) and
//! *slice-major* (each scan depth is one row — what the per-slice encoder
//! statistics need). [`BitMatrix`] stores either orientation 64 bits per
//! word and converts between them with a blocked 64×64 bit transpose, so
//! the whole conversion runs at a few instructions per 64 symbols instead
//! of one call per symbol.
//!
//! Bits are indexed LSB-first: column `c` of a row lives in word `c / 64`
//! at bit `c % 64` — the same packing as [`TritVec`](crate::TritVec)'s
//! care/value planes, so cube planes can be copied in directly.

/// A dense 2-D bit array, row-major, 64 columns per word, LSB-first.
///
/// The matrix is designed for reuse: [`reset`](BitMatrix::reset) reshapes
/// and zeroes it without shrinking the backing allocation, so a scratch
/// matrix amortizes to zero allocations across many cubes.
///
/// # Examples
///
/// ```
/// use soc_model::BitMatrix;
///
/// let mut m = BitMatrix::new();
/// m.reset(2, 100);
/// m.set(1, 99, true);
/// let mut t = BitMatrix::new();
/// m.transpose_into(&mut t);
/// assert_eq!(t.rows(), 100);
/// assert!(t.get(99, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

const WORD_BITS: usize = 64;

impl BitMatrix {
    /// Creates an empty (0×0) matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reshapes to `rows × cols` and zeroes every bit, keeping whatever
    /// backing capacity was already allocated.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.words_per_row = cols.div_ceil(WORD_BITS);
        self.words.clear();
        self.words.resize(rows * self.words_per_row, 0);
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Words backing each row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The packed words of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        let start = r * self.words_per_row;
        &self.words[start..start + self.words_per_row]
    }

    /// Mutable packed words of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u64] {
        let start = r * self.words_per_row;
        &mut self.words[start..start + self.words_per_row]
    }

    /// The bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(c < self.cols, "column {c} out of range ({})", self.cols);
        (self.row(r)[c / WORD_BITS] >> (c % WORD_BITS)) & 1 == 1
    }

    /// Overwrites the bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, bit: bool) {
        assert!(c < self.cols, "column {c} out of range ({})", self.cols);
        let word = &mut self.row_mut(r)[c / WORD_BITS];
        let mask = 1u64 << (c % WORD_BITS);
        if bit {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Writes the transpose of `self` into `out` (reshaped to
    /// `cols × rows`), using a blocked 64×64 word transpose.
    pub fn transpose_into(&self, out: &mut BitMatrix) {
        out.reset(self.cols, self.rows);
        let mut block = [0u64; WORD_BITS];
        for rb in 0..self.rows.div_ceil(WORD_BITS) {
            let r0 = rb * WORD_BITS;
            let live_rows = (self.rows - r0).min(WORD_BITS);
            for cw in 0..self.words_per_row {
                for (i, slot) in block.iter_mut().enumerate() {
                    *slot = if i < live_rows {
                        self.row(r0 + i)[cw]
                    } else {
                        0
                    };
                }
                transpose64(&mut block);
                let c0 = cw * WORD_BITS;
                let live_cols = (self.cols - c0).min(WORD_BITS);
                for (j, &word) in block.iter().enumerate().take(live_cols) {
                    out.row_mut(c0 + j)[rb] = word;
                }
            }
        }
    }
}

/// In-place transpose of a 64×64 bit block (`a[r]` bit `c` ↔ `a[c]` bit
/// `r`, LSB-first), by recursive block swaps (Hacker's Delight §7-3,
/// adapted to LSB-first indexing).
#[inline]
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Reads `n ∈ [1, 64]` bits starting at bit offset `off` of the packed
/// word slice `src` (LSB-first), returned in the low bits.
///
/// # Panics
///
/// Panics (via slice indexing) if the range runs past `src`.
#[inline]
pub fn read_bits(src: &[u64], off: usize, n: usize) -> u64 {
    debug_assert!((1..=WORD_BITS).contains(&n));
    let w = off / WORD_BITS;
    let b = off % WORD_BITS;
    let mut v = src[w] >> b;
    if b != 0 && b + n > WORD_BITS {
        v |= src[w + 1] << (WORD_BITS - b);
    }
    if n < WORD_BITS {
        v &= (1u64 << n) - 1;
    }
    v
}

/// ORs `n ∈ [1, 64]` bits (low bits of `bits`) into `dst` starting at bit
/// offset `off`. The destination range must currently be zero — the
/// matrices this feeds are always freshly [`reset`](BitMatrix::reset).
///
/// # Panics
///
/// Panics (via slice indexing) if the range runs past `dst`.
#[inline]
pub fn write_bits(dst: &mut [u64], off: usize, n: usize, bits: u64) {
    debug_assert!((1..=WORD_BITS).contains(&n));
    debug_assert!(n == WORD_BITS || bits >> n == 0, "stray high bits");
    let w = off / WORD_BITS;
    let b = off % WORD_BITS;
    dst[w] |= bits << b;
    if b + n > WORD_BITS {
        dst[w + 1] |= bits >> (WORD_BITS - b);
    }
}

/// Copies `len` bits from bit offset `src_off` of `src` to bit offset
/// `dst_off` of `dst` (both LSB-first packed). The destination range must
/// currently be zero.
pub fn copy_bits(dst: &mut [u64], dst_off: usize, src: &[u64], src_off: usize, len: usize) {
    let mut done = 0usize;
    while done < len {
        let n = (len - done).min(WORD_BITS);
        let v = read_bits(src, src_off + done, n);
        write_bits(dst, dst_off + done, n, v);
        done += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    fn random_matrix(rng: &mut SplitMix64, rows: usize, cols: usize) -> BitMatrix {
        let mut m = BitMatrix::new();
        m.reset(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, rng.next_below(2) == 1);
            }
        }
        m
    }

    #[test]
    fn set_get_roundtrip_across_words() {
        let mut m = BitMatrix::new();
        m.reset(3, 130);
        m.set(0, 0, true);
        m.set(1, 64, true);
        m.set(2, 129, true);
        assert!(m.get(0, 0) && m.get(1, 64) && m.get(2, 129));
        assert!(!m.get(0, 1) && !m.get(2, 128));
        m.set(2, 129, false);
        assert!(!m.get(2, 129));
    }

    #[test]
    fn reset_zeroes_and_reshapes() {
        let mut m = BitMatrix::new();
        m.reset(2, 70);
        m.set(1, 69, true);
        m.reset(4, 10);
        assert_eq!((m.rows(), m.cols(), m.words_per_row()), (4, 10, 1));
        for r in 0..4 {
            for c in 0..10 {
                assert!(!m.get(r, c), "({r},{c}) must be zero after reset");
            }
        }
    }

    #[test]
    fn transpose64_matches_naive() {
        let mut rng = SplitMix64::new(7);
        let mut a = [0u64; 64];
        for w in a.iter_mut() {
            *w = rng.next_u64();
        }
        let orig = a;
        transpose64(&mut a);
        for r in 0..64 {
            for c in 0..64 {
                assert_eq!(
                    (a[r] >> c) & 1,
                    (orig[c] >> r) & 1,
                    "transpose mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn transpose_into_matches_naive_on_ragged_shapes() {
        let mut rng = SplitMix64::new(42);
        for (rows, cols) in [(1, 1), (5, 200), (64, 64), (130, 3), (67, 129)] {
            let m = random_matrix(&mut rng, rows, cols);
            let mut t = BitMatrix::new();
            m.transpose_into(&mut t);
            assert_eq!((t.rows(), t.cols()), (cols, rows));
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(t.get(c, r), m.get(r, c), "({r},{c})");
                }
            }
        }
    }

    #[test]
    fn double_transpose_is_identity() {
        let mut rng = SplitMix64::new(9);
        let m = random_matrix(&mut rng, 90, 70);
        let (mut t, mut tt) = (BitMatrix::new(), BitMatrix::new());
        m.transpose_into(&mut t);
        t.transpose_into(&mut tt);
        assert_eq!(m, tt);
    }

    #[test]
    fn copy_bits_matches_per_bit_copy() {
        let mut rng = SplitMix64::new(3);
        let src: Vec<u64> = (0..6).map(|_| rng.next_u64()).collect();
        for (src_off, dst_off, len) in [
            (0, 0, 64),
            (3, 61, 130),
            (70, 1, 200),
            (5, 5, 1),
            (63, 127, 65),
        ] {
            let mut dst = vec![0u64; 8];
            copy_bits(&mut dst, dst_off, &src, src_off, len);
            for i in 0..len {
                let want = (src[(src_off + i) / 64] >> ((src_off + i) % 64)) & 1;
                let got = (dst[(dst_off + i) / 64] >> ((dst_off + i) % 64)) & 1;
                assert_eq!(got, want, "bit {i} of copy ({src_off},{dst_off},{len})");
            }
            // Bits outside the destination range stay zero.
            let set: u32 = dst.iter().map(|w| w.count_ones()).sum();
            let expect: u32 = (0..len)
                .map(|i| ((src[(src_off + i) / 64] >> ((src_off + i) % 64)) & 1) as u32)
                .sum();
            assert_eq!(set, expect);
        }
    }

    #[test]
    fn read_bits_handles_straddles() {
        let src = [u64::MAX, 0, 0b1011];
        assert_eq!(read_bits(&src, 0, 64), u64::MAX);
        assert_eq!(read_bits(&src, 60, 8), 0b1111);
        assert_eq!(read_bits(&src, 128, 4), 0b1011);
        assert_eq!(read_bits(&src, 129, 3), 0b101);
    }
}
