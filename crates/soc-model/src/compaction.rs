//! Static test-set compaction: merging compatible test cubes.
//!
//! Two cubes are *compatible* when no position carries conflicting care
//! bits; merging them yields one cube whose care bits are the union. Fewer
//! patterns mean less test time and volume — but merged cubes are denser,
//! which *hurts* downstream test-data compression. That tension
//! (compaction vs. compression) is exactly why the paper's industrial
//! cores keep care-bit densities of 1–5% while the compacted academic sets
//! sit at 44–66%; the `compaction_vs_compression` ablation quantifies it.

use crate::pattern::TestSet;
use crate::trit::{Trit, TritVec};

/// Merges `b` into `a` (union of care bits).
///
/// # Panics
///
/// Panics if the cubes are incompatible or differ in length — check with
/// [`TritVec::is_compatible_with`] first.
pub fn merge_cubes(a: &TritVec, b: &TritVec) -> TritVec {
    assert!(
        a.is_compatible_with(b),
        "cannot merge incompatible or unequal-length cubes"
    );
    let mut out = a.clone();
    for i in 0..b.len() {
        if let Some(bit) = b.get(i).value() {
            out.set(i, Trit::from_bit(bit));
        }
    }
    out
}

/// Outcome of compacting a test set.
#[derive(Debug, Clone, PartialEq)]
pub struct Compacted {
    /// The compacted set.
    pub test_set: TestSet,
    /// For every original pattern, the index of the compacted cube that
    /// covers it.
    pub mapping: Vec<usize>,
}

/// Greedy static compaction: each cube is merged into the first compacted
/// cube it is compatible with, or starts a new one (first-fit, the classic
/// baseline).
///
/// The result covers the original set: every original care bit appears,
/// with the same value, in its mapped compacted cube.
pub fn compact(test_set: &TestSet) -> Compacted {
    let mut cubes: Vec<TritVec> = Vec::new();
    let mut mapping = Vec::with_capacity(test_set.pattern_count());
    for cube in test_set.iter() {
        match cubes.iter().position(|c| c.is_compatible_with(cube)) {
            Some(i) => {
                cubes[i] = merge_cubes(&cubes[i], cube);
                mapping.push(i);
            }
            None => {
                cubes.push(cube.clone());
                mapping.push(cubes.len() - 1);
            }
        }
    }
    let compacted = TestSet::from_patterns(test_set.bits_per_pattern(), cubes)
        .expect("merged cubes keep the original length");
    Compacted {
        test_set: compacted,
        mapping,
    }
}

/// Checks that `compacted` covers `original` under `mapping`: every care
/// bit of every original cube appears identically in its mapped cube.
pub fn covers(original: &TestSet, compacted: &Compacted) -> bool {
    if compacted.mapping.len() != original.pattern_count() {
        return false;
    }
    original.iter().zip(&compacted.mapping).all(|(cube, &mi)| {
        let Some(merged) = compacted.test_set.pattern(mi) else {
            return false;
        };
        (0..cube.len()).all(|i| match cube.get(i).value() {
            Some(bit) => merged.get(i).value() == Some(bit),
            None => true,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CubeSynthesis;
    use crate::Core;

    fn tv(s: &str) -> TritVec {
        s.parse().unwrap()
    }

    #[test]
    fn merge_unions_care_bits() {
        let m = merge_cubes(&tv("1XX0"), &tv("X1X0"));
        assert_eq!(m.to_string(), "11X0");
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merge_rejects_conflicts() {
        merge_cubes(&tv("1X"), &tv("0X"));
    }

    #[test]
    fn compacts_compatible_cubes() {
        let ts = TestSet::from_patterns(4, vec![tv("1XXX"), tv("X1XX"), tv("0XXX"), tv("XX1X")])
            .unwrap();
        let c = compact(&ts);
        // 1XXX + X1XX + XX1X merge; 0XXX conflicts with the first.
        assert_eq!(c.test_set.pattern_count(), 2);
        assert_eq!(c.mapping, vec![0, 0, 1, 0]);
        assert!(covers(&ts, &c));
    }

    #[test]
    fn incompatible_set_stays_put() {
        let ts = TestSet::from_patterns(2, vec![tv("10"), tv("01"), tv("11")]).unwrap();
        let c = compact(&ts);
        assert_eq!(c.test_set.pattern_count(), 3);
        assert!(covers(&ts, &c));
    }

    #[test]
    fn sparse_sets_compact_dramatically_and_density_rises() {
        let core = Core::builder("c")
            .inputs(400)
            .pattern_count(60)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(0.02).synthesize(&core, 9);
        let c = compact(&ts);
        assert!(
            c.test_set.pattern_count() * 2 < ts.pattern_count(),
            "{} -> {}",
            ts.pattern_count(),
            c.test_set.pattern_count()
        );
        assert!(covers(&ts, &c));
        // The compaction-vs-compression tension: density goes up.
        assert!(c.test_set.care_density() > 2.0 * ts.care_density());
    }

    #[test]
    fn dense_sets_barely_compact() {
        let core = Core::builder("d")
            .inputs(200)
            .pattern_count(40)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(0.7).synthesize(&core, 9);
        let c = compact(&ts);
        assert!(c.test_set.pattern_count() as f64 > 0.8 * ts.pattern_count() as f64);
    }

    #[test]
    fn total_care_bits_are_preserved_or_shared() {
        let core = Core::builder("e")
            .inputs(300)
            .pattern_count(30)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(0.05).synthesize(&core, 4);
        let c = compact(&ts);
        // Merging can only share identical care bits, never lose them.
        assert!(c.test_set.total_care_bits() <= ts.total_care_bits());
        assert!(covers(&ts, &c));
    }

    #[test]
    fn covers_detects_corruption() {
        let ts = TestSet::from_patterns(2, vec![tv("1X"), tv("X1")]).unwrap();
        let mut c = compact(&ts);
        // Corrupt the merged cube.
        let bad = TestSet::from_patterns(2, vec![tv("0X")]).unwrap();
        c.test_set = bad;
        assert!(!covers(&ts, &c));
    }
}
