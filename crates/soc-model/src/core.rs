//! Embedded cores: scan structure, terminals, and test parameters.

use std::fmt;

use crate::pattern::TestSet;

/// The internal scan structure of a core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanArchitecture {
    /// A purely combinational core: no internal scan cells.
    Combinational,
    /// A hard core with fixed, non-restitchable internal scan chains (one
    /// entry per chain, holding its cell count).
    Fixed {
        /// Length of each internal scan chain, in scan cells.
        chain_lengths: Vec<u32>,
    },
    /// A soft core whose scan cells can be re-stitched into any number of
    /// chains up to `max_chains` (typical for cores delivered as RTL, and
    /// the normal situation when an on-chip decompressor drives many short
    /// chains).
    Flexible {
        /// Total number of scan cells.
        cells: u32,
        /// Upper bound on the number of chains the stitching flow supports.
        max_chains: u32,
    },
}

impl ScanArchitecture {
    /// Total number of internal scan cells.
    pub fn total_cells(&self) -> u64 {
        match self {
            ScanArchitecture::Combinational => 0,
            ScanArchitecture::Fixed { chain_lengths } => {
                chain_lengths.iter().map(|&l| u64::from(l)).sum()
            }
            ScanArchitecture::Flexible { cells, .. } => u64::from(*cells),
        }
    }

    /// Returns `true` when the core has no scan cells.
    pub fn is_combinational(&self) -> bool {
        self.total_cells() == 0
    }
}

/// One embedded core of an SOC, as seen by the test planner.
///
/// A core is described by its functional terminals (inputs, outputs,
/// bidirectionals), its internal scan structure, and its test set: either
/// explicit cubes or just a pattern count plus a care-bit density from which
/// cubes can be synthesized.
///
/// # Examples
///
/// ```
/// use soc_model::{Core, ScanArchitecture};
///
/// let core = Core::builder("s838")
///     .inputs(34)
///     .outputs(1)
///     .scan(ScanArchitecture::Fixed { chain_lengths: vec![32] })
///     .pattern_count(75)
///     .care_density(0.6)
///     .build()?;
/// assert_eq!(core.scan_load_bits(), 34 + 32);
/// assert_eq!(core.initial_volume_bits(), 75 * 66);
/// # Ok::<(), soc_model::BuildCoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Core {
    name: String,
    inputs: u32,
    outputs: u32,
    bidirs: u32,
    scan: ScanArchitecture,
    pattern_count: u32,
    care_density: f64,
    test_set: Option<TestSet>,
}

impl Core {
    /// Starts building a core with the given name.
    pub fn builder(name: impl Into<String>) -> CoreBuilder {
        CoreBuilder {
            name: name.into(),
            inputs: 0,
            outputs: 0,
            bidirs: 0,
            scan: ScanArchitecture::Combinational,
            pattern_count: 0,
            care_density: 1.0,
            test_set: None,
        }
    }

    /// The core's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of functional inputs.
    pub fn inputs(&self) -> u32 {
        self.inputs
    }

    /// Number of functional outputs.
    pub fn outputs(&self) -> u32 {
        self.outputs
    }

    /// Number of bidirectional terminals.
    pub fn bidirs(&self) -> u32 {
        self.bidirs
    }

    /// The internal scan structure.
    pub fn scan(&self) -> &ScanArchitecture {
        &self.scan
    }

    /// Number of test patterns.
    pub fn pattern_count(&self) -> u32 {
        self.pattern_count
    }

    /// Care-bit density used when synthesizing cubes (actual density when an
    /// explicit test set is attached).
    pub fn care_density(&self) -> f64 {
        match &self.test_set {
            Some(ts) => ts.care_density(),
            None => self.care_density,
        }
    }

    /// The nominal care-bit density requested for cube synthesis, regardless
    /// of whether an explicit test set is attached.
    pub fn nominal_care_density(&self) -> f64 {
        self.care_density
    }

    /// Explicit test cubes, when attached.
    pub fn test_set(&self) -> Option<&TestSet> {
        self.test_set.as_ref()
    }

    /// Attaches explicit test cubes.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCoreError::TestSetShape`] when the set's cube length
    /// differs from [`scan_load_bits`](Self::scan_load_bits) or its pattern
    /// count differs from [`pattern_count`](Self::pattern_count).
    pub fn attach_test_set(&mut self, test_set: TestSet) -> Result<(), BuildCoreError> {
        if test_set.bits_per_pattern() as u64 != self.scan_load_bits()
            || test_set.pattern_count() as u32 != self.pattern_count
        {
            return Err(BuildCoreError::TestSetShape {
                core: self.name.clone(),
                expected_bits: self.scan_load_bits(),
                found_bits: test_set.bits_per_pattern() as u64,
                expected_patterns: self.pattern_count,
                found_patterns: test_set.pattern_count() as u32,
            });
        }
        self.test_set = Some(test_set);
        Ok(())
    }

    /// Total internal scan cells.
    pub fn scan_cells(&self) -> u64 {
        self.scan.total_cells()
    }

    /// Number of scanned stimulus positions per pattern: internal scan cells
    /// plus wrapper input cells (one per functional input and bidirectional).
    pub fn scan_load_bits(&self) -> u64 {
        self.scan_cells() + u64::from(self.inputs) + u64::from(self.bidirs)
    }

    /// Number of scanned response positions per pattern: internal scan cells
    /// plus wrapper output cells (one per functional output and
    /// bidirectional).
    pub fn scan_unload_bits(&self) -> u64 {
        self.scan_cells() + u64::from(self.outputs) + u64::from(self.bidirs)
    }

    /// Uncompressed stimulus volume in bits (`pattern_count ×
    /// scan_load_bits`). Following the paper, only stimuli are planned;
    /// response handling is out of scope.
    pub fn initial_volume_bits(&self) -> u64 {
        u64::from(self.pattern_count) * self.scan_load_bits()
    }

    /// Returns a copy of this core keeping only the first `keep` test
    /// patterns (and the matching prefix of any attached test set). With
    /// `keep >= pattern_count` the copy is identical.
    ///
    /// # Panics
    ///
    /// Panics if `keep == 0` — a core cannot have zero patterns.
    pub fn with_truncated_patterns(&self, keep: u32) -> Core {
        assert!(keep > 0, "cannot truncate to zero patterns");
        let keep = keep.min(self.pattern_count);
        let mut core = self.clone();
        core.pattern_count = keep;
        core.test_set = self.test_set.as_ref().map(|ts| ts.truncated(keep as usize));
        core
    }

    /// The largest number of wrapper chains that can carry stimulus for this
    /// core: fixed scan chains are atomic, while flexible cells can each
    /// start a chain (up to the stitching limit); wrapper input cells can
    /// always form chains of their own.
    pub fn max_wrapper_chains(&self) -> u32 {
        let io = self.inputs + self.bidirs;
        let scan_units = match &self.scan {
            ScanArchitecture::Combinational => 0,
            ScanArchitecture::Fixed { chain_lengths } => chain_lengths.len() as u32,
            ScanArchitecture::Flexible { cells, max_chains } => (*max_chains).min(*cells),
        };
        (scan_units + io).max(1)
    }
}

impl fmt::Display for Core {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} in, {} out, {} scan cells, {} patterns)",
            self.name,
            self.inputs,
            self.outputs,
            self.scan_cells(),
            self.pattern_count
        )
    }
}

/// Builder for [`Core`], created by [`Core::builder`].
#[derive(Debug, Clone)]
pub struct CoreBuilder {
    name: String,
    inputs: u32,
    outputs: u32,
    bidirs: u32,
    scan: ScanArchitecture,
    pattern_count: u32,
    care_density: f64,
    test_set: Option<TestSet>,
}

impl CoreBuilder {
    /// Sets the number of functional inputs.
    pub fn inputs(mut self, n: u32) -> Self {
        self.inputs = n;
        self
    }

    /// Sets the number of functional outputs.
    pub fn outputs(mut self, n: u32) -> Self {
        self.outputs = n;
        self
    }

    /// Sets the number of bidirectional terminals.
    pub fn bidirs(mut self, n: u32) -> Self {
        self.bidirs = n;
        self
    }

    /// Sets the internal scan structure.
    pub fn scan(mut self, scan: ScanArchitecture) -> Self {
        self.scan = scan;
        self
    }

    /// Convenience: fixed scan chains with the given lengths.
    pub fn fixed_chains(self, lengths: impl Into<Vec<u32>>) -> Self {
        self.scan(ScanArchitecture::Fixed {
            chain_lengths: lengths.into(),
        })
    }

    /// Convenience: `cells` flexible scan cells stitchable into at most
    /// `max_chains` chains.
    pub fn flexible_cells(self, cells: u32, max_chains: u32) -> Self {
        self.scan(ScanArchitecture::Flexible { cells, max_chains })
    }

    /// Sets the number of test patterns.
    pub fn pattern_count(mut self, n: u32) -> Self {
        self.pattern_count = n;
        self
    }

    /// Sets the care-bit density used when cubes are synthesized.
    pub fn care_density(mut self, d: f64) -> Self {
        self.care_density = d;
        self
    }

    /// Attaches explicit test cubes (validated at [`build`](Self::build)).
    pub fn test_set(mut self, ts: TestSet) -> Self {
        self.test_set = Some(ts);
        self
    }

    /// Finalizes the core.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildCoreError`] when the description is inconsistent:
    /// no terminals and no scan cells, a zero pattern count, a care density
    /// outside `[0, 1]`, a fixed chain of length zero, a flexible
    /// architecture allowing zero chains, or a test set whose shape does not
    /// match the core.
    pub fn build(self) -> Result<Core, BuildCoreError> {
        if self.pattern_count == 0 {
            return Err(BuildCoreError::NoPatterns { core: self.name });
        }
        if !(0.0..=1.0).contains(&self.care_density) {
            return Err(BuildCoreError::BadCareDensity {
                core: self.name,
                density: self.care_density,
            });
        }
        match &self.scan {
            ScanArchitecture::Fixed { chain_lengths } => {
                if chain_lengths.contains(&0) {
                    return Err(BuildCoreError::EmptyScanChain { core: self.name });
                }
            }
            ScanArchitecture::Flexible { cells, max_chains } => {
                if *cells > 0 && *max_chains == 0 {
                    return Err(BuildCoreError::NoChainsAllowed { core: self.name });
                }
            }
            ScanArchitecture::Combinational => {}
        }
        let mut core = Core {
            name: self.name,
            inputs: self.inputs,
            outputs: self.outputs,
            bidirs: self.bidirs,
            scan: self.scan,
            pattern_count: self.pattern_count,
            care_density: self.care_density,
            test_set: None,
        };
        if core.scan_load_bits() == 0 {
            return Err(BuildCoreError::NoStimulus { core: core.name });
        }
        if let Some(ts) = self.test_set {
            core.attach_test_set(ts)?;
        }
        Ok(core)
    }
}

/// Error produced when a [`Core`] description is inconsistent.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BuildCoreError {
    /// The core declares zero test patterns.
    NoPatterns {
        /// Offending core name.
        core: String,
    },
    /// The care density is outside `[0, 1]`.
    BadCareDensity {
        /// Offending core name.
        core: String,
        /// The rejected value.
        density: f64,
    },
    /// A fixed scan chain has length zero.
    EmptyScanChain {
        /// Offending core name.
        core: String,
    },
    /// A flexible architecture with cells but `max_chains == 0`.
    NoChainsAllowed {
        /// Offending core name.
        core: String,
    },
    /// The core has neither inputs, bidirs, nor scan cells to load.
    NoStimulus {
        /// Offending core name.
        core: String,
    },
    /// The attached test set does not match the core's shape.
    TestSetShape {
        /// Offending core name.
        core: String,
        /// Cube length the core requires.
        expected_bits: u64,
        /// Cube length found in the set.
        found_bits: u64,
        /// Declared pattern count.
        expected_patterns: u32,
        /// Pattern count found in the set.
        found_patterns: u32,
    },
}

impl fmt::Display for BuildCoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCoreError::NoPatterns { core } => {
                write!(f, "core {core:?} declares zero test patterns")
            }
            BuildCoreError::BadCareDensity { core, density } => {
                write!(f, "core {core:?} care density {density} is outside [0, 1]")
            }
            BuildCoreError::EmptyScanChain { core } => {
                write!(f, "core {core:?} has a fixed scan chain of length zero")
            }
            BuildCoreError::NoChainsAllowed { core } => {
                write!(f, "core {core:?} has scan cells but allows zero chains")
            }
            BuildCoreError::NoStimulus { core } => {
                write!(f, "core {core:?} has no stimulus positions to load")
            }
            BuildCoreError::TestSetShape {
                core,
                expected_bits,
                found_bits,
                expected_patterns,
                found_patterns,
            } => write!(
                f,
                "test set for core {core:?} has shape {found_patterns}×{found_bits} \
                 but the core requires {expected_patterns}×{expected_bits}"
            ),
        }
    }
}

impl std::error::Error for BuildCoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::TestSet;
    use crate::trit::TritVec;

    fn simple_core() -> Core {
        Core::builder("c1")
            .inputs(4)
            .outputs(2)
            .fixed_chains(vec![8, 8])
            .pattern_count(10)
            .build()
            .unwrap()
    }

    #[test]
    fn derived_quantities() {
        let c = simple_core();
        assert_eq!(c.scan_cells(), 16);
        assert_eq!(c.scan_load_bits(), 20);
        assert_eq!(c.scan_unload_bits(), 18);
        assert_eq!(c.initial_volume_bits(), 200);
        assert_eq!(c.max_wrapper_chains(), 6);
    }

    #[test]
    fn bidirs_count_on_both_sides() {
        let c = Core::builder("b")
            .inputs(3)
            .outputs(2)
            .bidirs(5)
            .fixed_chains(vec![10])
            .pattern_count(1)
            .build()
            .unwrap();
        assert_eq!(c.scan_load_bits(), 10 + 3 + 5);
        assert_eq!(c.scan_unload_bits(), 10 + 2 + 5);
    }

    #[test]
    fn combinational_core() {
        let c = Core::builder("c6288")
            .inputs(32)
            .outputs(32)
            .pattern_count(12)
            .build()
            .unwrap();
        assert!(c.scan().is_combinational());
        assert_eq!(c.scan_load_bits(), 32);
        assert_eq!(c.max_wrapper_chains(), 32);
    }

    #[test]
    fn flexible_core_chain_bound() {
        let c = Core::builder("soft")
            .flexible_cells(1000, 64)
            .inputs(10)
            .pattern_count(5)
            .build()
            .unwrap();
        assert_eq!(c.max_wrapper_chains(), 74);
        let tiny = Core::builder("tiny")
            .flexible_cells(3, 64)
            .pattern_count(5)
            .build()
            .unwrap();
        assert_eq!(tiny.max_wrapper_chains(), 3);
    }

    #[test]
    fn build_validation() {
        assert!(matches!(
            Core::builder("p").inputs(1).build(),
            Err(BuildCoreError::NoPatterns { .. })
        ));
        assert!(matches!(
            Core::builder("d")
                .inputs(1)
                .pattern_count(1)
                .care_density(1.5)
                .build(),
            Err(BuildCoreError::BadCareDensity { .. })
        ));
        assert!(matches!(
            Core::builder("e")
                .fixed_chains(vec![0])
                .pattern_count(1)
                .build(),
            Err(BuildCoreError::EmptyScanChain { .. })
        ));
        assert!(matches!(
            Core::builder("f")
                .flexible_cells(10, 0)
                .pattern_count(1)
                .build(),
            Err(BuildCoreError::NoChainsAllowed { .. })
        ));
        assert!(matches!(
            Core::builder("g").outputs(3).pattern_count(1).build(),
            Err(BuildCoreError::NoStimulus { .. })
        ));
    }

    #[test]
    fn test_set_shape_checked() {
        let mut c = Core::builder("h")
            .inputs(2)
            .pattern_count(2)
            .build()
            .unwrap();
        let good =
            TestSet::from_patterns(2, vec!["01".parse().unwrap(), "1X".parse().unwrap()]).unwrap();
        c.attach_test_set(good).unwrap();
        assert!(c.test_set().is_some());

        let bad_len = TestSet::from_patterns(3, vec!["011".parse::<TritVec>().unwrap()]).unwrap();
        assert!(matches!(
            c.attach_test_set(bad_len),
            Err(BuildCoreError::TestSetShape { .. })
        ));
    }

    #[test]
    fn care_density_prefers_attached_set() {
        let mut c = Core::builder("i")
            .inputs(4)
            .pattern_count(1)
            .care_density(0.25)
            .build()
            .unwrap();
        assert_eq!(c.care_density(), 0.25);
        c.attach_test_set(TestSet::from_patterns(4, vec!["0011".parse().unwrap()]).unwrap())
            .unwrap();
        assert_eq!(c.care_density(), 1.0);
        assert_eq!(c.nominal_care_density(), 0.25);
    }

    #[test]
    fn display_is_informative() {
        let c = simple_core();
        let s = c.to_string();
        assert!(s.contains("c1"));
        assert!(s.contains("16 scan cells"));
    }
}
