//! Textual SOC description format (reader and writer).
//!
//! A compact, line-oriented format in the spirit of the ITC'02 SOC test
//! benchmark files. Example:
//!
//! ```text
//! # d695-like fragment
//! soc demo
//! core c6288 inputs 32 outputs 32 patterns 12 density 0.6
//! core s838 inputs 34 outputs 1 patterns 75 density 0.6 scan 32
//! flexcore ckt-1 inputs 109 outputs 32 patterns 210 density 0.03 cells 12104 maxchains 512
//! ```
//!
//! * `soc <name>` — must appear once, before any core.
//! * `core <name> …` — a hard core; the optional trailing
//!   `scan <len> <len> …` lists its fixed scan-chain lengths.
//! * `flexcore <name> …` — a soft core with `cells <n>` re-stitchable scan
//!   cells and `maxchains <n>`.
//! * `#` starts a comment; blank lines are ignored.
//!
//! Test cubes are not stored in this format; they are synthesized from the
//! per-core `density` (see [`crate::generator`]) or attached by the caller.

use std::fmt;

use crate::core::{BuildCoreError, Core, CoreBuilder};
use crate::soc::Soc;

/// Parses an SOC description from text.
///
/// # Errors
///
/// Returns [`ParseSocError`] describing the offending line when the text is
/// malformed or a core description is inconsistent.
///
/// # Examples
///
/// ```
/// use soc_model::format::parse_soc;
///
/// let soc = parse_soc("soc s\ncore a inputs 4 outputs 2 patterns 7 scan 8 8\n")?;
/// assert_eq!(soc.core_count(), 1);
/// assert_eq!(soc.cores()[0].scan_cells(), 16);
/// # Ok::<(), soc_model::format::ParseSocError>(())
/// ```
pub fn parse_soc(text: &str) -> Result<Soc, ParseSocError> {
    let mut name: Option<String> = None;
    let mut cores = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("non-empty line has a token");
        match keyword {
            "soc" => {
                let n = tokens
                    .next()
                    .ok_or_else(|| err(lineno, ErrorKind::MissingName))?;
                if name.is_some() {
                    return Err(err(lineno, ErrorKind::DuplicateSoc));
                }
                name = Some(n.to_string());
            }
            "core" | "flexcore" => {
                if name.is_none() {
                    return Err(err(lineno, ErrorKind::CoreBeforeSoc));
                }
                cores.push(parse_core(keyword == "flexcore", tokens, lineno)?);
            }
            other => {
                return Err(err(lineno, ErrorKind::UnknownKeyword(other.to_string())));
            }
        }
    }
    let name = name.ok_or_else(|| err(0, ErrorKind::MissingSocLine))?;
    Ok(Soc::new(name, cores))
}

fn parse_core<'a>(
    flexible: bool,
    mut tokens: impl Iterator<Item = &'a str>,
    lineno: usize,
) -> Result<Core, ParseSocError> {
    let name = tokens
        .next()
        .ok_or_else(|| err(lineno, ErrorKind::MissingName))?;
    let mut builder = Core::builder(name);
    let mut cells: Option<u32> = None;
    let mut max_chains: Option<u32> = None;
    while let Some(key) = tokens.next() {
        if key == "scan" {
            if flexible {
                return Err(err(lineno, ErrorKind::ScanOnFlexcore));
            }
            let mut lengths = Vec::new();
            for t in tokens.by_ref() {
                lengths.push(parse_num::<u32>(t, lineno)?);
            }
            if lengths.is_empty() {
                return Err(err(lineno, ErrorKind::EmptyScanList));
            }
            builder = builder.fixed_chains(lengths);
            break; // `scan` consumes the rest of the line
        }
        let value = tokens
            .next()
            .ok_or_else(|| err(lineno, ErrorKind::MissingValue(key.to_string())))?;
        builder = apply_field(builder, key, value, lineno, &mut cells, &mut max_chains)?;
    }
    if flexible {
        let cells = cells.ok_or_else(|| err(lineno, ErrorKind::MissingField("cells")))?;
        let max_chains =
            max_chains.ok_or_else(|| err(lineno, ErrorKind::MissingField("maxchains")))?;
        builder = builder.flexible_cells(cells, max_chains);
    } else if cells.is_some() || max_chains.is_some() {
        return Err(err(lineno, ErrorKind::CellsOnHardCore));
    }
    builder
        .build()
        .map_err(|e| err(lineno, ErrorKind::InvalidCore(e)))
}

fn apply_field(
    builder: CoreBuilder,
    key: &str,
    value: &str,
    lineno: usize,
    cells: &mut Option<u32>,
    max_chains: &mut Option<u32>,
) -> Result<CoreBuilder, ParseSocError> {
    Ok(match key {
        "inputs" => builder.inputs(parse_num(value, lineno)?),
        "outputs" => builder.outputs(parse_num(value, lineno)?),
        "bidirs" => builder.bidirs(parse_num(value, lineno)?),
        "patterns" => builder.pattern_count(parse_num(value, lineno)?),
        "density" => builder.care_density(
            value
                .parse::<f64>()
                .map_err(|_| err(lineno, ErrorKind::BadNumber(value.to_string())))?,
        ),
        "cells" => {
            *cells = Some(parse_num(value, lineno)?);
            builder
        }
        "maxchains" => {
            *max_chains = Some(parse_num(value, lineno)?);
            builder
        }
        other => {
            return Err(err(lineno, ErrorKind::UnknownField(other.to_string())));
        }
    })
}

fn parse_num<T: std::str::FromStr>(s: &str, lineno: usize) -> Result<T, ParseSocError> {
    s.parse()
        .map_err(|_| err(lineno, ErrorKind::BadNumber(s.to_string())))
}

fn err(lineno: usize, kind: ErrorKind) -> ParseSocError {
    ParseSocError {
        line: lineno + 1,
        kind,
    }
}

/// Serializes an SOC back to the textual format accepted by [`parse_soc`].
///
/// Attached test cubes are not serialized; the per-core nominal care density
/// is, so a parse → write → parse roundtrip preserves the design.
///
/// # Examples
///
/// ```
/// use soc_model::format::{parse_soc, write_soc};
///
/// let text = "soc s\ncore a inputs 4 outputs 2 patterns 7 scan 8 8\n";
/// let soc = parse_soc(text)?;
/// let rewritten = write_soc(&soc);
/// assert_eq!(parse_soc(&rewritten)?, soc);
/// # Ok::<(), soc_model::format::ParseSocError>(())
/// ```
pub fn write_soc(soc: &Soc) -> String {
    use crate::core::ScanArchitecture;
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(out, "soc {}", soc.name());
    for core in soc.cores() {
        let kind = match core.scan() {
            ScanArchitecture::Flexible { .. } => "flexcore",
            _ => "core",
        };
        let _ = write!(
            out,
            "{kind} {} inputs {} outputs {}",
            core.name(),
            core.inputs(),
            core.outputs()
        );
        if core.bidirs() > 0 {
            let _ = write!(out, " bidirs {}", core.bidirs());
        }
        let _ = write!(out, " patterns {}", core.pattern_count());
        let _ = write!(out, " density {}", core.nominal_care_density());
        match core.scan() {
            ScanArchitecture::Combinational => {}
            ScanArchitecture::Flexible { cells, max_chains } => {
                let _ = write!(out, " cells {cells} maxchains {max_chains}");
            }
            ScanArchitecture::Fixed { chain_lengths } => {
                let _ = write!(out, " scan");
                for l in chain_lengths {
                    let _ = write!(out, " {l}");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Error produced by [`parse_soc`], carrying the 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseSocError {
    line: usize,
    kind: ErrorKind,
}

impl ParseSocError {
    /// 1-based line number of the offending line.
    pub fn line(&self) -> usize {
        self.line
    }
}

#[derive(Debug, Clone, PartialEq)]
enum ErrorKind {
    MissingSocLine,
    DuplicateSoc,
    CoreBeforeSoc,
    MissingName,
    MissingValue(String),
    MissingField(&'static str),
    UnknownKeyword(String),
    UnknownField(String),
    BadNumber(String),
    EmptyScanList,
    ScanOnFlexcore,
    CellsOnHardCore,
    InvalidCore(BuildCoreError),
}

impl fmt::Display for ParseSocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ErrorKind::MissingSocLine => write!(f, "no `soc <name>` line found"),
            ErrorKind::DuplicateSoc => write!(f, "duplicate `soc` line"),
            ErrorKind::CoreBeforeSoc => {
                write!(f, "core declared before the `soc` line")
            }
            ErrorKind::MissingName => write!(f, "missing name"),
            ErrorKind::MissingValue(k) => write!(f, "field `{k}` has no value"),
            ErrorKind::MissingField(k) => {
                write!(f, "flexcore requires the `{k}` field")
            }
            ErrorKind::UnknownKeyword(k) => write!(f, "unknown keyword `{k}`"),
            ErrorKind::UnknownField(k) => write!(f, "unknown field `{k}`"),
            ErrorKind::BadNumber(s) => write!(f, "invalid number `{s}`"),
            ErrorKind::EmptyScanList => write!(f, "`scan` lists no chain lengths"),
            ErrorKind::ScanOnFlexcore => {
                write!(f, "`scan` is not valid on a flexcore")
            }
            ErrorKind::CellsOnHardCore => {
                write!(f, "`cells`/`maxchains` are only valid on a flexcore")
            }
            ErrorKind::InvalidCore(e) => write!(f, "invalid core: {e}"),
        }
    }
}

impl std::error::Error for ParseSocError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::ScanArchitecture;

    #[test]
    fn parses_minimal_soc() {
        let soc = parse_soc("soc mini\ncore a inputs 3 outputs 1 patterns 2\n").unwrap();
        assert_eq!(soc.name(), "mini");
        assert_eq!(soc.core_count(), 1);
        assert!(soc.cores()[0].scan().is_combinational());
    }

    #[test]
    fn parses_comments_and_blanks() {
        let text = "\n# header\nsoc s # trailing\n\ncore a inputs 1 patterns 1 # note\n";
        assert_eq!(parse_soc(text).unwrap().core_count(), 1);
    }

    #[test]
    fn parses_fixed_scan_chains() {
        let soc = parse_soc("soc s\ncore a inputs 2 patterns 1 scan 10 20 30\n").unwrap();
        match soc.cores()[0].scan() {
            ScanArchitecture::Fixed { chain_lengths } => {
                assert_eq!(chain_lengths, &vec![10, 20, 30]);
            }
            other => panic!("unexpected scan architecture {other:?}"),
        }
    }

    #[test]
    fn parses_flexcore() {
        let soc = parse_soc(
            "soc s\nflexcore f inputs 9 outputs 9 patterns 5 density 0.02 cells 1000 maxchains 64\n",
        )
        .unwrap();
        let c = &soc.cores()[0];
        assert_eq!(c.scan_cells(), 1000);
        assert_eq!(c.nominal_care_density(), 0.02);
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse_soc("soc s\nbogus x\n").unwrap_err();
        assert_eq!(e.line(), 2);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn rejects_structural_errors() {
        assert!(parse_soc("core a inputs 1 patterns 1\n").is_err());
        assert!(parse_soc("soc a\nsoc b\n").is_err());
        assert!(parse_soc("soc a\ncore x inputs 1 patterns 1 scan\n").is_err());
        assert!(parse_soc("soc a\ncore x inputs 1 patterns 1 cells 5\n").is_err());
        assert!(parse_soc("soc a\nflexcore x inputs 1 patterns 1 cells 5\n").is_err());
        assert!(parse_soc("soc a\ncore x inputs nope patterns 1\n").is_err());
        assert!(parse_soc("soc a\ncore x inputs 1 patterns\n").is_err());
        assert!(parse_soc("soc a\ncore x inputs 1 patterns 0\n").is_err());
        assert!(parse_soc("").is_err());
    }

    #[test]
    fn roundtrip_preserves_design() {
        let text = "soc rt\n\
                    core a inputs 3 outputs 1 bidirs 2 patterns 2 density 0.5 scan 7 9\n\
                    core b inputs 1 outputs 1 patterns 4 density 0.6\n\
                    flexcore f inputs 2 outputs 2 patterns 3 density 0.03 cells 500 maxchains 32\n";
        let soc = parse_soc(text).unwrap();
        let soc2 = parse_soc(&write_soc(&soc)).unwrap();
        assert_eq!(soc, soc2);
    }
}
