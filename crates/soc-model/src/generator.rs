//! Synthetic test-cube generation.
//!
//! Industrial test cubes are proprietary, so the benchmark designs ship
//! with a seeded generator that reproduces their published *statistics*:
//! care-bit density (1–5% for modern industrial cores, ~44–66% for the
//! ISCAS'89-based academic benchmarks), clustering of care bits in
//! consecutive scan cells, and the tendency of late (top-off) patterns to be
//! sparser than early ones. The selective-encoding cost surface — and hence
//! every experiment in this repository — depends only on these statistics.

use crate::core::Core;
use crate::pattern::TestSet;
use crate::rng::SplitMix64;
use crate::soc::Soc;
use crate::trit::{Trit, TritVec};

/// Configuration for synthesizing test cubes with controlled statistics.
///
/// # Examples
///
/// ```
/// use soc_model::{Core, CubeSynthesis};
///
/// let core = Core::builder("c").inputs(64).pattern_count(20).build()?;
/// let cubes = CubeSynthesis::new(0.3).synthesize(&core, 1);
/// assert_eq!(cubes.pattern_count(), 20);
/// let d = cubes.care_density();
/// assert!(d > 0.15 && d < 0.45, "density {d}");
/// # Ok::<(), soc_model::BuildCoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CubeSynthesis {
    care_density: f64,
    density_decay: f64,
    one_fraction: f64,
    cluster: usize,
}

impl CubeSynthesis {
    /// Creates a generator targeting the given overall care-bit density,
    /// with no decay, unbiased values, and care-bit runs of expected
    /// length 2 (mild clustering, typical of ATPG cubes).
    ///
    /// # Panics
    ///
    /// Panics if `care_density` is outside `[0, 1]`.
    pub fn new(care_density: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&care_density),
            "care density {care_density} outside [0, 1]"
        );
        CubeSynthesis {
            care_density,
            density_decay: 1.0,
            one_fraction: 0.5,
            cluster: 2,
        }
    }

    /// Sets a per-pattern multiplicative density decay: pattern `i` gets
    /// density `care_density · decay^i` (clamped below by `care_density/10`),
    /// modelling ATPG top-off patterns that target few remaining faults.
    ///
    /// # Panics
    ///
    /// Panics if `decay` is not in `(0, 1]`.
    pub fn density_decay(mut self, decay: f64) -> Self {
        assert!(decay > 0.0 && decay <= 1.0, "decay {decay} outside (0, 1]");
        self.density_decay = decay;
        self
    }

    /// Sets the fraction of care bits that carry value 1 (default 0.5).
    ///
    /// # Panics
    ///
    /// Panics if `f` is outside `[0, 1]`.
    pub fn one_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "one fraction {f} outside [0, 1]");
        self.one_fraction = f;
        self
    }

    /// Sets the expected run length of consecutive care bits (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `cluster == 0`.
    pub fn cluster(mut self, cluster: usize) -> Self {
        assert!(cluster > 0, "cluster must be at least 1");
        self.cluster = cluster;
        self
    }

    /// Synthesizes a test set matching `core`'s shape
    /// (`pattern_count × scan_load_bits`), deterministically from `seed`.
    pub fn synthesize(&self, core: &Core, seed: u64) -> TestSet {
        let bits = core.scan_load_bits() as usize;
        let mut set = TestSet::new(bits);
        let mut master = SplitMix64::new(seed ^ hash_name(core.name()));
        let mut density = self.care_density;
        for _ in 0..core.pattern_count() {
            let mut rng = master.fork();
            set.push(self.one_cube(bits, density, &mut rng))
                .expect("generated cube has the configured length");
            density = (density * self.density_decay).max(self.care_density / 10.0);
        }
        set
    }

    fn one_cube(&self, bits: usize, density: f64, rng: &mut SplitMix64) -> TritVec {
        let mut cube = TritVec::all_x(bits);
        // Care bits arrive in geometric runs of expected length `cluster`.
        // With continue probability c = 1 − 1/cluster and (re)start
        // probability q, the stationary care fraction is
        // q·cluster / (q·cluster + 1 − q); solving for the target density d
        // gives q = d / (cluster·(1 − d) + d).
        let density = density.clamp(0.0, 1.0);
        let continue_p = 1.0 - 1.0 / self.cluster as f64;
        let q = if density >= 1.0 {
            1.0
        } else {
            density / (self.cluster as f64 * (1.0 - density) + density)
        };
        let mut in_run = false;
        for i in 0..bits {
            if in_run {
                in_run = rng.next_bool(continue_p);
            }
            if !in_run {
                in_run = rng.next_bool(q);
            }
            if in_run {
                cube.set(i, Trit::from_bit(rng.next_bool(self.one_fraction)));
            }
        }
        cube
    }
}

/// Deterministic FNV-1a hash of a core name, used to decorrelate per-core
/// streams drawn from one SOC-level seed.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Attaches synthesized cubes to every core of `soc` that does not already
/// carry an explicit test set, using each core's nominal care density.
///
/// The same `(soc, seed)` pair always produces the same cubes.
pub fn synthesize_missing_test_sets(soc: &mut Soc, seed: u64) {
    for core in soc.cores_mut() {
        if core.test_set().is_none() {
            let cubes = CubeSynthesis::new(core.nominal_care_density()).synthesize(core, seed);
            core.attach_test_set(cubes)
                .expect("synthesized cubes match the core shape");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(bits: u32, patterns: u32) -> Core {
        Core::builder("g")
            .inputs(bits)
            .pattern_count(patterns)
            .build()
            .unwrap()
    }

    #[test]
    fn shape_matches_core() {
        let c = core(100, 7);
        let ts = CubeSynthesis::new(0.5).synthesize(&c, 9);
        assert_eq!(ts.pattern_count(), 7);
        assert_eq!(ts.bits_per_pattern(), 100);
    }

    #[test]
    fn deterministic_per_seed() {
        let c = core(50, 5);
        let a = CubeSynthesis::new(0.3).synthesize(&c, 1);
        let b = CubeSynthesis::new(0.3).synthesize(&c, 1);
        let d = CubeSynthesis::new(0.3).synthesize(&c, 2);
        assert_eq!(a, b);
        assert_ne!(a, d);
    }

    #[test]
    fn density_is_respected() {
        let c = core(2000, 20);
        for target in [0.02, 0.2, 0.6] {
            let ts = CubeSynthesis::new(target).synthesize(&c, 42);
            let got = ts.care_density();
            assert!(
                (got - target).abs() < target * 0.35 + 0.01,
                "target {target}, got {got}"
            );
        }
    }

    #[test]
    fn extreme_densities() {
        let c = core(200, 3);
        let none = CubeSynthesis::new(0.0).synthesize(&c, 1);
        assert_eq!(none.total_care_bits(), 0);
        let full = CubeSynthesis::new(1.0).cluster(1).synthesize(&c, 1);
        assert_eq!(full.care_density(), 1.0);
    }

    #[test]
    fn decay_makes_later_patterns_sparser() {
        let c = core(4000, 10);
        let ts = CubeSynthesis::new(0.5).density_decay(0.7).synthesize(&c, 3);
        let first = ts.pattern(0).unwrap().care_density();
        let last = ts.pattern(9).unwrap().care_density();
        assert!(first > 2.0 * last, "first {first}, last {last}");
    }

    #[test]
    fn one_fraction_biases_values() {
        let c = core(5000, 4);
        let ts = CubeSynthesis::new(0.5).one_fraction(0.9).synthesize(&c, 8);
        let ones = ts.patterns().iter().map(|p| p.count_ones()).sum::<usize>() as f64;
        let cares = ts.total_care_bits() as f64;
        assert!(ones / cares > 0.8, "ones fraction {}", ones / cares);
    }

    #[test]
    fn per_core_streams_are_decorrelated() {
        let a = Core::builder("alpha")
            .inputs(64)
            .pattern_count(4)
            .build()
            .unwrap();
        let b = Core::builder("beta")
            .inputs(64)
            .pattern_count(4)
            .build()
            .unwrap();
        let ta = CubeSynthesis::new(0.5).synthesize(&a, 77);
        let tb = CubeSynthesis::new(0.5).synthesize(&b, 77);
        assert_ne!(ta, tb);
    }

    #[test]
    fn synthesize_missing_fills_all_cores() {
        let mut soc = Soc::new(
            "s",
            vec![
                Core::builder("x")
                    .inputs(10)
                    .pattern_count(3)
                    .care_density(0.4)
                    .build()
                    .unwrap(),
                Core::builder("y")
                    .inputs(20)
                    .pattern_count(2)
                    .care_density(0.1)
                    .build()
                    .unwrap(),
            ],
        );
        synthesize_missing_test_sets(&mut soc, 5);
        assert!(soc.cores().iter().all(|c| c.test_set().is_some()));
        // Idempotent: a second call leaves attached sets alone.
        let before = soc.clone();
        synthesize_missing_test_sets(&mut soc, 6);
        assert_eq!(soc, before);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_density_panics() {
        CubeSynthesis::new(1.5);
    }
}
