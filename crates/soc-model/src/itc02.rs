//! Reader and writer for the ITC'02 SOC Test Benchmarks format.
//!
//! The ITC'02 benchmarking initiative (Marinissen, Iyengar & Chakrabarty,
//! ITC 2002) distributes SOCs as `.soc` files of `Module` blocks:
//!
//! ```text
//! SocName d695
//! TotalModules 11
//!
//! Module 0
//!   Level 0
//!   Inputs 0  Outputs 0  Bidirs 0
//!   TotalTests 0
//!
//! Module 1
//!   Level 1
//!   Inputs 32  Outputs 32
//!   ScanChains 0
//!   TotalTests 1
//!   Test 1:
//!     TotalPatterns 12
//! ```
//!
//! This module accepts that structure (tabs, extra whitespace, `:` after
//! `Test n`, and `#`/`//` comments are all tolerated) and maps it onto
//! [`Soc`]: every module with at least one test and at least one pattern
//! becomes a [`Core`]; `ScanChains n` may be followed by `n` chain lengths
//! on the same or subsequent tokens. Modules without tests (typically
//! module 0, the SOC top) are skipped and reported.
//!
//! Care-bit density is not part of the ITC'02 format; parsed cores get the
//! density passed to [`parse_itc02`], which callers pick per design class
//! (≈ 0.66 for the ISCAS'89-based benchmarks per the paper).

use std::fmt;

use crate::core::{BuildCoreError, Core};
use crate::soc::Soc;

/// Outcome of parsing an ITC'02 file: the SOC plus the module numbers that
/// were skipped because they declare no testable content.
#[derive(Debug, Clone, PartialEq)]
pub struct Itc02Soc {
    /// The parsed design.
    pub soc: Soc,
    /// Module numbers skipped (no tests / no patterns / no stimulus).
    pub skipped_modules: Vec<u32>,
}

/// Parses an ITC'02 `.soc` description.
///
/// # Errors
///
/// Returns [`ParseItc02Error`] with a line number for malformed files.
///
/// # Examples
///
/// ```
/// use soc_model::itc02::parse_itc02;
///
/// let text = "\
/// SocName mini
/// TotalModules 2
/// Module 0
///   Level 0
///   TotalTests 0
/// Module 1
///   Level 1
///   Inputs 4 Outputs 2
///   ScanChains 2 : 8 8
///   TotalTests 1
///   Test 1:
///     TotalPatterns 9
/// ";
/// let parsed = parse_itc02(text, 0.5)?;
/// assert_eq!(parsed.soc.core_count(), 1);
/// assert_eq!(parsed.skipped_modules, vec![0]);
/// assert_eq!(parsed.soc.cores()[0].scan_cells(), 16);
/// # Ok::<(), soc_model::itc02::ParseItc02Error>(())
/// ```
pub fn parse_itc02(text: &str, care_density: f64) -> Result<Itc02Soc, ParseItc02Error> {
    let mut tokens = tokenize(text);
    let mut soc_name: Option<String> = None;
    let mut total_modules: Option<u32> = None;
    let mut modules: Vec<ModuleSpec> = Vec::new();

    while let Some(tok) = tokens.next_token() {
        match tok.text.as_str() {
            "SocName" => soc_name = Some(tokens.expect_word("SocName")?),
            "TotalModules" => total_modules = Some(tokens.expect_num("TotalModules")?),
            "Options" => {
                // Consume the remainder of the line (generation options).
                tokens.skip_line(tok.line);
            }
            "Module" => {
                let number = tokens.expect_num("Module")?;
                modules.push(parse_module(number, &mut tokens)?);
            }
            other => {
                return Err(ParseItc02Error {
                    line: tok.line,
                    kind: Itc02ErrorKind::UnexpectedToken(other.to_string()),
                });
            }
        }
    }

    let name = soc_name.ok_or(ParseItc02Error {
        line: 1,
        kind: Itc02ErrorKind::MissingSocName,
    })?;
    if let Some(total) = total_modules {
        if total as usize != modules.len() {
            return Err(ParseItc02Error {
                line: 1,
                kind: Itc02ErrorKind::ModuleCountMismatch {
                    declared: total,
                    found: u32::try_from(modules.len()).unwrap_or(u32::MAX),
                },
            });
        }
    }

    let mut cores = Vec::new();
    let mut skipped = Vec::new();
    for m in &modules {
        match m.to_core(&name, care_density)? {
            Some(core) => cores.push(core),
            None => skipped.push(m.number),
        }
    }
    Ok(Itc02Soc {
        soc: Soc::new(name, cores),
        skipped_modules: skipped,
    })
}

/// Intermediate module description.
#[derive(Debug, Clone, Default, PartialEq)]
struct ModuleSpec {
    number: u32,
    level: Option<u32>,
    inputs: u32,
    outputs: u32,
    bidirs: u32,
    chains: Vec<u32>,
    patterns: u32,
    tests: u32,
}

impl ModuleSpec {
    fn to_core(&self, soc_name: &str, density: f64) -> Result<Option<Core>, ParseItc02Error> {
        if self.tests == 0 || self.patterns == 0 {
            return Ok(None);
        }
        let mut b = Core::builder(format!("{soc_name}.m{}", self.number))
            .inputs(self.inputs)
            .outputs(self.outputs)
            .bidirs(self.bidirs)
            .pattern_count(self.patterns)
            .care_density(density);
        if !self.chains.is_empty() {
            b = b.fixed_chains(self.chains.clone());
        }
        match b.build() {
            Ok(core) => Ok(Some(core)),
            Err(BuildCoreError::NoStimulus { .. }) => Ok(None),
            Err(e) => Err(ParseItc02Error {
                line: 0,
                kind: Itc02ErrorKind::InvalidModule {
                    module: self.number,
                    reason: e.to_string(),
                },
            }),
        }
    }
}

fn parse_module(number: u32, tokens: &mut Tokens) -> Result<ModuleSpec, ParseItc02Error> {
    let mut spec = ModuleSpec {
        number,
        ..Default::default()
    };
    while let Some(peek) = tokens.peek_token() {
        match peek.text.as_str() {
            "Module" | "SocName" | "TotalModules" | "Options" => break,
            "Level" => {
                tokens.next_token();
                spec.level = Some(tokens.expect_num("Level")?);
            }
            "Inputs" => {
                tokens.next_token();
                spec.inputs = tokens.expect_num("Inputs")?;
            }
            "Outputs" => {
                tokens.next_token();
                spec.outputs = tokens.expect_num("Outputs")?;
            }
            "Bidirs" => {
                tokens.next_token();
                spec.bidirs = tokens.expect_num("Bidirs")?;
            }
            "ScanChains" => {
                tokens.next_token();
                let count: u32 = tokens.expect_num("ScanChains")?;
                // Don't trust the declared count for the allocation: a
                // corrupt header can claim billions of chains. The loop
                // below fails on the first missing token anyway.
                let mut chains = Vec::with_capacity(count.min(4096) as usize);
                for _ in 0..count {
                    chains.push(tokens.expect_num("scan chain length")?);
                }
                spec.chains = chains;
            }
            "TotalTests" => {
                tokens.next_token();
                spec.tests = tokens.expect_num("TotalTests")?;
            }
            "Test" => {
                tokens.next_token();
                let _test_number: u32 = tokens.expect_num("Test")?;
            }
            "TotalPatterns" => {
                tokens.next_token();
                // Accumulate over multiple Test blocks.
                spec.patterns += tokens.expect_num::<u32>("TotalPatterns")?;
            }
            // Fields present in the full ITC'02 distribution that do not
            // affect wrapper/TAM planning; accepted and ignored.
            "TotalIO" | "ScanUse" | "TamUse" | "MaxTam" | "Power" | "TotalScanCells"
            | "TotalTamUse" => {
                tokens.next_token();
                let _ = tokens.expect_num::<u64>("ignored field")?;
            }
            other => {
                return Err(ParseItc02Error {
                    line: peek.line,
                    kind: Itc02ErrorKind::UnexpectedToken(other.to_string()),
                });
            }
        }
    }
    Ok(spec)
}

/// Serializes an SOC into ITC'02-style text. A synthetic `Module 0`
/// (Level 0, no tests) represents the SOC top, as the benchmark files do.
///
/// Flexible (soft) cores cannot be represented in ITC'02 — their cells are
/// written as a single scan chain, which preserves totals but not
/// flexibility; round-tripping is exact for hard cores only.
pub fn write_itc02(soc: &Soc) -> String {
    use crate::core::ScanArchitecture;
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(out, "SocName {}", soc.name());
    let _ = writeln!(out, "TotalModules {}", soc.core_count() + 1);
    let _ = writeln!(
        out,
        "\nModule 0\n  Level 0\n  Inputs 0 Outputs 0 Bidirs 0\n  TotalTests 0"
    );
    for (i, core) in soc.cores().iter().enumerate() {
        let _ = writeln!(out, "\nModule {}", i + 1);
        let _ = writeln!(out, "  Level 1");
        let _ = writeln!(
            out,
            "  Inputs {} Outputs {} Bidirs {}",
            core.inputs(),
            core.outputs(),
            core.bidirs()
        );
        match core.scan() {
            ScanArchitecture::Combinational => {
                let _ = writeln!(out, "  ScanChains 0");
            }
            ScanArchitecture::Fixed { chain_lengths } => {
                let _ = write!(out, "  ScanChains {} :", chain_lengths.len());
                for l in chain_lengths {
                    let _ = write!(out, " {l}");
                }
                out.push('\n');
            }
            ScanArchitecture::Flexible { cells, .. } => {
                let _ = writeln!(out, "  ScanChains 1 : {cells}");
            }
        }
        let _ = writeln!(out, "  TotalTests 1");
        let _ = writeln!(out, "  Test 1:");
        let _ = writeln!(out, "    TotalPatterns {}", core.pattern_count());
    }
    out
}

// --- tokenizer -----------------------------------------------------------

#[derive(Debug, Clone)]
struct Token {
    text: String,
    line: usize,
}

#[derive(Debug)]
struct Tokens {
    items: Vec<Token>,
    pos: usize,
}

fn tokenize(text: &str) -> Tokens {
    let mut items = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("");
        let line = line.split("//").next().unwrap_or("");
        for word in line.split(|c: char| c.is_whitespace() || c == ':') {
            if !word.is_empty() {
                items.push(Token {
                    text: word.to_string(),
                    line: lineno + 1,
                });
            }
        }
    }
    Tokens { items, pos: 0 }
}

impl Tokens {
    fn next_token(&mut self) -> Option<Token> {
        let t = self.items.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_token(&self) -> Option<&Token> {
        self.items.get(self.pos)
    }

    fn skip_line(&mut self, line: usize) {
        while self.peek_token().is_some_and(|t| t.line == line) {
            self.pos += 1;
        }
    }

    fn expect_word(&mut self, after: &str) -> Result<String, ParseItc02Error> {
        match self.next_token() {
            Some(t) => Ok(t.text),
            None => Err(ParseItc02Error {
                line: self.items.last().map_or(0, |t| t.line),
                kind: Itc02ErrorKind::MissingValue(after.to_string()),
            }),
        }
    }

    fn expect_num<T: std::str::FromStr>(&mut self, after: &str) -> Result<T, ParseItc02Error> {
        let t = self.next_token().ok_or(ParseItc02Error {
            line: self.items.last().map_or(0, |t| t.line),
            kind: Itc02ErrorKind::MissingValue(after.to_string()),
        })?;
        t.text.parse().map_err(|_| ParseItc02Error {
            line: t.line,
            kind: Itc02ErrorKind::BadNumber {
                field: after.to_string(),
                found: t.text,
            },
        })
    }
}

// --- errors ---------------------------------------------------------------

/// Error produced by [`parse_itc02`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParseItc02Error {
    line: usize,
    kind: Itc02ErrorKind,
}

impl ParseItc02Error {
    /// 1-based line number of the offending content (0 for file-level
    /// errors).
    pub fn line(&self) -> usize {
        self.line
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Itc02ErrorKind {
    MissingSocName,
    MissingValue(String),
    BadNumber { field: String, found: String },
    UnexpectedToken(String),
    ModuleCountMismatch { declared: u32, found: u32 },
    InvalidModule { module: u32, reason: String },
}

impl fmt::Display for ParseItc02Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: ", self.line)?;
        }
        match &self.kind {
            Itc02ErrorKind::MissingSocName => write!(f, "no SocName found"),
            Itc02ErrorKind::MissingValue(k) => write!(f, "`{k}` has no value"),
            Itc02ErrorKind::BadNumber { field, found } => {
                write!(f, "invalid number `{found}` after `{field}`")
            }
            Itc02ErrorKind::UnexpectedToken(t) => write!(f, "unexpected token `{t}`"),
            Itc02ErrorKind::ModuleCountMismatch { declared, found } => write!(
                f,
                "TotalModules declares {declared} modules but {found} were found"
            ),
            Itc02ErrorKind::InvalidModule { module, reason } => {
                write!(f, "module {module} is invalid: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseItc02Error {}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# ITC'02-style sample
SocName demo
TotalModules 3

Module 0
  Level 0
  Inputs 0 Outputs 0 Bidirs 0
  TotalTests 0

Module 1
\tLevel 1
\tInputs 32\tOutputs 32\tBidirs 0
\tScanChains 0
\tTotalTests 1
\tTest 1:
\t\tTotalPatterns 12

Module 2
  Level 1
  Inputs 34 Outputs 1
  ScanChains 2 : 16 16
  TotalTests 1
  Test 1:
    TotalPatterns 75
";

    #[test]
    fn parses_the_sample() {
        let parsed = parse_itc02(SAMPLE, 0.66).unwrap();
        assert_eq!(parsed.soc.name(), "demo");
        assert_eq!(parsed.soc.core_count(), 2);
        let c1 = &parsed.soc.cores()[0];
        assert_eq!(c1.name(), "demo.m1");
        assert_eq!(c1.inputs(), 32);
        assert_eq!(c1.pattern_count(), 12);
        assert!(c1.scan().is_combinational());
        let c2 = &parsed.soc.cores()[1];
        assert_eq!(c2.scan_cells(), 32);
        assert_eq!(c2.pattern_count(), 75);
        assert!((c2.nominal_care_density() - 0.66).abs() < 1e-12);
    }

    #[test]
    fn tolerates_tabs_colons_comments() {
        let text = "SocName t // inline\nTotalModules 1\nModule 0\nLevel 1\n\
                    Inputs 2 # c\nTotalTests 1\nTest 1: TotalPatterns 3\n";
        let parsed = parse_itc02(text, 0.5).unwrap();
        assert_eq!(parsed.soc.core_count(), 1);
    }

    #[test]
    fn multiple_tests_accumulate_patterns() {
        let text = "SocName t\nModule 5\nLevel 1\nInputs 4\nTotalTests 2\n\
                    Test 1: TotalPatterns 10\nTest 2: TotalPatterns 5\n";
        let parsed = parse_itc02(text, 0.5).unwrap();
        assert_eq!(parsed.soc.cores()[0].pattern_count(), 15);
    }

    #[test]
    fn module_count_mismatch_is_an_error() {
        let text = "SocName t\nTotalModules 5\nModule 0\nLevel 1\nInputs 1\n\
                    TotalTests 1\nTest 1: TotalPatterns 1\n";
        let e = parse_itc02(text, 0.5).unwrap_err();
        assert!(e.to_string().contains("declares 5"));
    }

    #[test]
    fn rejects_bad_numbers_with_line_info() {
        let text = "SocName t\nModule 0\nLevel 1\nInputs nope\n";
        let e = parse_itc02(text, 0.5).unwrap_err();
        assert_eq!(e.line(), 4);
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn rejects_unknown_tokens() {
        let e = parse_itc02("SocName t\nWeird 4\n", 0.5).unwrap_err();
        assert!(e.to_string().contains("Weird"));
    }

    #[test]
    fn missing_socname_is_an_error() {
        assert!(parse_itc02("TotalModules 0\n", 0.5).is_err());
    }

    #[test]
    fn writer_roundtrips_hard_cores() {
        let soc = crate::benchmarks::d695();
        let text = write_itc02(&soc);
        let parsed = parse_itc02(&text, crate::benchmarks::D695_CARE_DENSITY).unwrap();
        assert_eq!(parsed.soc.core_count(), soc.core_count());
        for (a, b) in soc.cores().iter().zip(parsed.soc.cores()) {
            assert_eq!(a.inputs(), b.inputs());
            assert_eq!(a.outputs(), b.outputs());
            assert_eq!(a.scan_cells(), b.scan_cells());
            assert_eq!(a.pattern_count(), b.pattern_count());
        }
    }

    #[test]
    fn ignorable_real_world_fields_are_tolerated() {
        let text = "SocName t\nModule 1\nLevel 1\nInputs 4\nTotalIO 8\nPower 250\n\
                    ScanUse 1\nTamUse 1\nTotalTests 1\nTest 1: TotalPatterns 5\n";
        let parsed = parse_itc02(text, 0.5).unwrap();
        assert_eq!(parsed.soc.cores()[0].pattern_count(), 5);
    }

    #[test]
    fn flexible_cores_serialize_as_single_chains() {
        let soc = crate::benchmarks::system1();
        let text = write_itc02(&soc);
        let parsed = parse_itc02(&text, 0.03).unwrap();
        assert_eq!(parsed.soc.core_count(), soc.core_count());
        for (a, b) in soc.cores().iter().zip(parsed.soc.cores()) {
            // Totals conserved; flexibility is lost by design (documented).
            assert_eq!(a.scan_cells(), b.scan_cells());
            assert_eq!(a.pattern_count(), b.pattern_count());
            assert!(matches!(
                b.scan(),
                crate::core::ScanArchitecture::Fixed { chain_lengths } if chain_lengths.len() == 1
            ));
        }
    }

    #[test]
    fn scan_chain_lengths_must_all_be_present() {
        let text = "SocName t\nModule 0\nLevel 1\nInputs 1\nScanChains 3 : 5 5\n";
        assert!(parse_itc02(text, 0.5).is_err());
    }
}
