//! Data model for core-based system-on-chip (SOC) test planning.
//!
//! This crate is the substrate shared by every other crate of the
//! repository: ternary test cubes ([`TritVec`]), embedded cores with their
//! scan structure ([`Core`]), whole systems ([`Soc`]), a textual description
//! format ([`mod@format`]), deterministic cube synthesis ([`generator`]), and
//! the benchmark designs of the DATE 2008 paper ([`benchmarks`]).
//!
//! # Examples
//!
//! Build a small SOC and synthesize cubes for it:
//!
//! ```
//! use soc_model::{Core, Soc, generator::synthesize_missing_test_sets};
//!
//! let mut soc = Soc::new(
//!     "demo",
//!     vec![Core::builder("a")
//!         .inputs(16)
//!         .outputs(8)
//!         .fixed_chains(vec![32, 32])
//!         .pattern_count(25)
//!         .care_density(0.4)
//!         .build()?],
//! );
//! synthesize_missing_test_sets(&mut soc, 0xC0FFEE);
//! assert!(soc.cores()[0].test_set().is_some());
//! # Ok::<(), soc_model::BuildCoreError>(())
//! ```
//!
//! Or load one of the paper's benchmarks:
//!
//! ```
//! use soc_model::benchmarks::Design;
//!
//! let d695 = Design::D695.build_with_cubes(1);
//! assert_eq!(d695.core_count(), 10);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod benchmarks;
mod bitmatrix;
pub mod compaction;
mod core;
pub mod format;
pub mod generator;
pub mod itc02;
pub mod patfile;
mod pattern;
mod rng;
mod soc;
mod trit;

pub use crate::bitmatrix::{copy_bits, read_bits, write_bits, BitMatrix};
pub use crate::core::{BuildCoreError, Core, CoreBuilder, ScanArchitecture};
pub use crate::generator::CubeSynthesis;
pub use crate::pattern::{PatternSizeError, TestSet};
pub use crate::rng::SplitMix64;
pub use crate::soc::{CoreId, Soc};
pub use crate::trit::{Iter as TritIter, ParseTritError, Trit, TritVec};
