//! Pattern-file reader/writer: a minimal interchange format for test
//! cubes, so real ATPG output can be attached to cores instead of
//! synthesized cubes.
//!
//! ```text
//! # anything after '#' is a comment
//! bits 6
//! 01XX10
//! XXX0X1
//! ```
//!
//! One cube per line, `0`/`1`/`X` (or `-`) per scan-load position, in the
//! canonical cube order (wrapper input cells first, then scan cells in
//! chain/stitch order — see `wrapper::ChainLayout`).

use std::fmt;

use crate::pattern::TestSet;
use crate::trit::TritVec;

/// Parses a pattern file into a [`TestSet`].
///
/// # Errors
///
/// Returns [`ParsePatternsError`] with a 1-based line number on malformed
/// input.
///
/// # Examples
///
/// ```
/// use soc_model::patfile::parse_patterns;
///
/// let ts = parse_patterns("bits 4\n01XX\nXX10\n")?;
/// assert_eq!(ts.pattern_count(), 2);
/// assert_eq!(ts.bits_per_pattern(), 4);
/// # Ok::<(), soc_model::patfile::ParsePatternsError>(())
/// ```
pub fn parse_patterns(text: &str) -> Result<TestSet, ParsePatternsError> {
    let mut bits: Option<usize> = None;
    let mut set: Option<TestSet> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("bits") {
            if bits.is_some() {
                return Err(err(idx, "duplicate `bits` line"));
            }
            let n: usize = rest
                .trim()
                .parse()
                .map_err(|_| err(idx, "`bits` needs a number"))?;
            if n == 0 {
                return Err(err(idx, "`bits` must be positive"));
            }
            bits = Some(n);
            set = Some(TestSet::new(n));
            continue;
        }
        let Some(set) = set.as_mut() else {
            return Err(err(idx, "cube before the `bits` line"));
        };
        let cube: TritVec = line
            .parse()
            .map_err(|e| err(idx, &format!("invalid cube: {e}")))?;
        set.push(cube)
            .map_err(|e| err(idx, &format!("wrong cube length: {e}")))?;
    }
    set.ok_or_else(|| err(0, "no `bits` line found"))
}

/// Serializes a test set in the pattern-file format.
///
/// ```
/// use soc_model::patfile::{parse_patterns, write_patterns};
///
/// let ts = parse_patterns("bits 3\n01X\n")?;
/// assert_eq!(parse_patterns(&write_patterns(&ts))?, ts);
/// # Ok::<(), soc_model::patfile::ParsePatternsError>(())
/// ```
pub fn write_patterns(set: &TestSet) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity((set.bits_per_pattern() + 1) * set.pattern_count() + 16);
    let _ = writeln!(out, "bits {}", set.bits_per_pattern());
    for cube in set.iter() {
        let _ = writeln!(out, "{cube}");
    }
    out
}

fn err(idx: usize, message: &str) -> ParsePatternsError {
    ParsePatternsError {
        line: idx + 1,
        message: message.to_string(),
    }
}

/// Error produced by [`parse_patterns`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePatternsError {
    line: usize,
    message: String,
}

impl ParsePatternsError {
    /// 1-based line of the offending content.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParsePatternsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParsePatternsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_dashes() {
        let ts = parse_patterns("# header\nbits 4 # four\n01-X\n\n# mid\nXX10\n").unwrap();
        assert_eq!(ts.pattern_count(), 2);
        assert_eq!(ts.pattern(0).unwrap().to_string(), "01XX");
    }

    #[test]
    fn roundtrips_synthesized_sets() {
        use crate::{Core, CubeSynthesis};
        let core = Core::builder("c")
            .inputs(50)
            .pattern_count(20)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(0.3).synthesize(&core, 7);
        let reparsed = parse_patterns(&write_patterns(&ts)).unwrap();
        assert_eq!(reparsed, ts);
    }

    #[test]
    fn structural_errors_carry_lines() {
        assert_eq!(parse_patterns("01X\n").unwrap_err().line(), 1);
        assert_eq!(parse_patterns("bits 3\n01\n").unwrap_err().line(), 2);
        assert_eq!(parse_patterns("bits 3\n012\n").unwrap_err().line(), 2);
        assert_eq!(parse_patterns("bits 3\nbits 4\n").unwrap_err().line(), 2);
        assert!(parse_patterns("bits 0\n").is_err());
        assert!(parse_patterns("").is_err());
        assert!(parse_patterns("bits x\n").is_err());
    }

    #[test]
    fn attaches_to_a_matching_core() {
        use crate::Core;
        let mut core = Core::builder("c")
            .inputs(4)
            .pattern_count(2)
            .build()
            .unwrap();
        let ts = parse_patterns("bits 4\n01XX\n1XX0\n").unwrap();
        core.attach_test_set(ts).unwrap();
        assert_eq!(core.test_set().unwrap().pattern_count(), 2);
    }

    #[test]
    fn empty_set_is_allowed_then_rejected_by_core_shape() {
        let ts = parse_patterns("bits 4\n").unwrap();
        assert_eq!(ts.pattern_count(), 0);
    }
}
