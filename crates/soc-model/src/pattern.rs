//! Test sets: collections of equally sized scan-stimulus cubes.

use std::fmt;

use crate::trit::TritVec;

/// An ordered collection of test cubes for one core, all of the same length.
///
/// The cube length is the number of *scan-load* positions of the core
/// (internal scan cells plus wrapper input cells); how the positions are
/// distributed over wrapper chains is decided later by the wrapper design.
///
/// # Examples
///
/// ```
/// use soc_model::{TestSet, TritVec};
///
/// let mut ts = TestSet::new(4);
/// ts.push("01XX".parse()?)?;
/// ts.push("XX10".parse()?)?;
/// assert_eq!(ts.pattern_count(), 2);
/// assert_eq!(ts.volume_bits(), 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TestSet {
    bits_per_pattern: usize,
    patterns: Vec<TritVec>,
}

impl TestSet {
    /// Creates an empty test set whose cubes will carry `bits_per_pattern`
    /// symbols each.
    pub fn new(bits_per_pattern: usize) -> Self {
        TestSet {
            bits_per_pattern,
            patterns: Vec::new(),
        }
    }

    /// Builds a test set from pre-existing cubes.
    ///
    /// # Errors
    ///
    /// Returns [`PatternSizeError`] if any cube's length differs from
    /// `bits_per_pattern`.
    pub fn from_patterns(
        bits_per_pattern: usize,
        patterns: Vec<TritVec>,
    ) -> Result<Self, PatternSizeError> {
        let mut ts = TestSet::new(bits_per_pattern);
        for p in patterns {
            ts.push(p)?;
        }
        Ok(ts)
    }

    /// Number of symbols per cube.
    pub fn bits_per_pattern(&self) -> usize {
        self.bits_per_pattern
    }

    /// Number of cubes.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// Returns `true` when the set holds no cubes.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Appends a cube.
    ///
    /// # Errors
    ///
    /// Returns [`PatternSizeError`] when `pattern.len()` differs from
    /// [`bits_per_pattern`](Self::bits_per_pattern).
    pub fn push(&mut self, pattern: TritVec) -> Result<(), PatternSizeError> {
        if pattern.len() != self.bits_per_pattern {
            return Err(PatternSizeError {
                expected: self.bits_per_pattern,
                found: pattern.len(),
            });
        }
        self.patterns.push(pattern);
        Ok(())
    }

    /// The cubes, in application order.
    pub fn patterns(&self) -> &[TritVec] {
        &self.patterns
    }

    /// Returns one cube by index, or `None` when out of range.
    pub fn pattern(&self, idx: usize) -> Option<&TritVec> {
        self.patterns.get(idx)
    }

    /// Uncompressed stimulus volume in bits: one stored tester bit per
    /// symbol, care bit or not (don't-cares still occupy ATE memory when no
    /// compression is used).
    pub fn volume_bits(&self) -> u64 {
        self.patterns.len() as u64 * self.bits_per_pattern as u64
    }

    /// Total number of care bits over all cubes.
    pub fn total_care_bits(&self) -> u64 {
        self.patterns.iter().map(|p| p.count_cares() as u64).sum()
    }

    /// Overall care-bit density (0.0 for an empty set).
    pub fn care_density(&self) -> f64 {
        let vol = self.volume_bits();
        if vol == 0 {
            0.0
        } else {
            self.total_care_bits() as f64 / vol as f64
        }
    }

    /// Iterates over the cubes.
    pub fn iter(&self) -> std::slice::Iter<'_, TritVec> {
        self.patterns.iter()
    }

    /// Returns a copy holding only the first `keep` cubes (all of them
    /// when `keep` exceeds the count). ATPG orders patterns by fault
    /// coverage, so truncating the tail loses the least detection.
    pub fn truncated(&self, keep: usize) -> TestSet {
        TestSet {
            bits_per_pattern: self.bits_per_pattern,
            patterns: self.patterns[..keep.min(self.patterns.len())].to_vec(),
        }
    }
}

impl<'a> IntoIterator for &'a TestSet {
    type Item = &'a TritVec;
    type IntoIter = std::slice::Iter<'a, TritVec>;

    fn into_iter(self) -> Self::IntoIter {
        self.patterns.iter()
    }
}

/// Error returned when a cube of the wrong length is added to a [`TestSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternSizeError {
    expected: usize,
    found: usize,
}

impl PatternSizeError {
    /// The cube length the test set requires.
    pub fn expected(&self) -> usize {
        self.expected
    }

    /// The offending cube's length.
    pub fn found(&self) -> usize {
        self.found
    }
}

impl fmt::Display for PatternSizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "test pattern has {} bits but the test set requires {}",
            self.found, self.expected
        )
    }
}

impl std::error::Error for PatternSizeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tv(s: &str) -> TritVec {
        s.parse().unwrap()
    }

    #[test]
    fn push_and_query() {
        let mut ts = TestSet::new(3);
        ts.push(tv("01X")).unwrap();
        ts.push(tv("XXX")).unwrap();
        assert_eq!(ts.pattern_count(), 2);
        assert_eq!(ts.bits_per_pattern(), 3);
        assert_eq!(ts.volume_bits(), 6);
        assert_eq!(ts.total_care_bits(), 2);
        assert!((ts.care_density() - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(ts.pattern(0), Some(&tv("01X")));
        assert_eq!(ts.pattern(2), None);
    }

    #[test]
    fn size_mismatch_rejected() {
        let mut ts = TestSet::new(3);
        let err = ts.push(tv("0101")).unwrap_err();
        assert_eq!(err.expected(), 3);
        assert_eq!(err.found(), 4);
        assert!(err.to_string().contains("4 bits"));
    }

    #[test]
    fn from_patterns_validates() {
        assert!(TestSet::from_patterns(2, vec![tv("01"), tv("X1")]).is_ok());
        assert!(TestSet::from_patterns(2, vec![tv("01"), tv("X")]).is_err());
    }

    #[test]
    fn empty_set_statistics() {
        let ts = TestSet::new(10);
        assert!(ts.is_empty());
        assert_eq!(ts.volume_bits(), 0);
        assert_eq!(ts.care_density(), 0.0);
    }

    #[test]
    fn iteration_order_is_application_order() {
        let ts = TestSet::from_patterns(1, vec![tv("0"), tv("1"), tv("X")]).unwrap();
        let joined: String = ts.iter().map(|p| p.to_string()).collect();
        assert_eq!(joined, "01X");
    }
}
