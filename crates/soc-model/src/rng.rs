//! A tiny, version-stable pseudo-random number generator.
//!
//! Workload generation must reproduce byte-identical test cubes across
//! releases so that the experiment tables in `EXPERIMENTS.md` stay
//! comparable. External generator crates do not guarantee a stable stream
//! across major versions, so the model crate ships its own SplitMix64
//! (Steele, Lea & Flood, OOPSLA 2014) — 64-bit state, full period, passes
//! BigCrush when used as a mixer.

/// Deterministic SplitMix64 stream, seeded explicitly.
///
/// # Examples
///
/// ```
/// use soc_model::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the distribution is
    /// exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire 2019: unbiased bounded integers without division in the
        // common path.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Forks an independent generator, advancing this one by one step.
    ///
    /// Useful for giving each core or pattern its own stream so that the
    /// cubes of core *i* do not depend on how many cubes were drawn for
    /// cores *0..i*.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA5A5_A5A5_5A5A_5A5A)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_value() {
        // Reference value from the SplitMix64 paper's public-domain C code
        // with seed 0.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn bounded_values_in_range() {
        let mut g = SplitMix64::new(99);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..50 {
                assert!(g.next_below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(1).next_below(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut g = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| g.next_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn forked_streams_differ() {
        let mut g = SplitMix64::new(5);
        let mut f1 = g.fork();
        let mut f2 = g.fork();
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut g = SplitMix64::new(123);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[g.next_below(10) as usize] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket = {b}");
        }
    }
}
