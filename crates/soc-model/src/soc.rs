//! System-on-chip: a named collection of embedded cores.

use std::fmt;

use crate::core::Core;

/// Index of a core within its [`Soc`], used throughout the planning crates
/// to refer to cores without cloning them.
///
/// ```
/// use soc_model::CoreId;
/// let id = CoreId(3);
/// assert_eq!(id.0, 3);
/// assert_eq!(id.to_string(), "core#3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core#{}", self.0)
    }
}

/// A core-based system-on-chip under test.
///
/// # Examples
///
/// ```
/// use soc_model::{Core, Soc};
///
/// let soc = Soc::new(
///     "demo",
///     vec![
///         Core::builder("a").inputs(8).pattern_count(10).build()?,
///         Core::builder("b").inputs(4).fixed_chains(vec![16]).pattern_count(20).build()?,
///     ],
/// );
/// assert_eq!(soc.core_count(), 2);
/// assert_eq!(soc.initial_volume_bits(), 10 * 8 + 20 * 20);
/// # Ok::<(), soc_model::BuildCoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Soc {
    name: String,
    cores: Vec<Core>,
}

impl Soc {
    /// Creates an SOC from its cores.
    pub fn new(name: impl Into<String>, cores: Vec<Core>) -> Self {
        Soc {
            name: name.into(),
            cores,
        }
    }

    /// The SOC's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of embedded cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Returns `true` when the SOC has no cores.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// The cores, in declaration order.
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// Mutable access to the cores (e.g. to attach synthesized test sets).
    pub fn cores_mut(&mut self) -> &mut [Core] {
        &mut self.cores
    }

    /// Returns one core by id, or `None` when out of range.
    pub fn core(&self, id: CoreId) -> Option<&Core> {
        self.cores.get(id.0)
    }

    /// Looks a core up by name.
    pub fn core_by_name(&self, name: &str) -> Option<(CoreId, &Core)> {
        self.cores
            .iter()
            .enumerate()
            .find(|(_, c)| c.name() == name)
            .map(|(i, c)| (CoreId(i), c))
    }

    /// Iterates over `(CoreId, &Core)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (CoreId, &Core)> {
        self.cores.iter().enumerate().map(|(i, c)| (CoreId(i), c))
    }

    /// Total uncompressed stimulus volume over all cores, in bits.
    pub fn initial_volume_bits(&self) -> u64 {
        self.cores.iter().map(Core::initial_volume_bits).sum()
    }

    /// Total scan cells over all cores.
    pub fn total_scan_cells(&self) -> u64 {
        self.cores.iter().map(Core::scan_cells).sum()
    }

    /// Checks SOC-level consistency: at least one core, unique core names,
    /// and every attached test set matching its core's shape (the latter is
    /// enforced at attach time; re-checked here for defence in depth).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores.is_empty() {
            return Err(format!("SOC {:?} has no cores", self.name));
        }
        let mut seen = std::collections::BTreeSet::new();
        for core in &self.cores {
            if !seen.insert(core.name()) {
                return Err(format!("duplicate core name {:?}", core.name()));
            }
            if let Some(ts) = core.test_set() {
                if ts.bits_per_pattern() as u64 != core.scan_load_bits()
                    || ts.pattern_count() as u32 != core.pattern_count()
                {
                    return Err(format!(
                        "core {:?} test set shape {}×{} does not match the core",
                        core.name(),
                        ts.pattern_count(),
                        ts.bits_per_pattern()
                    ));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Soc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} cores, {} scan cells, {} bits stimulus)",
            self.name,
            self.core_count(),
            self.total_scan_cells(),
            self.initial_volume_bits()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soc() -> Soc {
        Soc::new(
            "t",
            vec![
                Core::builder("a")
                    .inputs(8)
                    .pattern_count(10)
                    .build()
                    .unwrap(),
                Core::builder("b")
                    .inputs(4)
                    .fixed_chains(vec![16])
                    .pattern_count(20)
                    .build()
                    .unwrap(),
            ],
        )
    }

    #[test]
    fn lookup_by_id_and_name() {
        let s = soc();
        assert_eq!(s.core(CoreId(0)).unwrap().name(), "a");
        assert_eq!(s.core(CoreId(2)), None);
        let (id, c) = s.core_by_name("b").unwrap();
        assert_eq!(id, CoreId(1));
        assert_eq!(c.scan_cells(), 16);
        assert!(s.core_by_name("zz").is_none());
    }

    #[test]
    fn aggregates() {
        let s = soc();
        assert_eq!(s.core_count(), 2);
        assert_eq!(s.total_scan_cells(), 16);
        assert_eq!(s.initial_volume_bits(), 80 + 400);
        assert!(!s.is_empty());
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let s = soc();
        let ids: Vec<usize> = s.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(s.iter().len(), 2);
    }

    #[test]
    fn validation_catches_duplicates_and_emptiness() {
        assert!(Soc::new("empty", vec![]).validate().is_err());
        let dup = Soc::new(
            "dup",
            vec![
                Core::builder("x")
                    .inputs(1)
                    .pattern_count(1)
                    .build()
                    .unwrap(),
                Core::builder("x")
                    .inputs(2)
                    .pattern_count(1)
                    .build()
                    .unwrap(),
            ],
        );
        let err = dup.validate().unwrap_err();
        assert!(err.contains("duplicate"));
        assert!(soc().validate().is_ok());
    }

    #[test]
    fn display_mentions_name_and_counts() {
        let d = soc().to_string();
        assert!(d.contains('t'));
        assert!(d.contains("2 cores"));
    }
}
