//! Ternary symbols and packed ternary vectors.
//!
//! Scan test *cubes* are partially specified: every stimulus bit is either a
//! care bit (`0` or `1`) or a don't-care (`X`). [`TritVec`] stores a cube as
//! two parallel bit-planes (care mask + value mask), packed 64 symbols per
//! `u64` word per plane, so care-bit statistics reduce to popcounts.

use std::fmt;
use std::str::FromStr;

/// A single ternary symbol of a test cube: `0`, `1`, or don't-care (`X`).
///
/// # Examples
///
/// ```
/// use soc_model::Trit;
///
/// assert!(Trit::Zero.is_care());
/// assert!(!Trit::X.is_care());
/// assert_eq!(Trit::One.value(), Some(true));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Trit {
    /// A care bit with logic value 0.
    Zero,
    /// A care bit with logic value 1.
    One,
    /// A don't-care position; any logic value satisfies the cube.
    #[default]
    X,
}

impl Trit {
    /// Returns `true` when the symbol is a specified (care) bit.
    pub fn is_care(self) -> bool {
        !matches!(self, Trit::X)
    }

    /// Returns the logic value of a care bit, or `None` for `X`.
    pub fn value(self) -> Option<bool> {
        match self {
            Trit::Zero => Some(false),
            Trit::One => Some(true),
            Trit::X => None,
        }
    }

    /// Builds a care bit from a logic value.
    ///
    /// ```
    /// use soc_model::Trit;
    /// assert_eq!(Trit::from_bit(true), Trit::One);
    /// ```
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// Returns `true` when `bit` is an acceptable logic value for this symbol
    /// (any value satisfies `X`).
    pub fn accepts(self, bit: bool) -> bool {
        match self {
            Trit::Zero => !bit,
            Trit::One => bit,
            Trit::X => true,
        }
    }

    /// The canonical character for this symbol (`'0'`, `'1'`, `'X'`).
    pub fn to_char(self) -> char {
        match self {
            Trit::Zero => '0',
            Trit::One => '1',
            Trit::X => 'X',
        }
    }
}

impl fmt::Display for Trit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl TryFrom<char> for Trit {
    type Error = ParseTritError;

    fn try_from(c: char) -> Result<Self, Self::Error> {
        match c {
            '0' => Ok(Trit::Zero),
            '1' => Ok(Trit::One),
            'x' | 'X' | '-' => Ok(Trit::X),
            other => Err(ParseTritError { found: other }),
        }
    }
}

/// Error returned when a character is not a valid ternary symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseTritError {
    found: char,
}

impl fmt::Display for ParseTritError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid ternary symbol {:?}; expected '0', '1', 'X' or '-'",
            self.found
        )
    }
}

impl std::error::Error for ParseTritError {}

/// A packed vector of ternary symbols (a scan *test cube*).
///
/// Internally two bit-planes are stored: `care[i]` says whether position `i`
/// is specified, and `value[i]` holds its logic value (kept `0` for `X`
/// positions so that plane-wide popcounts are meaningful).
///
/// # Examples
///
/// ```
/// use soc_model::{Trit, TritVec};
///
/// let cube: TritVec = "01XX1".parse()?;
/// assert_eq!(cube.len(), 5);
/// assert_eq!(cube.get(1), Trit::One);
/// assert_eq!(cube.count_cares(), 3);
/// assert!((cube.care_density() - 0.6).abs() < 1e-12);
/// # Ok::<(), soc_model::ParseTritError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct TritVec {
    care: Vec<u64>,
    value: Vec<u64>,
    len: usize,
}

const WORD_BITS: usize = 64;

fn words_for(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

impl TritVec {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a vector of `len` don't-care symbols.
    ///
    /// ```
    /// use soc_model::{Trit, TritVec};
    /// let v = TritVec::all_x(10);
    /// assert_eq!(v.len(), 10);
    /// assert_eq!(v.count_cares(), 0);
    /// ```
    pub fn all_x(len: usize) -> Self {
        TritVec {
            care: vec![0; words_for(len)],
            value: vec![0; words_for(len)],
            len,
        }
    }

    /// Creates a vector with capacity for `len` symbols (starting empty).
    pub fn with_capacity(len: usize) -> Self {
        TritVec {
            care: Vec::with_capacity(words_for(len)),
            value: Vec::with_capacity(words_for(len)),
            len: 0,
        }
    }

    /// Number of symbols stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no symbols are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a symbol.
    pub fn push(&mut self, t: Trit) {
        let idx = self.len;
        if idx / WORD_BITS == self.care.len() {
            self.care.push(0);
            self.value.push(0);
        }
        self.len += 1;
        self.set(idx, t);
    }

    /// Returns the symbol at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    #[inline]
    pub fn get(&self, idx: usize) -> Trit {
        assert!(
            idx < self.len,
            "index {idx} out of bounds (len {})",
            self.len
        );
        let (w, b) = (idx / WORD_BITS, idx % WORD_BITS);
        if (self.care[w] >> b) & 1 == 0 {
            Trit::X
        } else if (self.value[w] >> b) & 1 == 1 {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// Overwrites the symbol at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    #[inline]
    pub fn set(&mut self, idx: usize, t: Trit) {
        assert!(
            idx < self.len,
            "index {idx} out of bounds (len {})",
            self.len
        );
        let (w, b) = (idx / WORD_BITS, idx % WORD_BITS);
        let mask = 1u64 << b;
        match t {
            Trit::X => {
                self.care[w] &= !mask;
                self.value[w] &= !mask;
            }
            Trit::Zero => {
                self.care[w] |= mask;
                self.value[w] &= !mask;
            }
            Trit::One => {
                self.care[w] |= mask;
                self.value[w] |= mask;
            }
        }
    }

    /// The packed care-mask plane: bit `i % 64` of word `i / 64` is set
    /// when symbol `i` is a care bit. Trailing bits beyond
    /// [`len`](Self::len) are zero.
    pub fn care_words(&self) -> &[u64] {
        &self.care
    }

    /// The packed value plane, aligned with [`care_words`](Self::care_words).
    /// Don't-care positions (and trailing bits) are kept `0`, so plane-wide
    /// popcounts count care-ones directly.
    pub fn value_words(&self) -> &[u64] {
        &self.value
    }

    /// Number of specified (care) symbols.
    pub fn count_cares(&self) -> usize {
        self.care.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of care symbols with value 1.
    pub fn count_ones(&self) -> usize {
        self.value.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of care symbols with value 0.
    pub fn count_zeros(&self) -> usize {
        self.count_cares() - self.count_ones()
    }

    /// Fraction of symbols that are care bits (0.0 for an empty vector).
    pub fn care_density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_cares() as f64 / self.len as f64
        }
    }

    /// Iterates over the symbols.
    pub fn iter(&self) -> Iter<'_> {
        Iter { vec: self, idx: 0 }
    }

    /// Returns `true` when the fully specified bit vector `bits` satisfies
    /// every care bit of this cube. `bits[i]` is the logic value at position
    /// `i`.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.len()`.
    ///
    /// ```
    /// use soc_model::TritVec;
    /// let cube: TritVec = "1X0".parse()?;
    /// assert!(cube.is_satisfied_by(&[true, true, false]));
    /// assert!(!cube.is_satisfied_by(&[false, true, false]));
    /// # Ok::<(), soc_model::ParseTritError>(())
    /// ```
    pub fn is_satisfied_by(&self, bits: &[bool]) -> bool {
        assert_eq!(bits.len(), self.len, "length mismatch");
        bits.iter()
            .enumerate()
            .all(|(i, &b)| self.get(i).accepts(b))
    }

    /// Returns `true` when `other` is compatible with `self`: at every
    /// position where both are care bits the values agree.
    pub fn is_compatible_with(&self, other: &TritVec) -> bool {
        if self.len != other.len {
            return false;
        }
        self.care
            .iter()
            .zip(&other.care)
            .zip(self.value.iter().zip(&other.value))
            .all(|((&ca, &cb), (&va, &vb))| {
                let both = ca & cb;
                (va ^ vb) & both == 0
            })
    }
}

impl FromStr for TritVec {
    type Err = ParseTritError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut v = TritVec::with_capacity(s.len());
        for c in s.chars() {
            v.push(Trit::try_from(c)?);
        }
        Ok(v)
    }
}

impl FromIterator<Trit> for TritVec {
    fn from_iter<I: IntoIterator<Item = Trit>>(iter: I) -> Self {
        let mut v = TritVec::new();
        v.extend(iter);
        v
    }
}

impl Extend<Trit> for TritVec {
    fn extend<I: IntoIterator<Item = Trit>>(&mut self, iter: I) {
        for t in iter {
            self.push(t);
        }
    }
}

impl fmt::Display for TritVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in self.iter() {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a TritVec {
    type Item = Trit;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the symbols of a [`TritVec`], produced by [`TritVec::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    vec: &'a TritVec,
    idx: usize,
}

impl Iterator for Iter<'_> {
    type Item = Trit;

    fn next(&mut self) -> Option<Trit> {
        if self.idx < self.vec.len() {
            let t = self.vec.get(self.idx);
            self.idx += 1;
            Some(t)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vec.len() - self.idx;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trit_roundtrip_chars() {
        for (c, t) in [('0', Trit::Zero), ('1', Trit::One), ('X', Trit::X)] {
            assert_eq!(Trit::try_from(c).unwrap(), t);
            assert_eq!(t.to_char(), c);
        }
        assert_eq!(Trit::try_from('-').unwrap(), Trit::X);
        assert_eq!(Trit::try_from('x').unwrap(), Trit::X);
        assert!(Trit::try_from('2').is_err());
    }

    #[test]
    fn trit_accepts() {
        assert!(Trit::X.accepts(true));
        assert!(Trit::X.accepts(false));
        assert!(Trit::One.accepts(true));
        assert!(!Trit::One.accepts(false));
        assert!(Trit::Zero.accepts(false));
        assert!(!Trit::Zero.accepts(true));
    }

    #[test]
    fn push_get_set() {
        let mut v = TritVec::new();
        v.push(Trit::Zero);
        v.push(Trit::One);
        v.push(Trit::X);
        assert_eq!(v.len(), 3);
        assert_eq!(v.get(0), Trit::Zero);
        assert_eq!(v.get(1), Trit::One);
        assert_eq!(v.get(2), Trit::X);
        v.set(0, Trit::One);
        v.set(1, Trit::X);
        v.set(2, Trit::Zero);
        assert_eq!(v.get(0), Trit::One);
        assert_eq!(v.get(1), Trit::X);
        assert_eq!(v.get(2), Trit::Zero);
    }

    #[test]
    fn spans_word_boundaries() {
        let mut v = TritVec::all_x(200);
        for i in (0..200).step_by(3) {
            v.set(i, Trit::One);
        }
        for i in 0..200 {
            if i % 3 == 0 {
                assert_eq!(v.get(i), Trit::One, "at {i}");
            } else {
                assert_eq!(v.get(i), Trit::X, "at {i}");
            }
        }
        assert_eq!(v.count_ones(), 200usize.div_ceil(3));
    }

    #[test]
    fn counts_and_density() {
        let v: TritVec = "0011XX01".parse().unwrap();
        assert_eq!(v.count_cares(), 6);
        assert_eq!(v.count_ones(), 3);
        assert_eq!(v.count_zeros(), 3);
        assert!((v.care_density() - 0.75).abs() < 1e-12);
        assert_eq!(TritVec::new().care_density(), 0.0);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let s = "01XX10X";
        let v: TritVec = s.parse().unwrap();
        assert_eq!(v.to_string(), s);
        assert!("012".parse::<TritVec>().is_err());
    }

    #[test]
    fn satisfaction() {
        let v: TritVec = "1X0X".parse().unwrap();
        assert!(v.is_satisfied_by(&[true, false, false, true]));
        assert!(v.is_satisfied_by(&[true, true, false, false]));
        assert!(!v.is_satisfied_by(&[true, true, true, false]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn satisfaction_length_mismatch_panics() {
        let v: TritVec = "1X".parse().unwrap();
        v.is_satisfied_by(&[true]);
    }

    #[test]
    fn compatibility() {
        let a: TritVec = "1X0X".parse().unwrap();
        let b: TritVec = "110X".parse().unwrap();
        let c: TritVec = "0X0X".parse().unwrap();
        assert!(a.is_compatible_with(&b));
        assert!(b.is_compatible_with(&a));
        assert!(!a.is_compatible_with(&c));
        let short: TritVec = "1X".parse().unwrap();
        assert!(!a.is_compatible_with(&short));
    }

    #[test]
    fn iterator_collects() {
        let v: TritVec = "10X".parse().unwrap();
        let trits: Vec<Trit> = v.iter().collect();
        assert_eq!(trits, vec![Trit::One, Trit::Zero, Trit::X]);
        let rebuilt: TritVec = trits.into_iter().collect();
        assert_eq!(rebuilt, v);
        assert_eq!(v.iter().len(), 3);
    }

    #[test]
    fn all_x_has_no_cares() {
        let v = TritVec::all_x(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_cares(), 0);
        assert_eq!(v.count_ones(), 0);
    }
}
