//! Property tests for the data-model crate: the packed ternary vector is
//! checked against a naive `Vec<Trit>` model, the cube generator against
//! its statistical contract, and the text format against roundtripping.

#![forbid(unsafe_code)]

use proptest::prelude::*;

use soc_model::format::{parse_soc, write_soc};
use soc_model::{Core, CubeSynthesis, ScanArchitecture, Soc, Trit, TritVec};

fn trit() -> impl Strategy<Value = Trit> {
    prop_oneof![Just(Trit::Zero), Just(Trit::One), Just(Trit::X)]
}

/// Random edit operations applied to both the packed and the naive vector.
#[derive(Debug, Clone)]
enum Op {
    Push(Trit),
    Set(usize, Trit),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        trit().prop_map(Op::Push),
        (any::<usize>(), trit()).prop_map(|(i, t)| Op::Set(i, t)),
    ]
}

proptest! {
    #[test]
    fn tritvec_matches_naive_model(ops in proptest::collection::vec(op(), 0..300)) {
        let mut packed = TritVec::new();
        let mut naive: Vec<Trit> = Vec::new();
        for op in ops {
            match op {
                Op::Push(t) => {
                    packed.push(t);
                    naive.push(t);
                }
                Op::Set(i, t) => {
                    if !naive.is_empty() {
                        let i = i % naive.len();
                        packed.set(i, t);
                        naive[i] = t;
                    }
                }
            }
        }
        prop_assert_eq!(packed.len(), naive.len());
        for (i, &t) in naive.iter().enumerate() {
            prop_assert_eq!(packed.get(i), t, "index {}", i);
        }
        prop_assert_eq!(packed.count_cares(), naive.iter().filter(|t| t.is_care()).count());
        prop_assert_eq!(
            packed.count_ones(),
            naive.iter().filter(|&&t| t == Trit::One).count()
        );
        let collected: TritVec = naive.iter().copied().collect();
        prop_assert_eq!(collected, packed);
    }

    #[test]
    fn compatibility_is_symmetric_and_reflexive(
        a in proptest::collection::vec(trit(), 0..80),
        b in proptest::collection::vec(trit(), 0..80),
    ) {
        let va: TritVec = a.into_iter().collect();
        let vb: TritVec = b.into_iter().collect();
        prop_assert!(va.is_compatible_with(&va));
        prop_assert_eq!(va.is_compatible_with(&vb), vb.is_compatible_with(&va));
    }

    #[test]
    fn generated_cube_length_and_determinism(
        bits in 1u32..500,
        patterns in 1u32..20,
        density in 0.0f64..1.0,
        seed: u64,
    ) {
        let core = Core::builder("g")
            .inputs(bits)
            .pattern_count(patterns)
            .build()
            .unwrap();
        let a = CubeSynthesis::new(density).synthesize(&core, seed);
        let b = CubeSynthesis::new(density).synthesize(&core, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.pattern_count(), patterns as usize);
        prop_assert_eq!(a.bits_per_pattern(), bits as usize);
    }

    #[test]
    fn generator_density_tracks_target(density in 0.05f64..0.95) {
        let core = Core::builder("d")
            .inputs(4000)
            .pattern_count(4)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(density).synthesize(&core, 7);
        let got = ts.care_density();
        prop_assert!(
            (got - density).abs() < 0.12,
            "target {} got {}", density, got
        );
    }

    #[test]
    fn format_roundtrips_arbitrary_hard_socs(
        chains in proptest::collection::vec(1u32..60, 1..5),
        inputs in 0u32..40,
        outputs in 0u32..40,
        bidirs in 0u32..10,
        patterns in 1u32..300,
    ) {
        prop_assume!(inputs + bidirs > 0 || !chains.is_empty());
        let core = Core::builder("c0")
            .inputs(inputs)
            .outputs(outputs)
            .bidirs(bidirs)
            .scan(ScanArchitecture::Fixed { chain_lengths: chains })
            .pattern_count(patterns)
            .care_density(0.5)
            .build()
            .unwrap();
        let soc = Soc::new("rt", vec![core]);
        let reparsed = parse_soc(&write_soc(&soc)).unwrap();
        prop_assert_eq!(reparsed, soc);
    }
}
