//! Fingerprint-keyed incremental lint cache.
//!
//! The per-file stage ([`crate::facts::analyze_file`]) is the expensive
//! part of a workspace run — lexing, parsing, and the taint walk. Its
//! result depends only on the file's path and contents, so it is cached
//! as one artifact per file, keyed by an FNV-1a content fingerprint
//! (mirroring the planner's profile cache). The global fixpoints in
//! [`crate::graph`] are cheap and re-run every time over the full fact
//! set, which is what makes the "edited file plus its call-graph
//! neighborhood" re-analysis sound: the neighborhood is *always*
//! re-analyzed, from cached facts.
//!
//! The artifact is a versioned, line-based text format (tab-separated
//! records, escaped fields). Any anomaly — bad header, short record,
//! unparsable number — is a cache miss, never an error: a corrupt cache
//! can cost time, not correctness. Writes are atomic (`tmp` + rename) so
//! concurrent runs see either the old or the new artifact.

use std::path::Path;

use crate::facts::{
    ArgFlow, CallFact, FileAnalysis, FileFacts, FnFact, GlobalAllows, LoopFact, LoopKind,
    PanicFact, ParamSink,
};
use crate::rules::Diagnostic;

/// Format header; bump the version whenever record shapes or any
/// analysis semantics change — a stale-version artifact is a miss.
const HEADER: &str = "soclint-cache v2";

/// FNV-1a 64-bit over the file contents.
fn fingerprint(source: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in source.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Artifact file name: sanitized path prefix + content fingerprint.
fn artifact_name(rel_path: &str, source: &str) -> String {
    let safe: String = rel_path
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("{safe}-{:016x}.lint", fingerprint(source))
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// `Option<String>` for ident-shaped fields: `-` is `None` (identifiers
/// can never be `-`).
fn opt(s: &Option<String>) -> String {
    s.as_deref().map(esc).unwrap_or_else(|| "-".to_string())
}

fn unopt(s: &str) -> Option<Option<String>> {
    if s == "-" {
        Some(None)
    } else {
        unesc(s).map(Some)
    }
}

/// Serializes one file's analysis to the artifact text.
fn render(analysis: &FileAnalysis) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    let mut rec = |parts: &[String]| {
        out.push_str(&parts.join("\t"));
        out.push('\n');
    };
    rec(&["path".into(), esc(&analysis.facts.path)]);
    for d in &analysis.diags {
        rec(&[
            "D".into(),
            esc(&d.file),
            d.line.to_string(),
            esc(&d.rule),
            esc(&d.message),
        ]);
    }
    for d in &analysis.allowed {
        rec(&[
            "N".into(),
            esc(&d.file),
            d.line.to_string(),
            esc(&d.rule),
            esc(&d.message),
        ]);
    }
    for f in &analysis.facts.fns {
        rec(&[
            "F".into(),
            esc(&f.name),
            f.line.to_string(),
            u32::from(f.polls).to_string(),
            f.params
                .iter()
                .map(|p| esc(p))
                .collect::<Vec<_>>()
                .join(","),
        ]);
        if let Some(p) = &f.panic {
            rec(&["P".into(), p.line.to_string(), esc(&p.what)]);
        }
        for c in &f.calls {
            rec(&[
                "C".into(),
                c.line.to_string(),
                esc(&c.name),
                opt(&c.qual),
                u32::from(c.method).to_string(),
                opt(&c.recv),
            ]);
        }
        for l in &f.loops {
            rec(&[
                "L".into(),
                l.line.to_string(),
                l.kind.keyword().into(),
                u32::from(l.polls).to_string(),
                l.calls
                    .iter()
                    .map(u32::to_string)
                    .collect::<Vec<_>>()
                    .join(","),
            ]);
        }
        for s in &f.param_sinks {
            let n = |v: Option<u32>| v.map(|x| x.to_string()).unwrap_or_else(|| "-".into());
            rec(&["S".into(), esc(&s.param), n(s.arith), n(s.index)]);
        }
        for a in &f.arg_flows {
            rec(&[
                "A".into(),
                a.call.to_string(),
                a.pos.to_string(),
                opt(&a.root),
                esc(&a.chain),
                u32::from(a.guarded).to_string(),
            ]);
        }
    }
    for (root, leaf) in &analysis.facts.uses {
        rec(&["U".into(), esc(root), esc(leaf)]);
    }
    for rule in &analysis.facts.allows.file_wide {
        rec(&["Wf".into(), esc(rule)]);
    }
    for (rule, lines) in &analysis.facts.allows.lines {
        for line in lines {
            rec(&["Wl".into(), esc(rule), line.to_string()]);
        }
    }
    out.push_str("end\n");
    out
}

/// Parses an artifact back; `None` on any anomaly.
fn parse_artifact(text: &str, expect_path: &str) -> Option<FileAnalysis> {
    let mut lines = text.lines();
    if lines.next()? != HEADER {
        return None;
    }
    let mut diags = Vec::new();
    let mut allowed = Vec::new();
    let mut facts = FileFacts {
        path: String::new(),
        fns: Vec::new(),
        uses: Vec::new(),
        allows: GlobalAllows::default(),
    };
    let mut ended = false;
    for line in lines {
        if ended {
            return None; // trailing junk
        }
        if line == "end" {
            ended = true;
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let num = |s: &str| s.parse::<u32>().ok();
        match fields.first().copied()? {
            "path" if fields.len() == 2 => facts.path = unesc(fields[1])?,
            "D" if fields.len() == 5 => diags.push(Diagnostic {
                file: unesc(fields[1])?,
                line: num(fields[2])?,
                rule: unesc(fields[3])?,
                message: unesc(fields[4])?,
            }),
            "N" if fields.len() == 5 => allowed.push(Diagnostic {
                file: unesc(fields[1])?,
                line: num(fields[2])?,
                rule: unesc(fields[3])?,
                message: unesc(fields[4])?,
            }),
            "F" if fields.len() == 5 => {
                let params = if fields[4].is_empty() {
                    Vec::new()
                } else {
                    fields[4]
                        .split(',')
                        .map(unesc)
                        .collect::<Option<Vec<_>>>()?
                };
                facts.fns.push(FnFact {
                    name: unesc(fields[1])?,
                    line: num(fields[2])?,
                    polls: fields[3] == "1",
                    params,
                    panic: None,
                    calls: Vec::new(),
                    loops: Vec::new(),
                    param_sinks: Vec::new(),
                    arg_flows: Vec::new(),
                });
            }
            "P" if fields.len() == 3 => {
                facts.fns.last_mut()?.panic = Some(PanicFact {
                    line: num(fields[1])?,
                    what: unesc(fields[2])?,
                });
            }
            "C" if fields.len() == 6 => facts.fns.last_mut()?.calls.push(CallFact {
                line: num(fields[1])?,
                name: unesc(fields[2])?,
                qual: unopt(fields[3])?,
                method: fields[4] == "1",
                recv: unopt(fields[5])?,
            }),
            "L" if fields.len() == 5 => {
                let kind = match fields[2] {
                    "loop" => LoopKind::Loop,
                    "while" => LoopKind::While,
                    "for" => LoopKind::For,
                    _ => return None,
                };
                let calls = if fields[4].is_empty() {
                    Vec::new()
                } else {
                    fields[4].split(',').map(num).collect::<Option<Vec<_>>>()?
                };
                facts.fns.last_mut()?.loops.push(LoopFact {
                    line: num(fields[1])?,
                    kind,
                    polls: fields[3] == "1",
                    calls,
                });
            }
            "S" if fields.len() == 4 => {
                let n = |s: &str| -> Option<Option<u32>> {
                    if s == "-" {
                        Some(None)
                    } else {
                        s.parse::<u32>().ok().map(Some)
                    }
                };
                facts.fns.last_mut()?.param_sinks.push(ParamSink {
                    param: unesc(fields[1])?,
                    arith: n(fields[2])?,
                    index: n(fields[3])?,
                });
            }
            "A" if fields.len() == 6 => facts.fns.last_mut()?.arg_flows.push(ArgFlow {
                call: num(fields[1])?,
                pos: num(fields[2])?,
                root: unopt(fields[3])?,
                chain: unesc(fields[4])?,
                guarded: fields[5] == "1",
            }),
            "U" if fields.len() == 3 => {
                facts.uses.push((unesc(fields[1])?, unesc(fields[2])?));
            }
            "Wf" if fields.len() == 2 => {
                facts.allows.file_wide.insert(unesc(fields[1])?);
            }
            "Wl" if fields.len() == 3 => {
                facts
                    .allows
                    .lines
                    .entry(unesc(fields[1])?)
                    .or_default()
                    .insert(num(fields[2])?);
            }
            _ => return None,
        }
    }
    if !ended || facts.path != expect_path {
        return None;
    }
    Some(FileAnalysis {
        diags,
        allowed,
        facts,
    })
}

/// Loads the cached analysis for (`rel_path`, `source`); `None` on any
/// miss (absent, stale version, corrupt, path mismatch).
pub fn load(dir: &Path, rel_path: &str, source: &str) -> Option<FileAnalysis> {
    let text = std::fs::read_to_string(dir.join(artifact_name(rel_path, source))).ok()?;
    parse_artifact(&text, rel_path)
}

/// Stores the analysis, atomically, evicting artifacts for older
/// contents of the same path. All I/O failures are silently ignored —
/// caching is best-effort.
pub fn store(dir: &Path, rel_path: &str, source: &str, analysis: &FileAnalysis) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let name = artifact_name(rel_path, source);
    // Evict stale fingerprints for this path so the cache dir doesn't
    // grow with edit history.
    let prefix: String = rel_path
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Some(existing) = entry.file_name().to_str() {
                if existing != name
                    && existing.ends_with(".lint")
                    && existing
                        .strip_prefix(&prefix)
                        .is_some_and(|rest| rest.len() == 22 && rest.starts_with('-'))
                {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }
    let tmp = dir.join(format!("{name}.tmp"));
    if std::fs::write(&tmp, render(analysis)).is_ok() {
        let _ = std::fs::rename(&tmp, dir.join(name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::analyze_file;

    const SRC: &str = "fn f(s: &str, v: &[u8]) -> u8 {\n\
                       let n: usize = s.parse().ok()?;\n\
                       while n > v.len() { helper(n); }\n\
                       v[n]\n\
                       }\n";

    #[test]
    fn round_trip_is_lossless() {
        let a = analyze_file("crates/tdcsoc/src/planfile.rs", SRC);
        let parsed =
            parse_artifact(&render(&a), "crates/tdcsoc/src/planfile.rs").expect("round trip");
        assert_eq!(parsed, a);
    }

    #[test]
    fn round_trip_survives_special_characters() {
        let src = "fn f() { x.unwrap(); } // soclint: allow(panic-reach) -- tab\\there\n";
        let a = analyze_file("crates/tdcsoc/src/vectors.rs", src);
        let parsed =
            parse_artifact(&render(&a), "crates/tdcsoc/src/vectors.rs").expect("round trip");
        assert_eq!(parsed, a);
    }

    #[test]
    fn store_load_hits_and_misses() {
        let dir = std::env::temp_dir().join(format!(
            "soclint-cache-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let a = analyze_file("crates/tdcsoc/src/planfile.rs", SRC);
        assert!(
            load(&dir, "crates/tdcsoc/src/planfile.rs", SRC).is_none(),
            "cold miss"
        );
        store(&dir, "crates/tdcsoc/src/planfile.rs", SRC, &a);
        let hit = load(&dir, "crates/tdcsoc/src/planfile.rs", SRC).expect("warm hit");
        assert_eq!(hit, a);
        // Edited contents miss; storing them evicts the old artifact.
        let edited = format!("{SRC}// trailing comment\n");
        assert!(load(&dir, "crates/tdcsoc/src/planfile.rs", &edited).is_none());
        let b = analyze_file("crates/tdcsoc/src/planfile.rs", &edited);
        store(&dir, "crates/tdcsoc/src/planfile.rs", &edited, &b);
        assert!(
            load(&dir, "crates/tdcsoc/src/planfile.rs", SRC).is_none(),
            "old fingerprint evicted"
        );
        let count = std::fs::read_dir(&dir).expect("dir").count();
        assert_eq!(count, 1, "one artifact per path");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifacts_are_misses() {
        for text in [
            "",
            "garbage",
            "soclint-cache v0\npath\tx\nend\n",
            &format!("{HEADER}\npath\tother.rs\nend\n"),
            &format!("{HEADER}\npath\tx.rs\nD\tonly\ttwo\nend\n"),
            &format!("{HEADER}\npath\tx.rs\nP\t3\torphan panic\nend\n"),
            &format!("{HEADER}\npath\tx.rs\n"),
            &format!("{HEADER}\npath\tx.rs\nend\ntrailing\n"),
            &format!("{HEADER}\npath\tx.rs\nF\tf\tnotanumber\t0\t\nend\n"),
        ] {
            assert!(parse_artifact(text, "x.rs").is_none(), "{text:?}");
        }
    }
}
