//! Pass 2b: closure-capture determinism analysis.
//!
//! The determinism contract (DESIGN.md §5) requires bit-identical plans
//! at any worker count. Jobs submitted to `parpool` run in an arbitrary
//! interleaving, so the only safe shapes are *pure thunks* (capture by
//! value or shared immutable reference, return the result) reduced **by
//! job index** with a fixed tie-break. Three rules police that:
//!
//! - `capture-mut` — inside a nullary `move ||` closure (the job-thunk
//!   shape `FnOnce() -> T`), a captured binding reached through a
//!   shared-mutation API (`lock`, `borrow_mut`, `store`, `fetch_*`, …),
//!   assigned to, compound-assigned, deref-assigned, or borrowed `&mut`.
//!   Mutating shared state from a job makes the outcome depend on worker
//!   interleaving.
//! - `relaxed-ordering` — `Ordering::Relaxed` in a determinism-scoped
//!   crate. A relaxed atomic that feeds a result can observe stale values
//!   differently per run; advisory-only uses (claim counters, pruning
//!   bounds) carry an `allow` explaining why the value never reaches the
//!   plan.
//! - `order-sensitive-reduce` — a reduction (`min`, `max`, `fold`,
//!   `reduce`, `*_by`, `*_by_key`) whose receiver chain drains a
//!   completion-order stream (`recv`, `try_recv`, `try_iter`, `steal`).
//!   This is the exact bug class the index-ordered reduction in
//!   `tam::optimize` was built to prevent.
//! - `dsan-escape` — a captured binding reached from a job thunk through
//!   a shared-access method (the mutation set above plus the read side:
//!   `load`, `borrow`, `read`) whose declaration does not flow through
//!   the `parpool::dsan` instrumented accessors (`dsan::Cell`,
//!   `dsan::AtomicCell`, `dsan::Shadow`). Uninstrumented shared state is
//!   invisible to the determinism sanitizer, so its races escape the
//!   shadow log.
//!
//! Diagnostics render the capture chain (which closure, which line, how
//! it is mutated) so a finding is auditable from the message alone.
//! Known false-negative classes are documented in DESIGN.md §13.

use std::collections::BTreeSet;

use crate::lexer::{Token, TokenKind};
use crate::parse::{Ast, Closure, LetBinding};

/// Method names whose receiver is (or guards) shared mutable state.
const SHARED_MUTATION_METHODS: &[&str] = &[
    "lock",
    "borrow_mut",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_min",
    "fetch_max",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "get_mut",
    "write",
    "send",
];

/// Reduction adapters whose result depends on element order (or on a
/// running accumulator).
const REDUCERS: &[&str] = &[
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "reduce",
    "fold",
];

/// Read-side shared-access methods: they don't mutate, but an
/// uninstrumented read still races with a concurrent writer, so
/// `dsan-escape` checks them alongside [`SHARED_MUTATION_METHODS`].
const SHARED_READ_METHODS: &[&str] = &["load", "borrow", "read"];

/// Channel/deque drains that yield in completion order, not job order.
const COMPLETION_ORDER_SOURCES: &[&str] = &[
    "recv",
    "try_recv",
    "recv_timeout",
    "recv_deadline",
    "try_iter",
    "steal",
];

fn at(toks: &[Token], sig: &[usize], j: usize, c: char) -> bool {
    sig.get(j).is_some_and(|&t| toks[t].is_punct(c))
}

fn ident_at<'t>(toks: &'t [Token], sig: &[usize], j: usize) -> Option<&'t str> {
    sig.get(j).and_then(|&t| toks[t].ident())
}

/// `capture-mut`: walks every closure tree in the file and analyzes the
/// nullary `move ||` ones (job thunks).
pub fn check_captures(
    ast: &Ast,
    toks: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    push: &mut dyn FnMut(&str, u32, String),
) {
    for f in &ast.fns {
        for c in &f.closures {
            walk_closure(c, ast, toks, in_test, push);
        }
    }
}

fn walk_closure(
    c: &Closure,
    ast: &Ast,
    toks: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    push: &mut dyn FnMut(&str, u32, String),
) {
    if c.is_move && c.nullary {
        check_job_thunk(c, ast, toks, in_test, push);
    }
    for nested in &c.closures {
        walk_closure(nested, ast, toks, in_test, push);
    }
}

/// Analyzes one job thunk for mutation of captured state. Locals of the
/// thunk *and* of every nested closure are treated as non-captures (the
/// flattening over-approximates scope, which can only suppress, never
/// invent, a finding on locals).
fn check_job_thunk(
    c: &Closure,
    ast: &Ast,
    toks: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    push: &mut dyn FnMut(&str, u32, String),
) {
    let mut locals: BTreeSet<&str> = BTreeSet::new();
    collect_locals(c, &mut locals);

    let sig = &ast.sig;
    let (start, end) = c.body;
    let mut j = start;
    while j < end.min(sig.len()) {
        let Some(name) = ident_at(toks, sig, j) else {
            j += 1;
            continue;
        };
        let line = toks[sig[j]].line;
        // Skip method names / path segments / locals / test code.
        let after_dot = j > 0 && (at(toks, sig, j - 1, '.') || at(toks, sig, j - 1, ':'));
        let before_path = at(toks, sig, j + 1, ':') && at(toks, sig, j + 2, ':');
        if after_dot || before_path || locals.contains(name) || in_test(line) {
            j += 1;
            continue;
        }

        // `&mut name` — a mutable borrow of a capture escaping the thunk.
        if j >= 2
            && ident_at(toks, sig, j - 1) == Some("mut")
            && at(toks, sig, j.wrapping_sub(2), '&')
        {
            push(
                "capture-mut",
                line,
                capture_msg(name, c.line, line, "borrowed `&mut`"),
            );
            j += 1;
            continue;
        }

        // Step over index groups: `queue[i].lock()` mutates `queue`.
        let mut k = j + 1;
        while at(toks, sig, k, '[') {
            k = skip_group(toks, sig, k, '[', ']');
        }

        if at(toks, sig, k, '.') {
            if let Some(m) = ident_at(toks, sig, k + 1) {
                if SHARED_MUTATION_METHODS.contains(&m) && at(toks, sig, k + 2, '(') {
                    push(
                        "capture-mut",
                        line,
                        capture_msg(name, c.line, line, &format!("mutated via `.{m}(…)`")),
                    );
                }
            }
        } else if is_assignment(toks, sig, j, k) {
            let deref = j > 0 && at(toks, sig, j - 1, '*');
            let how = if deref {
                "deref-assigned (`*… = …`)"
            } else {
                "assigned"
            };
            push("capture-mut", line, capture_msg(name, c.line, line, how));
        }
        j += 1;
    }
}

fn capture_msg(name: &str, closure_line: u32, line: u32, how: &str) -> String {
    format!(
        "`{name}` is captured by the `move ||` job closure at line {closure_line} and {how} at \
         line {line}: shared mutable state in a submitted job makes the outcome depend on worker \
         interleaving; return a value and reduce by job index instead"
    )
}

/// `dsan-escape`: captured state reached through a shared-access method
/// from a job thunk must be *dsan-bound* — declared through the
/// `parpool::dsan` instrumented accessors — so the determinism sanitizer
/// sees every access. Binding is resolved by name across the whole file
/// (no scope resolution): a `let` whose initializer mentions `dsan`, or a
/// `name: [&]dsan::…` type ascription, binds that name everywhere. The
/// over-approximation only suppresses findings, mirroring the local
/// flattening in [`check_job_thunk`].
pub fn check_dsan_escape(
    ast: &Ast,
    toks: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    push: &mut dyn FnMut(&str, u32, String),
) {
    let bound = dsan_bound_names(ast, toks);
    for f in &ast.fns {
        for c in &f.closures {
            walk_dsan(c, ast, toks, &bound, in_test, push);
        }
    }
}

fn walk_dsan(
    c: &Closure,
    ast: &Ast,
    toks: &[Token],
    bound: &BTreeSet<&str>,
    in_test: &dyn Fn(u32) -> bool,
    push: &mut dyn FnMut(&str, u32, String),
) {
    if c.is_move && c.nullary {
        check_dsan_thunk(c, ast, toks, bound, in_test, push);
    }
    for nested in &c.closures {
        walk_dsan(nested, ast, toks, bound, in_test, push);
    }
}

/// The thunk walk for `dsan-escape`: same skips as [`check_job_thunk`]
/// (method names, path segments, locals, test code) plus dsan-bound
/// names; flags `.m(…)` for `m` in the mutation *or* read access set.
fn check_dsan_thunk(
    c: &Closure,
    ast: &Ast,
    toks: &[Token],
    bound: &BTreeSet<&str>,
    in_test: &dyn Fn(u32) -> bool,
    push: &mut dyn FnMut(&str, u32, String),
) {
    let mut locals: BTreeSet<&str> = BTreeSet::new();
    collect_locals(c, &mut locals);

    let sig = &ast.sig;
    let (start, end) = c.body;
    let mut j = start;
    while j < end.min(sig.len()) {
        let Some(name) = ident_at(toks, sig, j) else {
            j += 1;
            continue;
        };
        let line = toks[sig[j]].line;
        let after_dot = j > 0 && (at(toks, sig, j - 1, '.') || at(toks, sig, j - 1, ':'));
        let before_path = at(toks, sig, j + 1, ':') && at(toks, sig, j + 2, ':');
        if after_dot
            || before_path
            || locals.contains(name)
            || bound.contains(name)
            || in_test(line)
        {
            j += 1;
            continue;
        }

        let mut k = j + 1;
        while at(toks, sig, k, '[') {
            k = skip_group(toks, sig, k, '[', ']');
        }
        if at(toks, sig, k, '.') {
            if let Some(m) = ident_at(toks, sig, k + 1) {
                if (SHARED_MUTATION_METHODS.contains(&m) || SHARED_READ_METHODS.contains(&m))
                    && at(toks, sig, k + 2, '(')
                {
                    push(
                        "dsan-escape",
                        line,
                        format!(
                            "`{name}` is captured by the `move ||` job closure at line {} and \
                             reached via `.{m}(…)` at line {line} without dsan instrumentation: \
                             shared state touched from pool jobs must flow through `dsan::Cell` / \
                             `dsan::AtomicCell` / `dsan::Shadow` so the determinism sanitizer can \
                             order-check the access; wrap the binding, or `allow` with a reason \
                             explaining why the access cannot race",
                            c.line
                        ),
                    );
                }
            }
        }
        j += 1;
    }
}

/// Names declared through the dsan accessors anywhere in the file: `let`
/// bindings whose initializer mentions `dsan`, and `name: [&]dsan::…`
/// type ascriptions (fn params, struct fields, annotated lets).
fn dsan_bound_names<'a>(ast: &'a Ast, toks: &'a [Token]) -> BTreeSet<&'a str> {
    let mut bound = BTreeSet::new();
    let sig = &ast.sig;
    for f in &ast.fns {
        scan_dsan_lets(&f.lets, &f.closures, sig, toks, &mut bound);
    }
    // `name : dsan :: …` / `name : & dsan :: …` ascriptions.
    for j in 0..sig.len() {
        if ident_at(toks, sig, j) != Some("dsan")
            || !at(toks, sig, j + 1, ':')
            || !at(toks, sig, j + 2, ':')
        {
            continue;
        }
        let mut p = j;
        if p >= 1 && at(toks, sig, p - 1, '&') {
            p -= 1;
        }
        // A single `:` before (not `::` — that is a path like
        // `parpool::dsan`), preceded by the ascribed name.
        if p >= 2 && at(toks, sig, p - 1, ':') && !at(toks, sig, p.wrapping_sub(2), ':') {
            if let Some(name) = ident_at(toks, sig, p - 2) {
                bound.insert(name);
            }
        }
    }
    bound
}

fn scan_dsan_lets<'a>(
    lets: &'a [LetBinding],
    closures: &'a [Closure],
    sig: &[usize],
    toks: &'a [Token],
    bound: &mut BTreeSet<&'a str>,
) {
    for l in lets {
        let (s, e) = l.init;
        if (s..e.min(sig.len())).any(|j| ident_at(toks, sig, j) == Some("dsan")) {
            for n in &l.names {
                bound.insert(n.as_str());
            }
        }
    }
    for c in closures {
        scan_dsan_lets(&c.lets, &c.closures, sig, toks, bound);
    }
}

/// Assignment detection at `k` (first token after the ident/index
/// groups): `=` (not `==`), or a compound `+=`-family operator.
fn is_assignment(toks: &[Token], sig: &[usize], _j: usize, k: usize) -> bool {
    let Some(&t) = sig.get(k) else { return false };
    match toks[t].kind {
        TokenKind::Punct('=') => !at(toks, sig, k + 1, '='),
        TokenKind::Punct('+' | '-' | '*' | '/' | '%' | '&' | '|' | '^') => {
            at(toks, sig, k + 1, '=')
        }
        TokenKind::Punct('<') | TokenKind::Punct('>') => {
            // `<<=` / `>>=`
            let c = toks[t].kind.clone();
            sig.get(k + 1).is_some_and(|&n| toks[n].kind == c) && at(toks, sig, k + 2, '=')
        }
        _ => false,
    }
}

fn collect_locals<'a>(c: &'a Closure, out: &mut BTreeSet<&'a str>) {
    for p in &c.params {
        out.insert(p);
    }
    for l in &c.lets {
        for n in &l.names {
            out.insert(n);
        }
    }
    for nested in &c.closures {
        collect_locals(nested, out);
    }
}

/// `relaxed-ordering`: flags `Ordering::Relaxed` (any path prefix).
pub fn check_orderings(
    toks: &[Token],
    sig: &[usize],
    in_test: &dyn Fn(u32) -> bool,
    push: &mut dyn FnMut(&str, u32, String),
) {
    for j in 3..sig.len() {
        if ident_at(toks, sig, j) == Some("Relaxed")
            && at(toks, sig, j - 1, ':')
            && at(toks, sig, j - 2, ':')
            && ident_at(toks, sig, j - 3) == Some("Ordering")
        {
            let line = toks[sig[j]].line;
            if !in_test(line) {
                push(
                    "relaxed-ordering",
                    line,
                    "`Ordering::Relaxed` on an atomic in a determinism-scoped crate: a relaxed \
                     read/update that feeds a result can differ across runs and worker counts; \
                     use `SeqCst`, or `allow` with a reason documenting why the value is \
                     advisory-only and never reaches the plan"
                        .to_string(),
                );
            }
        }
    }
}

/// `order-sensitive-reduce`: a reducer whose receiver chain contains a
/// completion-order drain. The chain is walked *backwards* from the
/// reducer through method calls, index groups, `?`, and path segments to
/// its head; idents inside receiver-side argument groups count (so
/// `results_of(rx.try_iter()).min()` is caught).
pub fn check_reductions(
    toks: &[Token],
    sig: &[usize],
    in_test: &dyn Fn(u32) -> bool,
    push: &mut dyn FnMut(&str, u32, String),
) {
    for j in 1..sig.len() {
        let Some(r) = ident_at(toks, sig, j) else {
            continue;
        };
        if !REDUCERS.contains(&r) || !at(toks, sig, j - 1, '.') || !at(toks, sig, j + 1, '(') {
            continue;
        }
        let line = toks[sig[j]].line;
        if in_test(line) {
            continue;
        }
        if let Some(src) = chain_completion_source(toks, sig, j - 1) {
            push(
                "order-sensitive-reduce",
                line,
                format!(
                    "`.{r}(…)` folds a completion-order stream (`{src}` in its receiver chain): \
                     worker finish order leaks into the result; collect results by job index and \
                     reduce with a fixed tie-break instead"
                ),
            );
        }
    }
}

/// Walks the method chain backwards from the `.` at sig index `dot`,
/// returning the first completion-order source ident found in the chain
/// (including inside receiver-side argument/index groups).
fn chain_completion_source<'t>(toks: &'t [Token], sig: &[usize], dot: usize) -> Option<&'t str> {
    let mut p = dot.checked_sub(1)?;
    loop {
        let t = &toks[sig[p]];
        match &t.kind {
            TokenKind::Punct(')') => {
                let (open, found) = skip_group_back(toks, sig, p, '(', ')');
                if found.is_some() {
                    return found;
                }
                p = open.checked_sub(1)?;
            }
            TokenKind::Punct(']') => {
                let (open, found) = skip_group_back(toks, sig, p, '[', ']');
                if found.is_some() {
                    return found;
                }
                p = open.checked_sub(1)?;
            }
            TokenKind::Punct('?') => p = p.checked_sub(1)?,
            TokenKind::Ident(name) => {
                if COMPLETION_ORDER_SOURCES.contains(&name.as_str()) {
                    // Only a *call* drains: `recv(`-shape just ahead.
                    if at(toks, sig, p + 1, '(') {
                        return Some(name);
                    }
                }
                // Continue through `.` / `::` chain links; stop at the head.
                if p >= 1 && toks[sig[p - 1]].is_punct('.') {
                    p = p.checked_sub(2)?;
                } else if p >= 2 && toks[sig[p - 1]].is_punct(':') && toks[sig[p - 2]].is_punct(':')
                {
                    p = p.checked_sub(3)?;
                } else {
                    return None;
                }
            }
            _ => return None,
        }
    }
}

/// Skips backwards over the balanced group *closing* at `close`,
/// returning the index of the opening token and any completion-order
/// source call found inside.
fn skip_group_back<'t>(
    toks: &'t [Token],
    sig: &[usize],
    close: usize,
    oc: char,
    cc: char,
) -> (usize, Option<&'t str>) {
    let mut depth = 0i32;
    let mut found = None;
    let mut p = close;
    loop {
        match &toks[sig[p]].kind {
            TokenKind::Punct(c) if *c == cc => depth += 1,
            TokenKind::Punct(c) if *c == oc => {
                depth -= 1;
                if depth == 0 {
                    return (p, found);
                }
            }
            TokenKind::Ident(name)
                if found.is_none()
                    && COMPLETION_ORDER_SOURCES.contains(&name.as_str())
                    && at(toks, sig, p + 1, '(') =>
            {
                found = Some(name.as_str());
            }
            _ => {}
        }
        match p.checked_sub(1) {
            Some(prev) => p = prev,
            None => return (0, found),
        }
    }
}

/// Skips forward over the balanced group opening at `open`, returning the
/// index just past the closing token.
fn skip_group(toks: &[Token], sig: &[usize], open: usize, oc: char, cc: char) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < sig.len() {
        match toks[sig[j]].kind {
            TokenKind::Punct(c) if c == oc => depth += 1,
            TokenKind::Punct(c) if c == cc => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn run_captures(src: &str) -> Vec<(String, u32, String)> {
        let tokens = lex(src);
        let ast = parse(&tokens);
        let mut out = Vec::new();
        check_captures(&ast, &tokens.all, &|_| false, &mut |rule, line, msg| {
            out.push((rule.to_string(), line, msg))
        });
        out
    }

    fn run_reductions(src: &str) -> Vec<(String, u32, String)> {
        let tokens = lex(src);
        let sig = tokens.significant();
        let mut out = Vec::new();
        check_reductions(&tokens.all, &sig, &|_| false, &mut |rule, line, msg| {
            out.push((rule.to_string(), line, msg))
        });
        out
    }

    #[test]
    fn lock_in_job_thunk_flagged_with_chain() {
        let src = "fn f() { let shared = x(); pool.submit(move || { shared.lock().push(1); }); }\n";
        let hits = run_captures(src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, "capture-mut");
        assert!(hits[0].2.contains("`shared`"), "{}", hits[0].2);
        assert!(hits[0].2.contains("lock"), "{}", hits[0].2);
    }

    #[test]
    fn indexed_capture_mutation_flagged() {
        let src = "fn f() { s.spawn(move || { *results[i].lock().unwrap() = Some(v); }); }\n";
        let hits = run_captures(src);
        assert!(
            hits.iter()
                .any(|(r, _, m)| r == "capture-mut" && m.contains("`results`")),
            "{hits:?}"
        );
    }

    #[test]
    fn pure_thunk_is_clean() {
        let src = "fn f() { let input = y(); pool.submit(move || { let v = work(&input); \
                   v.len() }); }\n";
        assert!(run_captures(src).is_empty());
    }

    #[test]
    fn closure_locals_are_not_captures() {
        let src = "fn f() { pool.submit(move || { let mut acc = Vec::new(); acc.push(1); \
                   acc.len() }); }\n";
        assert!(run_captures(src).is_empty());
    }

    #[test]
    fn non_move_or_unary_closures_are_skipped() {
        let src = "fn f() { items.iter().map(|x| shared.lock().use_it(x)).count(); }\n";
        assert!(run_captures(src).is_empty());
    }

    #[test]
    fn captured_assignment_flagged() {
        let src = "fn f() { s.spawn(move || { counter += 1; }); }\n";
        let hits = run_captures(src);
        assert!(hits
            .iter()
            .any(|(r, _, m)| r == "capture-mut" && m.contains("assigned")));
    }

    #[test]
    fn relaxed_ordering_detected_with_path_prefix() {
        for src in [
            "fn f() { n.fetch_add(1, Ordering::Relaxed); }\n",
            "fn f() { n.load(std::sync::atomic::Ordering::Relaxed); }\n",
        ] {
            let tokens = lex(src);
            let sig = tokens.significant();
            let mut out = Vec::new();
            check_orderings(&tokens.all, &sig, &|_| false, &mut |r, l, m| {
                out.push((r.to_string(), l, m))
            });
            assert_eq!(out.len(), 1, "{src}");
            assert_eq!(out[0].0, "relaxed-ordering");
        }
    }

    #[test]
    fn seqcst_is_clean() {
        let tokens = lex("fn f() { n.fetch_add(1, Ordering::SeqCst); }\n");
        let sig = tokens.significant();
        let mut out = Vec::new();
        check_orderings(&tokens.all, &sig, &|_| false, &mut |r, l, m| {
            out.push((r.to_string(), l, m))
        });
        assert!(out.is_empty());
    }

    #[test]
    fn completion_order_reduce_flagged() {
        let hits = run_reductions("fn f() { let best = rx.try_iter().min_by_key(|r| r.cost); }\n");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, "order-sensitive-reduce");
        assert!(hits[0].2.contains("try_iter"), "{}", hits[0].2);
    }

    #[test]
    fn receiver_arg_drain_is_caught() {
        let hits = run_reductions("fn f() { let best = costs_of(rx.recv().unwrap()).min(); }\n");
        assert!(hits.iter().any(|(_, _, m)| m.contains("recv")), "{hits:?}");
    }

    #[test]
    fn index_ordered_reduce_is_clean() {
        let hits = run_reductions(
            "fn f() { let best = results.iter().enumerate().min_by_key(|(i, r)| (r.cost, *i)); }\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn plain_fold_without_drain_is_clean() {
        assert!(
            run_reductions("fn f() { let s = v.iter().fold(0u64, |a, b| a + b); }\n").is_empty()
        );
    }

    fn run_dsan(src: &str) -> Vec<(String, u32, String)> {
        let tokens = lex(src);
        let ast = parse(&tokens);
        let mut out = Vec::new();
        check_dsan_escape(&ast, &tokens.all, &|_| false, &mut |rule, line, msg| {
            out.push((rule.to_string(), line, msg))
        });
        out
    }

    #[test]
    fn uninstrumented_load_in_thunk_flagged() {
        let src = "fn f() { let best = AtomicU64::new(0); pool.submit(move || { \
                   best.load(Ordering::SeqCst) }); }\n";
        let hits = run_dsan(src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, "dsan-escape");
        assert!(hits[0].2.contains("`best`"), "{}", hits[0].2);
        assert!(hits[0].2.contains("load"), "{}", hits[0].2);
    }

    #[test]
    fn dsan_bound_let_is_clean() {
        let src = "fn f() { let best = dsan::AtomicCell::new(\"best\", dsan::Policy::Advisory, \
                   0); pool.submit(move || { best.load(Ordering::SeqCst) }); }\n";
        assert!(run_dsan(src).is_empty(), "{:?}", run_dsan(src));
    }

    #[test]
    fn dsan_bound_param_ascription_is_clean() {
        let src = "fn f(best: &dsan::AtomicCell) { pool.submit(move || { \
                   best.load(Ordering::SeqCst) }); }\n";
        assert!(run_dsan(src).is_empty(), "{:?}", run_dsan(src));
    }

    #[test]
    fn path_prefixed_dsan_type_does_not_bind_other_names() {
        // `parpool::dsan` in a use-path must not mark anything bound.
        let src = "use parpool::dsan;\nfn f() { let best = AtomicU64::new(0); \
                   pool.submit(move || { best.load(Ordering::SeqCst) }); }\n";
        assert_eq!(run_dsan(src).len(), 1);
    }

    #[test]
    fn thunk_locals_and_mutation_methods_covered() {
        // Locals stay exempt; mutation-set methods trip dsan-escape too.
        let clean = "fn f() { pool.submit(move || { let n = AtomicU64::new(0); \
                     n.load(Ordering::SeqCst) }); }\n";
        assert!(run_dsan(clean).is_empty());
        let dirty = "fn f() { let n = AtomicU64::new(0); pool.submit(move || { \
                     n.fetch_min(1, Ordering::SeqCst) }); }\n";
        assert_eq!(run_dsan(dirty).len(), 1);
    }
}
