//! Pass 1b: per-file **facts** for the workspace call-graph analyses.
//!
//! [`crate::rules::lint_source`] checks one file in isolation; the v3
//! interprocedural rules (`cross-taint`, `cancel-coverage`, `panic-reach`)
//! need a whole-workspace view. This module extracts, from one file,
//! everything those rules consume — so the expensive per-file work can be
//! cached by content fingerprint while the cheap global fixpoints in
//! [`crate::graph`] re-run every time:
//!
//! - every function with its **call sites** (free, path-qualified, and
//!   method calls, with receiver names for the resolution heuristics);
//! - every `loop`/`while`/`for` with the call sites inside its body and
//!   whether the body polls `Deadline::expired` / `CancelToken` directly;
//! - the first **panic site** per function (`unwrap`/`expect`,
//!   `panic!`-family macros, unguarded `expr[…]` indexing);
//! - per-parameter **sink summaries** (parameter reaches raw arithmetic or
//!   an unguarded index locally) plus **argument flows**: which call-site
//!   argument positions carry a parameter onward or carry same-file
//!   source taint (`parse`/`read_*`), with the rendered chain;
//! - `use` imports (crate hints for call resolution) and the file's
//!   suppression table for the workspace rules.
//!
//! Facts exclude test-span code entirely, so the global analyses never
//! need span information. Extraction reuses the pass-1 tree and the v2
//! taint helpers; like them it never panics on garbage input.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Token, TokenKind, Tokens};
use crate::parse::{match_group, parse, Ast, FnItem, LetBinding};
use crate::rules::{lint_tokens, parse_allows, Diagnostic, WORKSPACE_RULE_IDS};
use crate::scope::{classify, test_spans};
use crate::taint;

/// Method names whose call counts as polling the cancellation contract
/// (`robust::Deadline::expired`, `CancelToken::is_cancelled` /
/// `cancel_requested`).
pub const POLL_NAMES: &[&str] = &["expired", "is_cancelled", "cancel_requested"];

/// One call site inside a function body (test spans excluded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallFact {
    /// 1-based line of the callee name token.
    pub line: u32,
    /// Callee name (the ident directly before the argument list).
    pub name: String,
    /// Path qualifier for `Qual::name(…)` calls.
    pub qual: Option<String>,
    /// True for method calls (`recv.name(…)`).
    pub method: bool,
    /// Receiver ident for method calls whose receiver is a plain name.
    pub recv: Option<String>,
}

/// Loop kinds; the cancellation rule only audits `loop` and `while`
/// (`for` iterates a bounded iterator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// A bare `loop { … }`.
    Loop,
    /// `while …` / `while let …`.
    While,
    /// `for … in …`.
    For,
}

impl LoopKind {
    /// The keyword, for messages and serialization.
    pub fn keyword(self) -> &'static str {
        match self {
            LoopKind::Loop => "loop",
            LoopKind::While => "while",
            LoopKind::For => "for",
        }
    }
}

/// One loop statement and what its body contains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopFact {
    /// 1-based line of the loop keyword.
    pub line: u32,
    /// Which loop form.
    pub kind: LoopKind,
    /// The body polls a cancellation primitive directly.
    pub polls: bool,
    /// Indices into the owning [`FnFact::calls`] for call sites whose
    /// name token sits inside the loop body.
    pub calls: Vec<u32>,
}

/// The first panic-capable site in a function (outside test spans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicFact {
    /// 1-based line of the site.
    pub line: u32,
    /// Human-readable description (`` `.unwrap()` ``, `` `panic!` ``,
    /// `slice indexing`).
    pub what: String,
}

/// Local sink summary for one parameter: the first line where the
/// parameter (or a binding derived from it) reaches a raw arithmetic or
/// unguarded index sink in this function's own body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSink {
    /// Parameter name.
    pub param: String,
    /// First raw `+`/`-`/`*` line, if any.
    pub arith: Option<u32>,
    /// First unguarded index / slice-sink line, if any.
    pub index: Option<u32>,
}

/// One tainted argument at a call site: either a parameter being
/// forwarded (`root = Some(param)`) or same-file source taint reaching the
/// call (`root = None`, with the rendered chain for diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgFlow {
    /// Index into the owning [`FnFact::calls`].
    pub call: u32,
    /// 0-based argument position.
    pub pos: u32,
    /// `Some(param)` when the taint root is the enclosing function's
    /// parameter; `None` when it originates from a source call.
    pub root: Option<String>,
    /// Rendered taint chain (`` `n` ← `parse(…)` at line 12 ``).
    pub chain: String,
    /// The carrying binding was bounds-guarded before the call.
    pub guarded: bool,
}

/// Everything the global analyses know about one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnFact {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameter binding names, in order.
    pub params: Vec<String>,
    /// The body polls a cancellation primitive directly.
    pub polls: bool,
    /// First panic-capable site, if any.
    pub panic: Option<PanicFact>,
    /// Call sites, in source order.
    pub calls: Vec<CallFact>,
    /// Loop statements, in source order.
    pub loops: Vec<LoopFact>,
    /// Per-parameter local sink summaries (parameters with no sink are
    /// omitted).
    pub param_sinks: Vec<ParamSink>,
    /// Tainted call arguments, in source order.
    pub arg_flows: Vec<ArgFlow>,
}

/// Suppression table for the workspace-level rules only.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GlobalAllows {
    /// Rules suppressed file-wide.
    pub file_wide: BTreeSet<String>,
    /// Rule → suppressed lines.
    pub lines: BTreeMap<String, BTreeSet<u32>>,
}

impl GlobalAllows {
    /// True when `rule` is suppressed on `line`.
    pub fn permits(&self, rule: &str, line: u32) -> bool {
        self.file_wide.contains(rule) || self.lines.get(rule).is_some_and(|l| l.contains(&line))
    }
}

/// All facts for one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileFacts {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Functions outside test spans (empty for all-test files).
    pub fns: Vec<FnFact>,
    /// `use` imports as (root segment, leaf name) pairs — crate hints for
    /// call resolution.
    pub uses: Vec<(String, String)>,
    /// Suppressions for the workspace rules.
    pub allows: GlobalAllows,
}

/// One file's complete per-file analysis: the local diagnostics plus the
/// facts for the global passes. This is the unit the incremental cache
/// stores and restores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileAnalysis {
    /// Local (single-file) diagnostics from [`crate::rules`].
    pub diags: Vec<Diagnostic>,
    /// Findings an `allow` directive suppressed — surfaced as
    /// `note`-level SARIF results so suppressions stay auditable.
    pub allowed: Vec<Diagnostic>,
    /// Facts for [`crate::graph`].
    pub facts: FileFacts,
}

/// Runs the full per-file analysis: lex once, then local rules and fact
/// extraction over the same token stream.
pub fn analyze_file(path: &str, source: &str) -> FileAnalysis {
    let tokens = lex(source);
    let (diags, allowed) = lint_tokens(path, &tokens);
    FileAnalysis {
        diags,
        allowed,
        facts: extract_tokens(path, &tokens),
    }
}

/// Extracts facts from one file's source.
pub fn extract(path: &str, source: &str) -> FileFacts {
    extract_tokens(path, &lex(source))
}

/// [`extract`] over pre-lexed tokens.
pub(crate) fn extract_tokens(path: &str, tokens: &Tokens) -> FileFacts {
    let scope = classify(path);
    let spans = test_spans(tokens);
    let sig = tokens.significant();
    let toks = &tokens.all;

    let raw = parse_allows(tokens);
    let mut allows = GlobalAllows::default();
    for rule in WORKSPACE_RULE_IDS {
        if raw.file_wide.contains(*rule) {
            allows.file_wide.insert((*rule).to_string());
        }
        if let Some(lines) = raw.lines.get(*rule) {
            allows.lines.insert((*rule).to_string(), lines.clone());
        }
    }

    let mut fns = Vec::new();
    if !scope.all_test {
        let ast = parse(tokens);
        let sources = taint::derived_sources(&ast, toks);
        let in_test = |line: u32| spans.contains(line);
        for f in &ast.fns {
            if in_test(f.line) {
                continue;
            }
            fns.push(extract_fn(f, &ast, toks, &sources, &in_test));
        }
    }

    FileFacts {
        path: path.to_string(),
        fns,
        uses: extract_uses(toks, &sig),
        allows,
    }
}

/// Taint state for the facts walk: where the value came from.
#[derive(Debug, Clone)]
struct FTaint {
    /// `Some(param)` for parameter-rooted taint, `None` for source taint.
    root: Option<String>,
    chain: String,
}

/// Control-flow keywords that can directly precede `(` without being a
/// call.
fn is_ctrl_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "in"
            | "as"
            | "move"
            | "else"
            | "let"
            | "fn"
            | "where"
    )
}

/// Keeps at most two links of a chain so messages stay readable.
fn truncate_chain(chain: &str) -> String {
    let mut parts: Vec<&str> = chain.split(" ← ").collect();
    if parts.len() > 2 {
        parts.truncate(2);
        format!("{} ← …", parts.join(" ← "))
    } else {
        chain.to_string()
    }
}

/// `let` bindings of the function **and** its closures, flattened in
/// source order — the facts walk is linear over the whole body range, so
/// closure-local bindings must participate.
fn flattened_lets(f: &FnItem) -> Vec<&LetBinding> {
    fn rec<'a>(c: &'a crate::parse::Closure, out: &mut Vec<&'a LetBinding>) {
        out.extend(c.lets.iter());
        for n in &c.closures {
            rec(n, out);
        }
    }
    let mut out: Vec<&LetBinding> = f.lets.iter().collect();
    for c in &f.closures {
        rec(c, &mut out);
    }
    out.sort_by_key(|l| l.init.0);
    out
}

/// Taint for a `let` initializer under the facts walk. Mirrors the v2
/// rule: a sanitizer call anywhere in the initializer cleans the binding;
/// otherwise the first source call or tainted ident propagates.
fn init_taint(
    l: &LetBinding,
    toks: &[Token],
    sig: &[usize],
    sources: &BTreeSet<String>,
    tainted: &BTreeMap<String, FTaint>,
) -> Option<FTaint> {
    let (start, end) = l.init;
    // Source calls outrank tainted idents: `s.parse()` yields a *parsed*
    // value, so the binding's root is the source, not the receiver.
    let mut source: Option<FTaint> = None;
    let mut ident: Option<FTaint> = None;
    for j in start..end.min(sig.len()) {
        let Some(name) = taint::ident_at(toks, sig, j) else {
            continue;
        };
        if taint::is_call(toks, sig, j) {
            if taint::is_sanitizer_name(name) {
                return None;
            }
            if (taint::is_source_name(name) || sources.contains(name)) && source.is_none() {
                source = Some(FTaint {
                    root: None,
                    chain: format!("← `{name}(…)` at line {}", toks[sig[j]].line),
                });
            }
        } else if let Some(t) = tainted.get(name) {
            if ident.is_none() {
                ident = Some(FTaint {
                    root: t.root.clone(),
                    chain: format!("← `{name}` {}", truncate_chain(&t.chain)),
                });
            }
        }
    }
    source.or(ident)
}

/// The per-function facts walk: one linear pass over the body range
/// (closures included — their calls and sinks are attributed to the
/// enclosing function, which is exactly what the job-thunk analyses
/// want).
fn extract_fn(
    f: &FnItem,
    ast: &Ast,
    toks: &[Token],
    sources: &BTreeSet<String>,
    in_test: &dyn Fn(u32) -> bool,
) -> FnFact {
    let sig = &ast.sig;
    let (start, end) = f.body;
    let end = end.min(sig.len());

    let mut tainted: BTreeMap<String, FTaint> = BTreeMap::new();
    for p in &f.params {
        tainted.insert(
            p.clone(),
            FTaint {
                root: Some(p.clone()),
                chain: format!("parameter `{p}`"),
            },
        );
    }
    let mut guarded: BTreeSet<String> = BTreeSet::new();

    let mut calls: Vec<CallFact> = Vec::new();
    let mut call_sigs: Vec<usize> = Vec::new();
    let mut loop_heads: Vec<(u32, LoopKind, usize, usize)> = Vec::new(); // line, kind, body sig range
    let mut polls = false;
    let mut first_explicit: Option<PanicFact> = None;
    let mut first_index: Option<PanicFact> = None;
    let mut sinks: BTreeMap<String, (Option<u32>, Option<u32>)> = BTreeMap::new();
    let mut arg_flows: Vec<ArgFlow> = Vec::new();

    let all_lets = flattened_lets(f);
    let mut lets = all_lets.iter().peekable();

    let mut j = start;
    while j < end {
        while let Some(l) = lets.peek() {
            if l.init.1 <= j {
                let l: &LetBinding = lets.next().expect("peeked");
                if let Some(t) = init_taint(l, toks, sig, sources, &tainted) {
                    for name in &l.names {
                        tainted.insert(name.clone(), t.clone());
                        guarded.remove(name);
                    }
                } else {
                    for name in &l.names {
                        tainted.remove(name);
                    }
                }
            } else {
                break;
            }
        }

        let t = &toks[sig[j]];
        let line = t.line;
        let test_line = in_test(line);
        match &t.kind {
            TokenKind::Ident(name) => {
                if taint::is_comparison_neighbor(toks, sig, j) {
                    guarded.insert(name.clone());
                }
                if (name == "get" || name == "min" || name == "max")
                    && taint::at(toks, sig, j + 1, '(')
                {
                    for a in taint::idents_in_group(toks, sig, j + 1) {
                        guarded.insert(a);
                    }
                }
                // Loop statements.
                if !test_line {
                    let kind = match name.as_str() {
                        "loop" => Some(LoopKind::Loop),
                        "while" => Some(LoopKind::While),
                        // `for<'a>` higher-ranked bounds are not loops.
                        "for" if !taint::at(toks, sig, j + 1, '<') => Some(LoopKind::For),
                        _ => None,
                    };
                    if let Some(kind) = kind {
                        if let Some((bs, be)) = loop_body(toks, sig, j, end) {
                            loop_heads.push((line, kind, bs, be));
                        }
                    }
                }
                // Cancellation polls.
                if POLL_NAMES.contains(&name.as_str()) && taint::is_call(toks, sig, j) && !test_line
                {
                    polls = true;
                }
                // Panic sites (explicit).
                if !test_line && first_explicit.is_none() {
                    const PANIC_METHODS: &[&str] =
                        &["unwrap", "expect", "unwrap_err", "expect_err"];
                    const PANIC_MACROS: &[&str] =
                        &["panic", "unreachable", "todo", "unimplemented"];
                    if PANIC_METHODS.contains(&name.as_str())
                        && j > 0
                        && toks[sig[j - 1]].is_punct('.')
                        && taint::at(toks, sig, j + 1, '(')
                    {
                        first_explicit = Some(PanicFact {
                            line,
                            what: format!("`.{name}()`"),
                        });
                    }
                    if PANIC_MACROS.contains(&name.as_str()) && taint::at(toks, sig, j + 1, '!') {
                        first_explicit = Some(PanicFact {
                            line,
                            what: format!("`{name}!`"),
                        });
                    }
                }
                // Slice call sinks for the parameter summaries.
                if taint::SLICE_SINKS.contains(&name.as_str())
                    && taint::at(toks, sig, j + 1, '(')
                    && !test_line
                {
                    for a in taint::idents_in_group(toks, sig, j + 1) {
                        if let Some(ft) = tainted.get(&a) {
                            if ft.root.is_some() && !guarded.contains(&a) {
                                let root = ft.root.clone().unwrap_or_default();
                                let e = sinks.entry(root).or_insert((None, None));
                                e.1.get_or_insert(line);
                            }
                        }
                    }
                }
                // Call sites.
                if taint::is_call(toks, sig, j)
                    && !test_line
                    && !is_ctrl_keyword(name)
                    && !name.starts_with(char::is_uppercase)
                {
                    let method = j > 0 && toks[sig[j - 1]].is_punct('.');
                    let mut qual = None;
                    let mut recv = None;
                    if method {
                        // `recv.name(` — only a plain-ident receiver that is
                        // not itself a call result.
                        if j >= 2 {
                            if let TokenKind::Ident(r) = &toks[sig[j - 2]].kind {
                                let chained = j >= 3 && toks[sig[j - 3]].is_punct('.');
                                if !chained {
                                    recv = Some(r.clone());
                                }
                            }
                        }
                    } else if j >= 3
                        && toks[sig[j - 1]].is_punct(':')
                        && toks[sig[j - 2]].is_punct(':')
                    {
                        if let TokenKind::Ident(q) = &toks[sig[j - 3]].kind {
                            qual = Some(q.clone());
                        }
                    }
                    let ci = calls.len() as u32;
                    // Arguments of a sanitizer call are sanitized by
                    // definition — no flow to record.
                    if !taint::is_sanitizer_name(name) {
                        if let Some(open) = call_open(toks, sig, j) {
                            scan_call_args(
                                toks,
                                sig,
                                open,
                                ci,
                                sources,
                                &tainted,
                                &guarded,
                                &mut arg_flows,
                            );
                        }
                    }
                    calls.push(CallFact {
                        line,
                        name: name.clone(),
                        qual,
                        method,
                        recv,
                    });
                    call_sigs.push(j);
                }
            }
            TokenKind::Punct('[') if !test_line && taint::is_index_expr(toks, sig, j) => {
                if first_index.is_none() {
                    first_index = Some(PanicFact {
                        line,
                        what: "slice indexing".to_string(),
                    });
                }
                for a in taint::idents_in_bracket_group(toks, sig, j) {
                    if let Some(ft) = tainted.get(&a) {
                        if ft.root.is_some() && !guarded.contains(&a) {
                            let root = ft.root.clone().unwrap_or_default();
                            let e = sinks.entry(root).or_insert((None, None));
                            e.1.get_or_insert(line);
                        }
                    }
                }
            }
            TokenKind::Punct('+' | '-' | '*')
                if !test_line && taint::is_binary_arith(toks, sig, j) =>
            {
                for a in [
                    taint::ident_at(toks, sig, j.wrapping_sub(1)),
                    taint::arith_rhs(toks, sig, j),
                ]
                .into_iter()
                .flatten()
                {
                    if let Some(ft) = tainted.get(a) {
                        if let Some(root) = &ft.root {
                            let e = sinks.entry(root.clone()).or_insert((None, None));
                            e.0.get_or_insert(line);
                        }
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }

    // Associate loops with the calls and polls inside their body ranges.
    let mut loops = Vec::new();
    for (line, kind, bs, be) in loop_heads {
        let in_body: Vec<u32> = call_sigs
            .iter()
            .enumerate()
            .filter(|(_, &cs)| cs >= bs && cs < be)
            .map(|(i, _)| i as u32)
            .collect();
        let mut body_polls = false;
        for k in bs..be.min(sig.len()) {
            if let TokenKind::Ident(name) = &toks[sig[k]].kind {
                if POLL_NAMES.contains(&name.as_str()) && taint::is_call(toks, sig, k) {
                    body_polls = true;
                    break;
                }
            }
        }
        loops.push(LoopFact {
            line,
            kind,
            polls: body_polls,
            calls: in_body,
        });
    }

    let param_sinks = sinks
        .into_iter()
        .filter(|(p, _)| f.params.contains(p))
        .map(|(param, (arith, index))| ParamSink {
            param,
            arith,
            index,
        })
        .collect();

    FnFact {
        name: f.name.clone(),
        line: f.line,
        params: f.params.clone(),
        polls,
        panic: first_explicit.or(first_index),
        calls,
        loops,
        param_sinks,
        arg_flows,
    }
}

/// The body range (inside the braces, half-open sig range) of the loop
/// whose keyword sits at `j`. `None` when no `{` is found before the
/// statement breaks (garbage input).
fn loop_body(toks: &[Token], sig: &[usize], j: usize, end: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut k = j + 1;
    while k < end.min(sig.len()) {
        match toks[sig[k]].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => {
                depth -= 1;
                if depth < 0 {
                    return None;
                }
            }
            TokenKind::Punct('{') if depth == 0 => {
                let close = match_group(toks, sig, k, '{', '}');
                return Some((k + 1, close.saturating_sub(1).max(k + 1)));
            }
            TokenKind::Punct(';') if depth == 0 => return None,
            _ => {}
        }
        k += 1;
    }
    None
}

/// The sig index of the call's opening `(` for the callee name at `j`
/// (stepping over a turbofish).
fn call_open(toks: &[Token], sig: &[usize], j: usize) -> Option<usize> {
    if taint::at(toks, sig, j + 1, '(') {
        return Some(j + 1);
    }
    // `name::<…>(`
    let mut depth = 0i32;
    let mut k = j + 3;
    while k < sig.len() {
        match toks[sig[k]].kind {
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return taint::at(toks, sig, k + 1, '(').then_some(k + 1);
                }
            }
            TokenKind::Punct(';') | TokenKind::Punct('{') => return None,
            _ => {}
        }
        k += 1;
    }
    None
}

/// Scans the argument list opened at `open`, recording one [`ArgFlow`]
/// per tainted, unsanitized argument position.
#[allow(clippy::too_many_arguments)]
fn scan_call_args(
    toks: &[Token],
    sig: &[usize],
    open: usize,
    call: u32,
    sources: &BTreeSet<String>,
    tainted: &BTreeMap<String, FTaint>,
    guarded: &BTreeSet<String>,
    out: &mut Vec<ArgFlow>,
) {
    let mut pos = 0u32;
    let mut depth = 0i32;
    let mut k = open;
    // Per-argument scratch: first source call, first tainted ident,
    // whether sanitized. Sources outrank idents (as in `init_taint`).
    let mut found_source: Option<(FTaint, String)> = None;
    let mut found_ident: Option<(FTaint, String)> = None;
    let mut sanitized = false;
    let mut flush = |pos: u32,
                     found_source: &mut Option<(FTaint, String)>,
                     found_ident: &mut Option<(FTaint, String)>,
                     sanitized: &mut bool| {
        let src = found_source.take();
        let idt = found_ident.take();
        if let Some((ft, ident)) = src.or(idt) {
            if !*sanitized {
                let chain = if ident.is_empty() {
                    ft.chain.clone()
                } else {
                    format!("`{ident}` {}", truncate_chain(&ft.chain))
                };
                out.push(ArgFlow {
                    call,
                    pos,
                    root: ft.root,
                    chain,
                    guarded: !ident.is_empty() && guarded.contains(&ident),
                });
            }
        }
        *sanitized = false;
    };
    while k < sig.len() {
        match &toks[sig[k]].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    flush(pos, &mut found_source, &mut found_ident, &mut sanitized);
                    return;
                }
            }
            TokenKind::Punct(',') if depth == 1 => {
                flush(pos, &mut found_source, &mut found_ident, &mut sanitized);
                pos += 1;
            }
            TokenKind::Ident(name) if depth >= 1 => {
                if taint::is_call(toks, sig, k) {
                    if taint::is_sanitizer_name(name) {
                        sanitized = true;
                    } else if (taint::is_source_name(name) || sources.contains(name))
                        && found_source.is_none()
                    {
                        found_source = Some((
                            FTaint {
                                root: None,
                                chain: format!("`{name}(…)` at line {}", toks[sig[k]].line),
                            },
                            String::new(),
                        ));
                    }
                } else if let Some(ft) = tainted.get(name) {
                    if found_ident.is_none() {
                        found_ident = Some((ft.clone(), name.clone()));
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
    flush(pos, &mut found_source, &mut found_ident, &mut sanitized);
}

/// Extracts `use` imports as (root segment, leaf name) pairs. Renames
/// (`use a::b as c`) record the local name; brace groups contribute one
/// leaf per element. Non-crate roots (`std`, `super`, …) are filtered by
/// the graph, not here.
fn extract_uses(toks: &[Token], sig: &[usize]) -> Vec<(String, String)> {
    let mut out: BTreeSet<(String, String)> = BTreeSet::new();
    let mut j = 0usize;
    while j < sig.len() {
        if !toks[sig[j]].is_ident("use") {
            j += 1;
            continue;
        }
        let mut root: Option<String> = None;
        let mut last: Option<String> = None;
        let mut k = j + 1;
        while k < sig.len() {
            match &toks[sig[k]].kind {
                TokenKind::Ident(n) if n == "as" => {
                    if let Some(TokenKind::Ident(r)) = sig.get(k + 1).map(|&t| toks[t].kind.clone())
                    {
                        last = Some(r);
                        k += 1;
                    }
                }
                TokenKind::Ident(n) => {
                    if root.is_none() {
                        root = Some(n.clone());
                    }
                    last = Some(n.clone());
                }
                TokenKind::Punct(',') | TokenKind::Punct('}') => {
                    if let (Some(r), Some(l)) = (&root, last.take()) {
                        out.insert((r.clone(), l));
                    }
                }
                TokenKind::Punct(';') => {
                    if let (Some(r), Some(l)) = (&root, last.take()) {
                        out.insert((r.clone(), l));
                    }
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        j = k + 1;
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(src: &str) -> FileFacts {
        extract("crates/tam/src/search.rs", src)
    }

    #[test]
    fn calls_loops_and_polls_extracted() {
        let f = facts(
            "fn search(d: &Deadline) {\n\
             while improving() {\n\
               if d.expired() { return; }\n\
               step(1);\n\
             }\n\
             }\n",
        );
        assert_eq!(f.fns.len(), 1);
        let g = &f.fns[0];
        assert!(g.polls);
        assert_eq!(g.loops.len(), 1);
        assert_eq!(g.loops[0].kind, LoopKind::While);
        assert!(g.loops[0].polls);
        let names: Vec<_> = g.calls.iter().map(|c| c.name.as_str()).collect();
        assert!(
            names.contains(&"improving") && names.contains(&"step"),
            "{names:?}"
        );
        // Calls inside the loop body are associated with the loop.
        assert!(!g.loops[0].calls.is_empty());
    }

    #[test]
    fn qualified_and_method_calls_keep_resolution_keys() {
        let f = facts("fn f(p: &Planner) { let s = planfile::parse_plan(x); p.plan_with(y); }\n");
        let g = &f.fns[0];
        let parse = g
            .calls
            .iter()
            .find(|c| c.name == "parse_plan")
            .expect("call");
        assert_eq!(parse.qual.as_deref(), Some("planfile"));
        assert!(!parse.method);
        let m = g
            .calls
            .iter()
            .find(|c| c.name == "plan_with")
            .expect("method");
        assert!(m.method);
        assert_eq!(m.recv.as_deref(), Some("p"));
    }

    #[test]
    fn panic_sites_prefer_explicit_over_indexing() {
        let f = facts("fn f(v: &[u32], i: usize) -> u32 { let x = v[0]; v.get(i).unwrap() + x }\n");
        let p = f.fns[0].panic.as_ref().expect("panic site");
        assert_eq!(p.what, "`.unwrap()`");
        let f2 = facts("fn f(v: &[u32]) -> u32 { v[0] }\n");
        assert_eq!(
            f2.fns[0].panic.as_ref().map(|p| p.what.as_str()),
            Some("slice indexing")
        );
    }

    #[test]
    fn param_sinks_and_forwarding_recorded() {
        let f = facts("fn f(n: usize, v: &[u8]) -> u8 { helper(n); v[n] }\n");
        let g = &f.fns[0];
        let sink = g.param_sinks.iter().find(|s| s.param == "n").expect("sink");
        assert!(sink.index.is_some());
        let fwd = g
            .arg_flows
            .iter()
            .find(|a| a.root.as_deref() == Some("n"))
            .expect("forward edge");
        assert_eq!(fwd.pos, 0);
        assert_eq!(g.calls[fwd.call as usize].name, "helper");
    }

    #[test]
    fn source_taint_reaches_call_args_with_chain() {
        let f = extract(
            "crates/tdcsoc/src/planfile.rs",
            "fn f(s: &str) { let n: usize = s.parse().ok()?; helper(n); }\n",
        );
        let g = &f.fns[0];
        let flow = g
            .arg_flows
            .iter()
            .find(|a| a.root.is_none())
            .expect("source flow");
        assert!(flow.chain.contains("parse"), "{}", flow.chain);
        assert!(!flow.guarded);
    }

    #[test]
    fn sanitized_and_guarded_args_are_marked() {
        let f = extract(
            "crates/tdcsoc/src/planfile.rs",
            "fn f(s: &str, v: &[u8]) { let n: usize = s.parse().ok()?; \
             helper(usize::try_from(n).ok()?); \
             if n < v.len() { helper(n); } }\n",
        );
        let g = &f.fns[0];
        // First call's arg is sanitized (no flow); second is guarded.
        let flows: Vec<_> = g.arg_flows.iter().filter(|a| a.root.is_none()).collect();
        assert_eq!(flows.len(), 1, "{flows:?}");
        assert!(flows[0].guarded);
    }

    #[test]
    fn test_spans_and_test_files_are_excluded() {
        let f = facts("#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn real() {}\n");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "real");
        let t = extract("tests/smoke.rs", "fn main() { x.unwrap(); }\n");
        assert!(t.fns.is_empty());
    }

    #[test]
    fn uses_extracted_with_renames_and_groups() {
        let f = facts(
            "use tdcsoc::planfile;\nuse robust::{Deadline, CancelToken as Tok};\nfn f() {}\n",
        );
        assert!(f.uses.contains(&("tdcsoc".into(), "planfile".into())));
        assert!(f.uses.contains(&("robust".into(), "Deadline".into())));
        assert!(f.uses.contains(&("robust".into(), "Tok".into())));
    }

    #[test]
    fn workspace_allows_captured() {
        let f = facts(
            "fn f() {\n while x() { } // soclint: allow(cancel-coverage) -- bounded by input\n}\n",
        );
        assert!(f.allows.permits("cancel-coverage", 2));
        assert!(!f.allows.permits("cancel-coverage", 3));
        assert!(!f.allows.permits("panic-reach", 2));
    }

    #[test]
    fn garbage_never_panics() {
        for src in [
            "fn",
            "fn f( { while ( {",
            "}}}}((((",
            "use ;;; as as",
            "fn f() { for < }",
        ] {
            let _ = extract("crates/tam/src/x.rs", src);
            let _ = extract("crates/tdcsoc/src/planfile.rs", src);
        }
    }
}
