//! Pass 3: the workspace symbol table, call graph, and the three
//! interprocedural analyses (`cross-taint`, `cancel-coverage`,
//! `panic-reach`).
//!
//! The graph is built from the per-file facts of [`crate::facts`] — no
//! re-lexing — so a warm incremental run pays only for edited files and
//! re-runs these (cheap, pure in-memory) fixpoints over the full fact
//! set every time.
//!
//! ## Resolution heuristics, honestly
//!
//! soclint has no type information, so call resolution is name-based and
//! deliberately biased toward **under**-resolution: a missed edge costs a
//! missed finding (documented limitation), a fabricated edge costs a
//! false alarm in someone's CI. In order:
//!
//! - free calls: same-file definitions win, then `use`-imported crate
//!   hints, then a unique definition in the caller's crate, then a unique
//!   definition workspace-wide;
//! - `Qual::name(…)`: a file whose stem matches the qualifier
//!   (`planfile::num` → `planfile.rs`, `Planner::plan` → `planner.rs` via
//!   snake-case), then `use`-hints, then a unique workspace definition;
//!   known std/primitive qualifiers are skipped as external;
//! - `recv.name(…)`: a blocklist of ubiquitous std method names is
//!   skipped outright; otherwise a file stem matching the receiver ident,
//!   then a unique workspace definition.
//!
//! Everything that does not resolve lands in an auditable *unresolved
//! bucket* ([`GraphStats`]) printed by `soclint --graph-stats`, so the
//! blind spots are measurable instead of silent.

use std::collections::{BTreeMap, BTreeSet};

use crate::facts::{FileFacts, FnFact, LoopKind};
use crate::rules::Diagnostic;
use crate::scope::UNTRUSTED_PARSER_FILES;

/// Root functions of the cancellation contract: the planning cascade
/// entry and the serve request path. Loops in [`CANCEL_CRATES`] reachable
/// from any of these must transitively poll.
const CANCEL_ROOTS: &[(&str, &str)] = &[
    ("crates/tdcsoc/src/cascade.rs", "solve"),
    ("crates/tdcsoc/src/planner.rs", "plan"),
    ("crates/tdcsoc/src/planner.rs", "plan_with"),
    ("crates/tdcsoc/src/planner.rs", "plan_with_stats"),
    ("crates/serve/src/server.rs", "handle_stdio"),
    ("crates/serve/src/server.rs", "handle_http_connection"),
];

/// Crates whose loops the cancellation rule audits.
const CANCEL_CRATES: &[&str] = &["tam", "tdcsoc", "selenc"];

/// Ubiquitous std/core method names: method calls with these names are
/// never resolved to workspace functions (a collision here would
/// fabricate edges wholesale).
const STD_METHODS: &[&str] = &[
    "abs",
    "abs_diff",
    "all",
    "and_then",
    "any",
    "append",
    "as_bytes",
    "as_deref",
    "as_mut",
    "as_millis",
    "as_micros",
    "as_ref",
    "as_secs",
    "as_slice",
    "as_str",
    "binary_search",
    "binary_search_by",
    "by_ref",
    "bytes",
    "ceil",
    "chain",
    "chars",
    "char_indices",
    "checked_add",
    "checked_div",
    "checked_mul",
    "checked_sub",
    "chunks",
    "clamp",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "dedup",
    "drain",
    "elapsed",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "exists",
    "expect",
    "extend",
    "fill",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fmt",
    "fold",
    "for_each",
    "get",
    "get_mut",
    "get_or_insert",
    "hash",
    "insert",
    "into_iter",
    "is_ascii_digit",
    "is_dir",
    "is_empty",
    "is_err",
    "is_file",
    "is_finite",
    "is_nan",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "lock",
    "map",
    "map_err",
    "map_or",
    "map_or_else",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "ne",
    "next",
    "next_back",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "peek",
    "pop",
    "position",
    "pow",
    "powi",
    "product",
    "push",
    "push_str",
    "read",
    "read_line",
    "read_to_string",
    "recv",
    "remove",
    "repeat",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "round",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "send",
    "skip",
    "skip_while",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "splice",
    "split",
    "split_at",
    "split_at_mut",
    "split_off",
    "split_once",
    "split_whitespace",
    "splitn",
    "spawn",
    "sqrt",
    "starts_with",
    "step_by",
    "strip_prefix",
    "strip_suffix",
    "sum",
    "swap",
    "swap_remove",
    "take",
    "take_while",
    "to_le_bytes",
    "to_be_bytes",
    "to_lowercase",
    "to_owned",
    "to_string",
    "to_uppercase",
    "to_vec",
    "total_cmp",
    "trim",
    "trim_end",
    "trim_start",
    "truncate",
    "try_into",
    "try_iter",
    "try_recv",
    "unwrap",
    "unwrap_err",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "wrapping_add",
    "wrapping_mul",
    "wrapping_sub",
    "write",
    "write_all",
    "zip",
];

/// Path qualifiers that denote std/primitive types or modules — calls
/// through these are external by construction.
const EXTERNAL_QUALS: &[&str] = &[
    "std",
    "core",
    "alloc",
    "u8",
    "u16",
    "u32",
    "u64",
    "u128",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "i128",
    "isize",
    "f32",
    "f64",
    "str",
    "char",
    "bool",
    "Vec",
    "String",
    "Option",
    "Result",
    "Box",
    "Self",
    "Ordering",
    "Duration",
    "Instant",
    "SystemTime",
    "Path",
    "PathBuf",
    "BTreeMap",
    "BTreeSet",
    "VecDeque",
    "Arc",
    "Mutex",
    "RwLock",
    "Cell",
    "RefCell",
    "Cow",
    "Default",
    "TryFrom",
    "From",
    "ExitCode",
    "Command",
    "OsStr",
    "OsString",
    "TcpListener",
    "TcpStream",
    "IpAddr",
    "fmt",
    "mem",
    "cmp",
    "iter",
    "slice",
    "process",
    "thread",
    "fs",
    "io",
    "env",
    "ptr",
    "f32x",
    "char",
];

/// Free-call names never resolved (std free functions / prelude
/// constructors that slip past the uppercase filter).
const FREE_SKIP: &[&str] = &["drop", "min", "max", "matches"];

/// Aggregate call-resolution counters — the auditable unresolved bucket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Functions in the symbol table.
    pub fns: usize,
    /// Call sites considered.
    pub calls: usize,
    /// Call sites resolved to at least one workspace definition.
    pub resolved: usize,
    /// Call sites matching several files — left unresolved.
    pub ambiguous: usize,
    /// Call sites matching nothing in the workspace.
    pub unknown: usize,
    /// Calls through std/primitive qualifiers.
    pub external: usize,
    /// Method calls skipped by the std-name blocklist.
    pub std_filtered: usize,
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "call graph: {} fns, {} calls — {} resolved, {} ambiguous, {} unknown, \
             {} external, {} std-filtered",
            self.fns,
            self.calls,
            self.resolved,
            self.ambiguous,
            self.unknown,
            self.external,
            self.std_filtered
        )
    }
}

/// (file index, fn index) — the node id of the call graph.
type FnId = (usize, usize);

/// Sink kinds the cross-taint fixpoint distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Sink {
    Arith,
    Index,
}

/// Why a (fn, param, sink) triple is dangerous.
#[derive(Debug, Clone)]
enum FlowWhy {
    Local { line: u32 },
    Via { callee: FnId, pos: usize },
}

/// Why a function can panic.
#[derive(Debug, Clone)]
enum PanicWhy {
    Local,
    Via(FnId),
}

/// Runs the three workspace analyses over the fact set. Returns the
/// (sorted, allow-filtered) diagnostics plus resolution stats.
pub fn analyze(files: &[FileFacts]) -> (Vec<Diagnostic>, GraphStats) {
    let g = Graph::build(files);
    let mut out = Vec::new();
    g.check_panic_reach(&mut out);
    g.check_cancel_coverage(&mut out);
    g.check_cross_taint(&mut out);
    out.sort();
    out.dedup();
    (out, g.stats)
}

struct Graph<'a> {
    files: &'a [FileFacts],
    crates: Vec<String>,
    /// Per-fn resolved call edges: call index → candidate definitions.
    fn_edges: BTreeMap<FnId, Vec<(usize, Vec<FnId>)>>,
    stats: GraphStats,
    pan: BTreeMap<FnId, PanicWhy>,
    polls: BTreeSet<FnId>,
    danger: BTreeMap<(FnId, usize, Sink), FlowWhy>,
    /// BFS parents for the cancellation reachability set.
    reach_parent: BTreeMap<FnId, Option<FnId>>,
}

/// The crate owning a workspace-relative path (the root package is
/// `soc-tdc`).
fn crate_of(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("soc-tdc")
        .to_string()
}

/// The file stem used by the qualifier/receiver heuristics: the file name
/// without `.rs`, with crate roots (`lib`, `mod`, `main`) aliased to the
/// crate name in identifier form.
fn stem_of(path: &str, crate_name: &str) -> String {
    let stem = path
        .rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs");
    if matches!(stem, "lib" | "mod" | "main") {
        crate_name.replace('-', "_")
    } else {
        stem.to_string()
    }
}

/// CamelCase → snake_case for type-qualifier file matching.
fn to_snake(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

impl<'a> Graph<'a> {
    fn build(files: &'a [FileFacts]) -> Self {
        let crates: Vec<String> = files.iter().map(|f| crate_of(&f.path)).collect();
        let crate_set: BTreeSet<&str> = crates.iter().map(String::as_str).collect();
        let stems: Vec<String> = files
            .iter()
            .zip(&crates)
            .map(|(f, c)| stem_of(&f.path, c))
            .collect();

        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut by_stem: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut fns = 0usize;
        for (fi, file) in files.iter().enumerate() {
            by_stem.entry(stems[fi].as_str()).or_default().push(fi);
            for (gi, f) in file.fns.iter().enumerate() {
                by_name.entry(f.name.as_str()).or_default().push((fi, gi));
                fns += 1;
            }
        }

        // `use` hints per file: imported leaf name → source crate.
        let mut hints: Vec<BTreeMap<&str, String>> = Vec::with_capacity(files.len());
        for (fi, file) in files.iter().enumerate() {
            let mut h = BTreeMap::new();
            for (root, leaf) in &file.uses {
                let root_norm = if root == "crate" || root == "self" {
                    crates[fi].clone()
                } else {
                    root.replace('_', "-")
                };
                if crate_set.contains(root_norm.as_str()) {
                    h.insert(leaf.as_str(), root_norm);
                }
            }
            hints.push(h);
        }

        let mut g = Graph {
            files,
            crates,
            fn_edges: BTreeMap::new(),
            stats: GraphStats {
                fns,
                ..GraphStats::default()
            },
            pan: BTreeMap::new(),
            polls: BTreeSet::new(),
            danger: BTreeMap::new(),
            reach_parent: BTreeMap::new(),
        };

        // Resolve every call site.
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                let mut edges = Vec::new();
                for (ci, call) in f.calls.iter().enumerate() {
                    g.stats.calls += 1;
                    let res = resolve(&g.crates, &by_name, &by_stem, &hints, files, fi, call);
                    match res {
                        Res::Hit(cands) => {
                            g.stats.resolved += 1;
                            edges.push((ci, cands));
                        }
                        Res::Std => g.stats.std_filtered += 1,
                        Res::External => g.stats.external += 1,
                        Res::Ambiguous => g.stats.ambiguous += 1,
                        Res::Unknown => g.stats.unknown += 1,
                    }
                }
                if !edges.is_empty() {
                    g.fn_edges.insert((fi, gi), edges);
                }
            }
        }

        g.fix_panics();
        g.fix_polls();
        g.fix_danger();
        g.fix_reach();
        g
    }

    fn fn_at(&self, id: FnId) -> &FnFact {
        &self.files[id.0].fns[id.1]
    }

    fn is_parser_file(&self, fi: usize) -> bool {
        UNTRUSTED_PARSER_FILES.contains(&self.files[fi].path.as_str())
    }

    /// May-panic fixpoint: a fn panics if it has a local panic site or
    /// calls (any candidate of) a panicking fn.
    fn fix_panics(&mut self) {
        for (fi, file) in self.files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                if f.panic.is_some() {
                    self.pan.insert((fi, gi), PanicWhy::Local);
                }
            }
        }
        loop {
            let mut changed = false;
            for (&id, edges) in &self.fn_edges {
                if self.pan.contains_key(&id) {
                    continue;
                }
                let hit = edges.iter().find_map(|(_, cands)| {
                    cands.iter().find(|c| self.pan.contains_key(c)).copied()
                });
                if let Some(callee) = hit {
                    self.pan.insert(id, PanicWhy::Via(callee));
                    changed = true;
                }
            }
            if !changed {
                return;
            }
        }
    }

    /// Transitive-poll fixpoint: a fn polls if its body polls directly or
    /// it calls a fn that polls (all resolution candidates must agree —
    /// ambiguity must not fabricate coverage).
    fn fix_polls(&mut self) {
        for (fi, file) in self.files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                if f.polls {
                    self.polls.insert((fi, gi));
                }
            }
        }
        loop {
            let mut changed = false;
            for (&id, edges) in &self.fn_edges {
                if self.polls.contains(&id) {
                    continue;
                }
                let covered = edges.iter().any(|(_, cands)| {
                    !cands.is_empty() && cands.iter().all(|c| self.polls.contains(c))
                });
                if covered {
                    self.polls.insert(id);
                    changed = true;
                }
            }
            if !changed {
                return;
            }
        }
    }

    /// Parameter-danger fixpoint: (fn, param, sink) is dangerous if the
    /// parameter reaches the sink locally or is forwarded into a
    /// dangerous parameter position of a callee.
    fn fix_danger(&mut self) {
        for (fi, file) in self.files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                for s in &f.param_sinks {
                    let Some(pi) = f.params.iter().position(|p| p == &s.param) else {
                        continue;
                    };
                    if let Some(line) = s.arith {
                        self.danger
                            .insert(((fi, gi), pi, Sink::Arith), FlowWhy::Local { line });
                    }
                    if let Some(line) = s.index {
                        self.danger
                            .insert(((fi, gi), pi, Sink::Index), FlowWhy::Local { line });
                    }
                }
            }
        }
        loop {
            let mut changed = false;
            for (fi, file) in self.files.iter().enumerate() {
                for (gi, f) in file.fns.iter().enumerate() {
                    let id: FnId = (fi, gi);
                    let Some(edges) = self.fn_edges.get(&id) else {
                        continue;
                    };
                    let mut inserts = Vec::new();
                    for af in &f.arg_flows {
                        let Some(root) = &af.root else { continue };
                        let Some(pi) = f.params.iter().position(|p| p == root) else {
                            continue;
                        };
                        let Some((_, cands)) = edges.iter().find(|(ci, _)| *ci == af.call as usize)
                        else {
                            continue;
                        };
                        for sink in [Sink::Arith, Sink::Index] {
                            if sink == Sink::Index && af.guarded {
                                continue;
                            }
                            if self.danger.contains_key(&(id, pi, sink)) {
                                continue;
                            }
                            let hit = cands
                                .iter()
                                .find(|c| self.danger.contains_key(&(**c, af.pos as usize, sink)));
                            if let Some(&callee) = hit {
                                inserts.push((
                                    (id, pi, sink),
                                    FlowWhy::Via {
                                        callee,
                                        pos: af.pos as usize,
                                    },
                                ));
                            }
                        }
                    }
                    for (k, v) in inserts {
                        if self.danger.insert(k, v).is_none() {
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return;
            }
        }
    }

    /// BFS over resolved edges from the cancellation roots, recording
    /// parents for chain rendering.
    fn fix_reach(&mut self) {
        let mut queue: Vec<FnId> = Vec::new();
        for (fi, file) in self.files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                let is_root = CANCEL_ROOTS
                    .iter()
                    .any(|(p, n)| *p == file.path && *n == f.name);
                if is_root {
                    self.reach_parent.insert((fi, gi), None);
                    queue.push((fi, gi));
                }
            }
        }
        let mut head = 0usize;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            let Some(edges) = self.fn_edges.get(&id) else {
                continue;
            };
            for (_, cands) in edges {
                for &c in cands {
                    if let std::collections::btree_map::Entry::Vacant(e) =
                        self.reach_parent.entry(c)
                    {
                        e.insert(Some(id));
                        queue.push(c);
                    }
                }
            }
        }
    }

    /// Renders the panic provenance chain starting at `id`.
    fn render_panic(&self, mut id: FnId) -> String {
        let mut parts = Vec::new();
        for _ in 0..4 {
            match self.pan.get(&id) {
                Some(PanicWhy::Local) => {
                    let f = self.fn_at(id);
                    let (line, what) = f
                        .panic
                        .as_ref()
                        .map(|p| (p.line, p.what.clone()))
                        .unwrap_or((f.line, "a panic site".to_string()));
                    parts.push(format!("{what} at {}:{line}", self.files[id.0].path));
                    return parts.join(" ← via ");
                }
                Some(PanicWhy::Via(next)) => {
                    let f = self.fn_at(id);
                    parts.push(format!(
                        "`{}` ({}:{})",
                        f.name, self.files[id.0].path, f.line
                    ));
                    id = *next;
                }
                None => break,
            }
        }
        parts.push("…".to_string());
        parts.join(" ← via ")
    }

    /// Renders the reachability chain from a cancellation root to `id`.
    fn render_reach(&self, id: FnId) -> String {
        let mut names = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            names.push(format!("`{}`", self.fn_at(c).name));
            cur = self.reach_parent.get(&c).copied().flatten();
            if names.len() >= 4 && cur.is_some() {
                names.push("…".to_string());
                break;
            }
        }
        names.reverse();
        names.join(" → ")
    }

    /// Renders the danger chain for (fn, param, sink), ending at the
    /// concrete local sink.
    fn render_danger(&self, mut id: FnId, mut pos: usize, sink: Sink) -> String {
        let mut parts = Vec::new();
        for _ in 0..4 {
            match self.danger.get(&(id, pos, sink)) {
                Some(FlowWhy::Local { line }) => {
                    let what = match sink {
                        Sink::Arith => "raw arithmetic",
                        Sink::Index => "an unguarded index",
                    };
                    parts.push(format!("{what} at {}:{line}", self.files[id.0].path));
                    return parts.join(" ← via ");
                }
                Some(FlowWhy::Via { callee, pos: p }) => {
                    let f = self.fn_at(*callee);
                    let pname = f.params.get(*p).map(String::as_str).unwrap_or("_");
                    parts.push(format!(
                        "`{}` parameter `{pname}` ({}:{})",
                        f.name, self.files[callee.0].path, f.line
                    ));
                    id = *callee;
                    pos = *p;
                }
                None => break,
            }
        }
        parts.push("…".to_string());
        parts.join(" ← via ")
    }

    /// `panic-reach`: untrusted-parser files must not call (transitively)
    /// panic-capable functions outside the parser file set.
    fn check_panic_reach(&self, out: &mut Vec<Diagnostic>) {
        for (fi, file) in self.files.iter().enumerate() {
            if !self.is_parser_file(fi) {
                continue;
            }
            for (gi, f) in file.fns.iter().enumerate() {
                let Some(edges) = self.fn_edges.get(&(fi, gi)) else {
                    continue;
                };
                for (ci, cands) in edges {
                    let call = &f.calls[*ci];
                    let Some(&callee) = cands
                        .iter()
                        .find(|c| !self.is_parser_file(c.0) && self.pan.contains_key(c))
                    else {
                        continue;
                    };
                    if file.allows.permits("panic-reach", call.line) {
                        continue;
                    }
                    out.push(Diagnostic {
                        file: file.path.clone(),
                        line: call.line,
                        rule: "panic-reach".to_string(),
                        message: format!(
                            "`{}(…)` can panic on this untrusted-input path ({}); make the \
                             callee fallible or validate before calling",
                            call.name,
                            self.render_panic(callee)
                        ),
                    });
                }
            }
        }
    }

    /// `cancel-coverage`: `loop`/`while` in the search crates reachable
    /// from the cascade/serve roots must poll transitively.
    fn check_cancel_coverage(&self, out: &mut Vec<Diagnostic>) {
        for (fi, file) in self.files.iter().enumerate() {
            if !CANCEL_CRATES.contains(&self.crates[fi].as_str()) {
                continue;
            }
            for (gi, f) in file.fns.iter().enumerate() {
                let id: FnId = (fi, gi);
                if !self.reach_parent.contains_key(&id) {
                    continue;
                }
                let edges = self.fn_edges.get(&id);
                for l in &f.loops {
                    if l.kind == LoopKind::For {
                        continue;
                    }
                    let covered = l.polls
                        || l.calls.iter().any(|&ci| {
                            edges
                                .and_then(|e| e.iter().find(|(ei, _)| *ei == ci as usize))
                                .is_some_and(|(_, cands)| {
                                    !cands.is_empty()
                                        && cands.iter().all(|c| self.polls.contains(c))
                                })
                        });
                    if covered || file.allows.permits("cancel-coverage", l.line) {
                        continue;
                    }
                    out.push(Diagnostic {
                        file: file.path.clone(),
                        line: l.line,
                        rule: "cancel-coverage".to_string(),
                        message: format!(
                            "`{}` runs under the cascade/serve request path ({}) without \
                             polling `Deadline::expired`/`CancelToken`; poll in the loop \
                             body or justify an allow",
                            l.kind.keyword(),
                            self.render_reach(id)
                        ),
                    });
                }
            }
        }
    }

    /// `cross-taint`: source-tainted arguments in parser files must not
    /// flow into callee parameters that reach arithmetic/index sinks.
    fn check_cross_taint(&self, out: &mut Vec<Diagnostic>) {
        for (fi, file) in self.files.iter().enumerate() {
            if !self.is_parser_file(fi) {
                continue;
            }
            for (gi, f) in file.fns.iter().enumerate() {
                let Some(edges) = self.fn_edges.get(&(fi, gi)) else {
                    continue;
                };
                for af in &f.arg_flows {
                    if af.root.is_some() {
                        continue; // parameter forwards feed the fixpoint, not reports
                    }
                    let Some((_, cands)) = edges.iter().find(|(ci, _)| *ci == af.call as usize)
                    else {
                        continue;
                    };
                    let call = &f.calls[af.call as usize];
                    for sink in [Sink::Arith, Sink::Index] {
                        if sink == Sink::Index && af.guarded {
                            continue;
                        }
                        let Some(&callee) = cands
                            .iter()
                            .find(|c| self.danger.contains_key(&(**c, af.pos as usize, sink)))
                        else {
                            continue;
                        };
                        if file.allows.permits("cross-taint", call.line) {
                            continue;
                        }
                        let cf = self.fn_at(callee);
                        let pname = cf
                            .params
                            .get(af.pos as usize)
                            .map(String::as_str)
                            .unwrap_or("_");
                        out.push(Diagnostic {
                            file: file.path.clone(),
                            line: call.line,
                            rule: "cross-taint".to_string(),
                            message: format!(
                                "untrusted value ({}) is passed to `{}` parameter `{pname}` \
                                 ({}:{}), which reaches {}; sanitize before the call or \
                                 bounds-check in the callee",
                                af.chain,
                                call.name,
                                self.files[callee.0].path,
                                cf.line,
                                self.render_danger(callee, af.pos as usize, sink)
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Resolution outcome for one call site.
enum Res {
    Hit(Vec<FnId>),
    Std,
    External,
    Ambiguous,
    Unknown,
}

/// Groups candidate fns by file and applies the "one file wins" rule.
fn one_file(cands: &[FnId]) -> Res {
    if cands.is_empty() {
        return Res::Unknown;
    }
    let first = cands[0].0;
    if cands.iter().all(|c| c.0 == first) {
        Res::Hit(cands.to_vec())
    } else {
        Res::Ambiguous
    }
}

#[allow(clippy::too_many_arguments)]
fn resolve(
    crates: &[String],
    by_name: &BTreeMap<&str, Vec<FnId>>,
    by_stem: &BTreeMap<&str, Vec<usize>>,
    hints: &[BTreeMap<&str, String>],
    files: &[FileFacts],
    fi: usize,
    call: &crate::facts::CallFact,
) -> Res {
    let name = call.name.as_str();
    let named = |fis: &[usize]| -> Vec<FnId> {
        let mut out = Vec::new();
        for &f in fis {
            for (gi, g) in files[f].fns.iter().enumerate() {
                if g.name == name {
                    out.push((f, gi));
                }
            }
        }
        out
    };
    let in_crate = |krate: &str| -> Vec<FnId> {
        let mut out = Vec::new();
        for (f, c) in crates.iter().enumerate() {
            if c == krate {
                for (gi, g) in files[f].fns.iter().enumerate() {
                    if g.name == name {
                        out.push((f, gi));
                    }
                }
            }
        }
        out
    };

    if call.method {
        if STD_METHODS.contains(&name) {
            return Res::Std;
        }
        if let Some(recv) = &call.recv {
            if let Some(fis) = by_stem.get(recv.as_str()) {
                let cands = named(fis);
                if !cands.is_empty() {
                    return one_file(&cands);
                }
            }
        }
        return match by_name.get(name) {
            Some(cands) => one_file(cands),
            None => Res::Unknown,
        };
    }

    if let Some(q) = &call.qual {
        if EXTERNAL_QUALS.contains(&q.as_str()) {
            return Res::External;
        }
        let stem_key = if q.starts_with(char::is_uppercase) {
            to_snake(q)
        } else {
            q.clone()
        };
        if let Some(fis) = by_stem.get(stem_key.as_str()) {
            // Prefer a stem match inside the caller's crate.
            let local: Vec<usize> = fis
                .iter()
                .copied()
                .filter(|&f| crates[f] == crates[fi])
                .collect();
            for set in [&local, fis] {
                let cands = named(set);
                if !cands.is_empty() {
                    return one_file(&cands);
                }
            }
        }
        // Module path equal to a crate name (`tdcsoc::plan(…)`).
        let crate_key = q.replace('_', "-");
        if crates.contains(&crate_key) {
            let cands = in_crate(&crate_key);
            if !cands.is_empty() {
                return one_file(&cands);
            }
        }
        // A `use`-imported type: search the hinted crate.
        if let Some(krate) = hints[fi].get(q.as_str()) {
            let cands = in_crate(krate);
            if !cands.is_empty() {
                return one_file(&cands);
            }
        }
        if STD_METHODS.contains(&name) {
            return Res::Std;
        }
        return match by_name.get(name) {
            Some(cands) => one_file(cands),
            None => Res::Unknown,
        };
    }

    // Free call.
    if FREE_SKIP.contains(&name) {
        return Res::Std;
    }
    let same_file = named(&[fi]);
    if !same_file.is_empty() {
        return Res::Hit(same_file);
    }
    if let Some(krate) = hints[fi].get(name) {
        let cands = in_crate(krate);
        if !cands.is_empty() {
            return one_file(&cands);
        }
        return Res::Unknown;
    }
    let crate_cands = in_crate(&crates[fi]);
    if !crate_cands.is_empty() {
        return one_file(&crate_cands);
    }
    match by_name.get(name) {
        Some(cands) => one_file(cands),
        None => Res::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::extract;

    fn ws(files: &[(&str, &str)]) -> Vec<FileFacts> {
        files.iter().map(|(p, s)| extract(p, s)).collect()
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn cross_taint_flags_cross_file_flow_with_chain() {
        let facts = ws(&[
            (
                "crates/tdcsoc/src/planfile.rs",
                "fn read(s: &str) { let n: usize = s.parse().ok()?; helper(n); }\n",
            ),
            (
                "crates/soc-model/src/table.rs",
                "pub fn helper(n: usize) -> u8 { DATA[n] }\n",
            ),
        ]);
        let (diags, stats) = analyze(&facts);
        assert!(rules_of(&diags).contains(&"cross-taint"), "{diags:?}");
        let d = diags.iter().find(|d| d.rule == "cross-taint").expect("hit");
        assert_eq!(d.file, "crates/tdcsoc/src/planfile.rs");
        assert!(d.message.contains("helper"), "{}", d.message);
        assert!(
            d.message.contains("crates/soc-model/src/table.rs"),
            "{}",
            d.message
        );
        assert!(stats.resolved >= 1, "{stats}");
    }

    #[test]
    fn cross_taint_transitive_and_sanitized() {
        let facts = ws(&[
            (
                "crates/tdcsoc/src/planfile.rs",
                "fn read(s: &str) { let n: usize = s.parse().ok()?; outer(n); \
                 outer(n.min(9)); }\n",
            ),
            (
                "crates/soc-model/src/table.rs",
                "pub fn outer(k: usize) -> u8 { inner(k) }\n\
                 fn inner(i: usize) -> u8 { DATA[i] }\n",
            ),
        ]);
        let (diags, _) = analyze(&facts);
        let hits: Vec<_> = diags.iter().filter(|d| d.rule == "cross-taint").collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("inner"), "{}", hits[0].message);
    }

    #[test]
    fn cancel_coverage_flags_unpolled_loop_and_accepts_polled() {
        let facts = ws(&[
            (
                "crates/tdcsoc/src/cascade.rs",
                "pub fn solve(d: &Deadline) { search(d); polite(d); }\n",
            ),
            (
                "crates/tam/src/search.rs",
                "pub fn search(d: &Deadline) { while improving() { step(); } }\n\
                 pub fn polite(d: &Deadline) { while improving() { if d.expired() { break; } } }\n\
                 fn improving() -> bool { true }\nfn step() {}\n",
            ),
        ]);
        let (diags, _) = analyze(&facts);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "cancel-coverage")
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].file, "crates/tam/src/search.rs");
        assert!(hits[0].message.contains("solve"), "{}", hits[0].message);
    }

    #[test]
    fn cancel_coverage_covered_by_transitive_poll_and_skips_unreachable() {
        let facts = ws(&[
            (
                "crates/tdcsoc/src/cascade.rs",
                "pub fn solve(d: &Deadline) { search(d); }\n",
            ),
            (
                "crates/tam/src/search.rs",
                "pub fn search(d: &Deadline) { while improving() { check(d); } }\n\
                 fn check(d: &Deadline) { if d.expired() { give_up(); } }\n\
                 fn improving() -> bool { true }\nfn give_up() {}\n\
                 pub fn offline() { while spin() {} }\nfn spin() -> bool { false }\n",
            ),
        ]);
        let (diags, _) = analyze(&facts);
        assert!(
            !rules_of(&diags).contains(&"cancel-coverage"),
            "transitive poll must cover; unreachable loops must not fire: {diags:?}"
        );
    }

    #[test]
    fn panic_reach_flags_cross_file_unwrap() {
        let facts = ws(&[
            (
                "crates/soc-model/src/itc02.rs",
                "fn parse_line(s: &str) { decode(s); }\n",
            ),
            (
                "crates/selenc/src/code.rs",
                "pub fn decode(s: &str) -> u32 { s.bytes().next().unwrap() as u32 }\n",
            ),
        ]);
        let (diags, _) = analyze(&facts);
        let hits: Vec<_> = diags.iter().filter(|d| d.rule == "panic-reach").collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].file, "crates/soc-model/src/itc02.rs");
        assert!(
            hits[0].message.contains("`.unwrap()`"),
            "{}",
            hits[0].message
        );
    }

    #[test]
    fn panic_reach_clean_callee_and_allow() {
        let facts = ws(&[
            (
                "crates/soc-model/src/itc02.rs",
                "fn a(s: &str) { safe(s); }\n\
                 fn b(s: &str) { boom(s); // soclint: allow(panic-reach) -- input pre-validated\n }\n",
            ),
            (
                "crates/selenc/src/code.rs",
                "pub fn safe(s: &str) -> Option<u32> { s.bytes().next().map(u32::from) }\n\
                 pub fn boom(s: &str) -> u32 { s.bytes().next().unwrap() as u32 }\n",
            ),
        ]);
        let (diags, _) = analyze(&facts);
        assert!(!rules_of(&diags).contains(&"panic-reach"), "{diags:?}");
    }

    #[test]
    fn method_and_qualified_resolution() {
        let facts = ws(&[
            (
                "crates/tdcsoc/src/planfile.rs",
                "fn read(s: &str) { let n: usize = s.parse().ok()?; \
                 table::lookup(n); }\n",
            ),
            (
                "crates/soc-model/src/table.rs",
                "pub fn lookup(n: usize) -> u8 { DATA[n] }\n",
            ),
        ]);
        let (diags, stats) = analyze(&facts);
        assert!(
            rules_of(&diags).contains(&"cross-taint"),
            "{diags:?} {stats}"
        );
    }

    #[test]
    fn std_methods_and_externals_filtered() {
        let facts = ws(&[(
            "crates/tam/src/search.rs",
            "fn f(v: &[u32]) -> usize { v.iter().map(|x| x.min(&3)).count() + \
             usize::try_from(3u64).unwrap_or(0) }\n",
        )]);
        let (_, stats) = analyze(&facts);
        assert!(stats.std_filtered > 0, "{stats}");
        assert!(stats.external > 0, "{stats}");
        assert_eq!(stats.resolved, 0, "{stats}");
    }

    #[test]
    fn empty_workspace_is_clean() {
        let (diags, stats) = analyze(&[]);
        assert!(diags.is_empty());
        assert_eq!(stats.fns, 0);
    }
}
