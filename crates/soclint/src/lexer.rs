//! Token-level Rust lexer — just enough structure for contract linting.
//!
//! The lexer distinguishes identifiers, lifetimes, literals (string, raw
//! string, byte string, char, number), punctuation, and comments, each
//! stamped with a 1-based line number. It does **not** build an AST; the
//! rule engine works on token patterns plus the brace-matched spans that
//! [`crate::scope`] derives from the stream.
//!
//! Correctness notes the rules depend on:
//!
//! - `'a` (lifetime) and `'a'` (char literal) are told apart, so a char
//!   literal containing `"` or `//` cannot desynchronize the stream.
//! - Raw strings `r"…"`, `r#"…"#` (any guard depth) and their byte
//!   variants are skipped as single tokens.
//! - Block comments nest, as in real Rust.
//! - Comments are preserved as tokens — the allow-directive parser reads
//!   them — but rule matchers skip them via [`Tokens::significant`].

/// What a token is, with enough payload for the rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `fn`, `unwrap`, …).
    Ident(String),
    /// A lifetime such as `'a` (kept distinct from char literals).
    Lifetime,
    /// Any literal: string, raw string, byte string, char, or number.
    Literal,
    /// A single punctuation character (`.`, `[`, `!`, `#`, …).
    Punct(char),
    /// A `//` or `/* */` comment, full text included (with markers).
    Comment(String),
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the exact identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A lexed file: every token, comments included.
#[derive(Debug)]
pub struct Tokens {
    /// All tokens in source order.
    pub all: Vec<Token>,
}

impl Tokens {
    /// Indices of non-comment tokens, in order — the stream the rule
    /// matchers walk.
    pub fn significant(&self) -> Vec<usize> {
        (0..self.all.len())
            .filter(|&i| !matches!(self.all[i].kind, TokenKind::Comment(_)))
            .collect()
    }
}

/// Lexes `source` into a token stream. Unterminated constructs (string,
/// block comment) consume to end of input rather than erroring: the linter
/// must keep going on any file `rustc` would reject anyway.
pub fn lex(source: &str) -> Tokens {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Byte-level scan; multi-byte UTF-8 continuation bytes never match any
    // of the ASCII delimiters below, so they ride along inside idents,
    // strings and comments untouched.
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Comment(source[start..i].to_string()),
                    line,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Comment(source[start..i].to_string()),
                    line: start_line,
                });
            }
            b'"' => {
                i = skip_string(bytes, i, &mut line);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_literal(bytes, i) => {
                let start_line = line;
                i = skip_raw_or_byte_literal(bytes, i, &mut line);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`,
                // `'\n'`): a quote followed by ident chars and *not*
                // closed by `'` right after one char is a lifetime.
                if is_char_literal(bytes, i) {
                    i = skip_char_literal(bytes, i);
                    tokens.push(Token {
                        kind: TokenKind::Literal,
                        line,
                    });
                } else {
                    i += 1;
                    while i < bytes.len() && is_ident_char(bytes[i]) {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len() && (is_ident_char(bytes[i]) || bytes[i] == b'.') {
                    // A dot continues the number only when a digit follows:
                    // stops before `0..n` ranges and before tuple-index
                    // method calls (`x.1.partial_cmp`), where the dot starts
                    // a field/method access, not a fraction.
                    if bytes[i] == b'.' && !bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        break;
                    }
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(source[start..i].to_string()),
                    line,
                });
            }
            c => {
                tokens.push(Token {
                    kind: TokenKind::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    Tokens { all: tokens }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// True when `r`/`b` at `i` opens a raw string, byte string, or raw byte
/// string (`r"`, `r#`, `b"`, `br"`, `rb` is not a thing, `b'` is a byte
/// char handled here too).
fn starts_raw_or_byte_literal(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => match bytes.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(bytes.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

fn skip_raw_or_byte_literal(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    // Advance past the prefix letters.
    while i < bytes.len() && (bytes[i] == b'r' || bytes[i] == b'b') {
        i += 1;
    }
    if bytes.get(i) == Some(&b'\'') {
        return skip_char_literal(bytes, i);
    }
    let mut guards = 0usize;
    while bytes.get(i) == Some(&b'#') {
        guards += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        // `r#ident` (raw identifier) or stray prefix: treat the prefix as
        // consumed; the caller emitted one Literal token for it.
        return i;
    }
    if guards == 0 {
        // Plain `r"…"` / `b"…"`: escapes are raw in r-strings but `\"` in
        // b-strings must not close early — b-strings do process escapes.
        // Telling them apart: only the b-prefix (no r) processes escapes.
        let raw = bytes[..i].iter().rev().any(|&c| c == b'r');
        i += 1;
        while i < bytes.len() {
            match bytes[i] {
                b'"' => return i + 1,
                b'\\' if !raw => i += 2,
                b'\n' => {
                    *line += 1;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        return i;
    }
    // Guarded raw string: scan for `"` followed by `guards` hashes.
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
        }
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < guards && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == guards {
                return j;
            }
        }
        i += 1;
    }
    i
}

fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return i + 1,
            b'\\' => {
                // A line-continuation escape (`\` + newline) still ends a
                // source line — count it, or every token after the string
                // reports a stale line number.
                if bytes.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Decides `'` at `i` opens a char literal (vs a lifetime): escapes
/// (`'\…'`) always do; otherwise one character followed by a closing `'`.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(_) => {
            // Skip one UTF-8 scalar, then require the closing quote.
            let mut j = i + 2;
            while j < bytes.len() && (bytes[j] & 0xC0) == 0x80 {
                j += 1;
            }
            bytes.get(j) == Some(&b'\'')
        }
        None => false,
    }
}

fn skip_char_literal(bytes: &[u8], mut i: usize) -> usize {
    i += 1; // opening quote
    if bytes.get(i) == Some(&b'\\') {
        i += 2;
        // \u{…} escapes run to the closing brace.
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
        return (i + 1).min(bytes.len());
    }
    while i < bytes.len() && bytes[i] != b'\'' {
        i += 1;
    }
    (i + 1).min(bytes.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .all
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = lex("let x = foo.bar();");
        assert_eq!(idents("let x = foo.bar();"), ["let", "x", "foo", "bar"]);
        assert!(t.all.iter().any(|t| t.is_punct('.')));
    }

    #[test]
    fn line_numbers_advance() {
        let t = lex("a\nb\n\nc");
        let lines: Vec<u32> = t.all.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn string_line_continuations_count_lines() {
        // `\` + newline inside a string still ends a source line; tokens
        // after the literal must not report stale line numbers.
        let t = lex("let s = \"a \\\n b \\\n c\";\nafter");
        let after = t
            .all
            .iter()
            .find(|t| t.is_ident("after"))
            .expect("token after string");
        assert_eq!(after.line, 4);
        // Plain embedded newlines were already counted; unterminated
        // strings still lex without panicking.
        let t2 = lex("\"a\nb\nc");
        assert!(!t2.all.is_empty());
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(
            idents(r#"let s = "HashMap::new() // not code";"#),
            ["let", "s"]
        );
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = "let s = r#\"has \" quote and HashMap\"#; after";
        assert_eq!(idents(src), ["let", "s", "after"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        assert_eq!(
            idents(r#"let s = b"unwrap()"; let c = b'x'; done"#),
            ["let", "s", "let", "c", "done"]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = '\"'; let d = 'z'; g(); }";
        let names = idents(src);
        assert!(names.contains(&"g".to_string()), "{names:?}");
        let lifetimes = lex(src)
            .all
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn comments_are_tokens_with_text() {
        let t = lex("code(); // soclint: allow(x) -- reason\n/* block\nspan */ more");
        let comments: Vec<&str> = t
            .all
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Comment(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].contains("soclint: allow"));
        assert!(comments[1].contains("block"));
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(
            idents("/* outer /* inner */ still comment */ real"),
            ["real"]
        );
    }

    #[test]
    fn numbers_including_floats_and_ranges() {
        let t = lex("0..n 1.5e3 0x1F 1_000");
        let lits = t
            .all
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lits, 4);
        assert!(idents("0..n").contains(&"n".to_string()));
    }

    #[test]
    fn tuple_index_method_call_keeps_the_method_ident() {
        assert_eq!(idents("a.1.partial_cmp(b.1)"), ["a", "partial_cmp", "b"]);
    }
}
