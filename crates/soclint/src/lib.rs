//! `soclint` — workspace-native static analysis enforcing the two
//! load-bearing contracts of this reproduction:
//!
//! 1. **Determinism**: plans are bit-identical at any worker count, so the
//!    search/reduction crates must not consume hash-iteration order, wall
//!    clock, OS entropy, or NaN-unsafe float comparisons.
//! 2. **Robustness**: untrusted inputs (ITC'02 files, plan files, pattern
//!    files, vector images) must surface as typed errors — never panics,
//!    unguarded indexing, or silently truncating casts.
//!
//! Plus hygiene: every library crate root carries the agreed
//! `#![forbid(unsafe_code)]` / `#![deny(missing_docs)]` header and
//! test-only code is `#[cfg(test)]`-gated.
//!
//! The tool is offline and dependency-free: a token-level lexer
//! ([`lexer`]) plus a lightweight attribute/span scanner ([`scope`]) stand
//! in for `syn`, which the build environment cannot fetch. Rules and the
//! suppression protocol live in [`rules`]; run `cargo run -p soclint --
//! --workspace` for the CI gate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod captures;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod scope;
pub mod taint;

use std::path::{Path, PathBuf};

pub use rules::{
    lint_source, Diagnostic, BANNED_CLOCK_TYPES, BANNED_ENTROPY_SOURCES, BANNED_HASH_TYPES,
    RULE_IDS,
};

/// Directories under the workspace root that contain lintable Rust code.
const LINT_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Path prefixes (workspace-relative, `/`-separated) excluded from the
/// walk: build output and the known-bad lint fixtures.
const EXCLUDED_PREFIXES: &[&str] = &["target/", "crates/soclint/tests/fixtures/"];

/// Error walking or reading the workspace.
#[derive(Debug)]
pub struct WalkError {
    /// The path that failed.
    pub path: PathBuf,
    /// The underlying I/O error, stringified.
    pub message: String,
}

impl std::fmt::Display for WalkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for WalkError {}

/// Lints every workspace `.rs` file under `root`. Returns diagnostics
/// sorted by (file, line, rule) — deterministic regardless of directory
/// enumeration order.
///
/// # Errors
///
/// Fails on unreadable directories or files; a clean workspace on a
/// healthy filesystem never errors.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, WalkError> {
    lint_workspace_with(root, 1)
}

/// [`lint_workspace`] with an explicit worker count. Files are linted as
/// independent `parpool` jobs; the results come back in task order and
/// are then sorted, so the diagnostics are byte-identical at any worker
/// count — soclint holds itself to the same contract it lints for.
///
/// # Errors
///
/// Fails on unreadable directories or files, like [`lint_workspace`].
pub fn lint_workspace_with(root: &Path, workers: usize) -> Result<Vec<Diagnostic>, WalkError> {
    let mut files = Vec::new();
    for dir in LINT_ROOTS {
        let base = root.join(dir);
        if base.is_dir() {
            collect_rs_files(root, &base, &mut files)?;
        }
    }
    files.sort();
    // Read sequentially (I/O errors must abort deterministically), lint
    // in parallel (pure CPU per file).
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        let full = root.join(rel);
        let source = std::fs::read_to_string(&full).map_err(|e| WalkError {
            path: full.clone(),
            message: e.to_string(),
        })?;
        sources.push(source);
    }
    let pool = parpool::Pool::with_workers(workers);
    let tasks: Vec<_> = files
        .iter()
        .zip(&sources)
        .map(|(rel, source)| move || lint_source(rel, source))
        .collect();
    let mut out: Vec<Diagnostic> = pool.run(tasks).into_iter().flatten().collect();
    out.sort();
    Ok(out)
}

/// Recursively collects workspace-relative `.rs` paths under `dir`.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), WalkError> {
    let entries = std::fs::read_dir(dir).map_err(|e| WalkError {
        path: dir.to_path_buf(),
        message: e.to_string(),
    })?;
    for entry in entries {
        let entry = entry.map_err(|e| WalkError {
            path: dir.to_path_buf(),
            message: e.to_string(),
        })?;
        let path = entry.path();
        let Some(rel) = relative_slash_path(root, &path) else {
            continue;
        };
        if rel.starts_with('.') || EXCLUDED_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated; `None` for non-UTF-8 names.
fn relative_slash_path(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let s = rel.to_str()?;
    Some(s.replace('\\', "/"))
}

/// Renders diagnostics as a JSON array (stable field order, no escaping
/// surprises: paths and messages contain no control characters).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_string(&d.file),
            d.line,
            json_string(&d.rule),
            json_string(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shapes() {
        let diags = vec![Diagnostic {
            file: "a/b.rs".into(),
            line: 3,
            rule: "panic-path".into(),
            message: "don't \"panic\"".into(),
        }];
        let json = to_json(&diags);
        assert!(json.contains("\"file\": \"a/b.rs\""));
        assert!(json.contains("\\\"panic\\\""));
        assert!(json.starts_with('['));
        assert_eq!(to_json(&[]), "[]\n");
    }

    #[test]
    fn walker_skips_fixtures_and_target() {
        // The real workspace test lives in tests/self_check.rs; here just
        // exercise exclusion logic on this crate's own tree.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = lint_workspace(&root).expect("workspace walk");
        assert!(
            !diags.iter().any(|d| d.file.contains("tests/fixtures/")),
            "fixtures must be excluded from the workspace walk"
        );
    }
}
