//! `soclint` — workspace-native static analysis enforcing the two
//! load-bearing contracts of this reproduction:
//!
//! 1. **Determinism**: plans are bit-identical at any worker count, so the
//!    search/reduction crates must not consume hash-iteration order, wall
//!    clock, OS entropy, or NaN-unsafe float comparisons.
//! 2. **Robustness**: untrusted inputs (ITC'02 files, plan files, pattern
//!    files, vector images) must surface as typed errors — never panics,
//!    unguarded indexing, or silently truncating casts.
//!
//! Plus hygiene: every library crate root carries the agreed
//! `#![forbid(unsafe_code)]` / `#![deny(missing_docs)]` header and
//! test-only code is `#[cfg(test)]`-gated.
//!
//! v3 proves the contracts **across** files: [`facts`] extracts per-file
//! call/loop/taint facts alongside the per-file rules, [`graph`] builds a
//! workspace call graph over them and runs the three interprocedural
//! analyses (`cross-taint`, `cancel-coverage`, `panic-reach`), [`cache`]
//! keys the per-file stage by content fingerprint so warm runs only
//! re-analyze edited files, and [`sarif`] renders findings for CI code
//! scanning.
//!
//! The tool is offline and dependency-free: a token-level lexer
//! ([`lexer`]) plus a lightweight attribute/span scanner ([`scope`]) stand
//! in for `syn`, which the build environment cannot fetch. Rules and the
//! suppression protocol live in [`rules`]; run `cargo run -p soclint --
//! --workspace` for the CI gate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod captures;
pub mod facts;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod sarif;
pub mod scope;
pub mod sha;
pub mod taint;

use std::path::{Path, PathBuf};

pub use graph::GraphStats;
pub use rules::{
    lint_source, Diagnostic, BANNED_CLOCK_TYPES, BANNED_ENTROPY_SOURCES, BANNED_HASH_TYPES,
    RULE_DESCRIPTIONS, RULE_IDS, WORKSPACE_RULE_IDS,
};

/// Directories under the workspace root that contain lintable Rust code.
const LINT_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Path prefixes (workspace-relative, `/`-separated) excluded from the
/// walk: build output and the known-bad lint fixtures.
const EXCLUDED_PREFIXES: &[&str] = &["target/", "crates/soclint/tests/fixtures/"];

/// Error walking or reading the workspace.
#[derive(Debug)]
pub struct WalkError {
    /// The path that failed.
    pub path: PathBuf,
    /// The underlying I/O error, stringified.
    pub message: String,
}

impl std::fmt::Display for WalkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for WalkError {}

/// Knobs for a workspace lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Worker count for the per-file stage (0 → 1).
    pub workers: usize,
    /// Directory for fingerprint-keyed per-file artifacts; `None`
    /// disables the incremental cache.
    pub cache_dir: Option<PathBuf>,
}

/// Outcome of a workspace lint run: the findings plus the observability
/// counters CI asserts on.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// All diagnostics (per-file rules + workspace analyses), sorted by
    /// (file, line, rule) — byte-identical at any worker count.
    pub diags: Vec<Diagnostic>,
    /// Findings suppressed by `allow` directives in the per-file stage,
    /// same sort. SARIF output renders these as `note`-level results so
    /// every suppression stays visible in code scanning.
    pub allowed: Vec<Diagnostic>,
    /// Call-graph resolution counters.
    pub stats: GraphStats,
    /// `.rs` files analyzed.
    pub files: usize,
    /// Files served from the incremental cache.
    pub cache_hits: usize,
    /// Files (re-)analyzed this run (`files - cache_hits`).
    pub reanalyzed: usize,
}

/// Lints every workspace `.rs` file under `root`. Returns diagnostics
/// sorted by (file, line, rule) — deterministic regardless of directory
/// enumeration order.
///
/// # Errors
///
/// Fails on unreadable directories or files; a clean workspace on a
/// healthy filesystem never errors.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, WalkError> {
    lint_workspace_with(root, 1)
}

/// [`lint_workspace`] with an explicit worker count. Files are linted as
/// independent `parpool` jobs; the results come back in task order and
/// are then sorted, so the diagnostics are byte-identical at any worker
/// count — soclint holds itself to the same contract it lints for.
///
/// # Errors
///
/// Fails on unreadable directories or files, like [`lint_workspace`].
pub fn lint_workspace_with(root: &Path, workers: usize) -> Result<Vec<Diagnostic>, WalkError> {
    let report = lint_workspace_report(
        root,
        &LintOptions {
            workers,
            cache_dir: None,
        },
    )?;
    Ok(report.diags)
}

/// The full v3 pipeline: walk → per-file analysis (parallel, cacheable)
/// → workspace call-graph analyses (sequential, deterministic).
///
/// # Errors
///
/// Fails on unreadable directories or files. Cache I/O failures are
/// never fatal: an unreadable artifact is a miss, an unwritable cache
/// directory silently disables caching for that file.
pub fn lint_workspace_report(root: &Path, opts: &LintOptions) -> Result<LintReport, WalkError> {
    let workers = opts.workers.max(1);
    let mut files = Vec::new();
    for dir in LINT_ROOTS {
        let base = root.join(dir);
        if base.is_dir() {
            collect_rs_files(root, &base, &mut files)?;
        }
    }
    files.sort();
    // Read sequentially (I/O errors must abort deterministically),
    // analyze in parallel (pure CPU per file).
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        let full = root.join(rel);
        let source = std::fs::read_to_string(&full).map_err(|e| WalkError {
            path: full.clone(),
            message: e.to_string(),
        })?;
        sources.push(source);
    }

    // Cache probe: each slot is either a hit (served artifact) or None
    // (goes to the pool).
    let mut slots: Vec<Option<facts::FileAnalysis>> = Vec::with_capacity(files.len());
    let mut cache_hits = 0usize;
    for (rel, source) in files.iter().zip(&sources) {
        let hit = opts
            .cache_dir
            .as_deref()
            .and_then(|dir| cache::load(dir, rel, source));
        if hit.is_some() {
            cache_hits += 1;
        }
        slots.push(hit);
    }

    let pool = parpool::Pool::with_workers(workers).labeled("lint");
    let tasks: Vec<_> = files
        .iter()
        .zip(&sources)
        .zip(&slots)
        .filter(|(_, slot)| slot.is_none())
        .map(|((rel, source), _)| move || facts::analyze_file(rel, source))
        .collect();
    let reanalyzed = tasks.len();
    let mut fresh = pool.run(tasks).into_iter();
    for (slot, (rel, source)) in slots.iter_mut().zip(files.iter().zip(&sources)) {
        if slot.is_none() {
            let analysis = fresh.next().expect("one pool result per miss");
            if let Some(dir) = opts.cache_dir.as_deref() {
                cache::store(dir, rel, source, &analysis);
            }
            *slot = Some(analysis);
        }
    }

    let analyses: Vec<facts::FileAnalysis> =
        slots.into_iter().map(|s| s.expect("slot filled")).collect();
    let mut diags: Vec<Diagnostic> = analyses.iter().flat_map(|a| a.diags.clone()).collect();
    let mut allowed: Vec<Diagnostic> = analyses.iter().flat_map(|a| a.allowed.clone()).collect();
    let file_facts: Vec<facts::FileFacts> = analyses.into_iter().map(|a| a.facts).collect();
    let (global, stats) = graph::analyze(&file_facts);
    diags.extend(global);
    diags.sort();
    diags.dedup();
    allowed.sort();
    allowed.dedup();
    Ok(LintReport {
        diags,
        allowed,
        stats,
        files: files.len(),
        cache_hits,
        reanalyzed,
    })
}

/// Recursively collects workspace-relative `.rs` paths under `dir`.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), WalkError> {
    let entries = std::fs::read_dir(dir).map_err(|e| WalkError {
        path: dir.to_path_buf(),
        message: e.to_string(),
    })?;
    for entry in entries {
        let entry = entry.map_err(|e| WalkError {
            path: dir.to_path_buf(),
            message: e.to_string(),
        })?;
        let path = entry.path();
        let Some(rel) = relative_slash_path(root, &path) else {
            continue;
        };
        if rel.starts_with('.') || EXCLUDED_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated; `None` for non-UTF-8 names.
fn relative_slash_path(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let s = rel.to_str()?;
    Some(s.replace('\\', "/"))
}

/// Renders diagnostics as a JSON array (stable field order, no escaping
/// surprises: paths and messages contain no control characters).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_string(&d.file),
            d.line,
            json_string(&d.rule),
            json_string(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shapes() {
        let diags = vec![Diagnostic {
            file: "a/b.rs".into(),
            line: 3,
            rule: "panic-path".into(),
            message: "don't \"panic\"".into(),
        }];
        let json = to_json(&diags);
        assert!(json.contains("\"file\": \"a/b.rs\""));
        assert!(json.contains("\\\"panic\\\""));
        assert!(json.starts_with('['));
        assert_eq!(to_json(&[]), "[]\n");
    }

    #[test]
    fn walker_skips_fixtures_and_target() {
        // The real workspace test lives in tests/self_check.rs; here just
        // exercise exclusion logic on this crate's own tree.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = lint_workspace(&root).expect("workspace walk");
        assert!(
            !diags.iter().any(|d| d.file.contains("tests/fixtures/")),
            "fixtures must be excluded from the workspace walk"
        );
    }

    #[test]
    fn report_counts_are_consistent() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = lint_workspace_report(&root, &LintOptions::default()).expect("workspace walk");
        assert!(report.files > 10);
        assert_eq!(report.cache_hits, 0, "no cache dir → no hits");
        assert_eq!(report.reanalyzed, report.files);
        assert!(report.stats.fns > 50, "{}", report.stats);
        assert!(report.stats.resolved > 50, "{}", report.stats);
    }
}
