//! CLI for the workspace contract linter.
//!
//! ```text
//! cargo run -p soclint -- --workspace                  # lint the whole tree
//! cargo run -p soclint -- --workspace --format sarif   # CI code scanning
//! cargo run -p soclint -- --workspace --cache target/soclint-cache
//! cargo run -p soclint -- crates/tam/src/anneal.rs     # lint specific files
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::{Component, Path, PathBuf};
use std::process::ExitCode;

use soclint::{
    lint_source, lint_workspace_report, sarif, to_json, Diagnostic, LintOptions, RULE_DESCRIPTIONS,
};

/// Output formats for the final report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();
    let mut workspace = false;
    let mut at: Option<String> = None;
    let mut workers = 1usize;
    let mut cache_dir: Option<PathBuf> = None;
    let mut graph_stats = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => format = Format::Json,
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                _ => return usage("--format needs one of: text, json, sarif"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--at" => match args.next() {
                Some(p) => at = Some(p),
                None => return usage("--at needs a workspace-relative path"),
            },
            "--workers" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => workers = n,
                _ => return usage("--workers needs a positive integer"),
            },
            "--cache" => match args.next() {
                Some(p) => cache_dir = Some(PathBuf::from(p)),
                None => return usage("--cache needs a directory"),
            },
            "--graph-stats" => graph_stats = true,
            "--list-rules" => {
                for (id, desc) in RULE_DESCRIPTIONS {
                    println!("{id:<22} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag `{other}`"));
            }
            file => files.push(file.to_string()),
        }
    }
    if !workspace && files.is_empty() {
        return usage("nothing to lint: pass --workspace or file paths");
    }

    let root = root.unwrap_or_else(find_workspace_root);
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut allowed: Vec<Diagnostic> = Vec::new();

    if workspace {
        let opts = LintOptions { workers, cache_dir };
        match lint_workspace_report(&root, &opts) {
            Ok(report) => {
                eprintln!(
                    "soclint: cache: hits={} reanalyzed={} files={}",
                    report.cache_hits, report.reanalyzed, report.files
                );
                if graph_stats {
                    eprintln!("soclint: {}", report.stats);
                }
                diags.extend(report.diags);
                allowed.extend(report.allowed);
            }
            Err(e) => {
                eprintln!("soclint: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if at.is_some() && files.len() != 1 {
        return usage("--at applies to exactly one file");
    }
    for rel in &files {
        // File arguments resolve like any CLI tool's: relative to the
        // invoking directory first, the workspace root as a fallback.
        let cwd_path = PathBuf::from(rel);
        let full = if cwd_path.is_file() {
            cwd_path
        } else {
            root.join(rel)
        };
        let lint_as = match &at {
            Some(p) => workspace_rel(&root, p),
            None => workspace_rel(&root, rel),
        };
        match std::fs::read_to_string(&full) {
            Ok(source) => diags.extend(lint_source(&lint_as, &source)),
            Err(e) => {
                eprintln!("soclint: {}: {e}", full.display());
                return ExitCode::from(2);
            }
        }
    }
    diags.sort();
    diags.dedup();
    allowed.sort();
    allowed.dedup();

    match format {
        Format::Json => print!("{}", to_json(&diags)),
        Format::Sarif => print!("{}", sarif::to_sarif(&diags, &allowed)),
        Format::Text => {
            for d in &diags {
                println!("{d}");
            }
            if diags.is_empty() {
                eprintln!("soclint: clean");
            } else {
                eprintln!("soclint: {} violation(s)", diags.len());
            }
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Lexically resolves `.` / `..` components without touching the
/// filesystem.
fn lexical_clean(path: &Path) -> PathBuf {
    let mut out = PathBuf::new();
    for c in path.components() {
        match c {
            Component::CurDir => {}
            Component::ParentDir => {
                out.pop();
            }
            other => out.push(other),
        }
    }
    out
}

/// Canonicalizes `given` to the workspace-relative, `/`-separated path
/// used for rule scoping. Absolute paths and paths that resolve (via the
/// invoking directory) to an existing file inside the workspace are
/// rebased onto `root`; anything else is taken as already
/// workspace-relative — so `--at` means the same scope set no matter
/// which subdirectory soclint runs from.
fn workspace_rel(root: &Path, given: &str) -> String {
    let given = given.replace('\\', "/");
    let root_abs = lexical_clean(&root.canonicalize().unwrap_or_else(|_| root.to_path_buf()));
    let p = Path::new(&given);
    let cand = if p.is_absolute() {
        lexical_clean(p)
    } else {
        let cwd = std::env::current_dir().unwrap_or_default();
        lexical_clean(&cwd.join(p))
    };
    if let Ok(rel) = cand.strip_prefix(&root_abs) {
        if p.is_absolute() || cand.is_file() {
            if let Some(s) = rel.to_str() {
                return s.replace('\\', "/");
            }
        }
    }
    given
}

/// Walks upward from the current directory to the first directory holding
/// a `Cargo.toml` with a `[workspace]` table; falls back to `.`.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("soclint: {message}");
    eprint!("{HELP}");
    ExitCode::from(2)
}

const HELP: &str = "\
soclint — workspace contract linter (determinism / robustness / hygiene /
interprocedural: cross-taint, cancel-coverage, panic-reach)

USAGE:
    soclint --workspace [--format F] [--root PATH] [--workers N] [--cache DIR]
    soclint [--root PATH] [--at PATH] FILE...

OPTIONS:
    --workspace    Lint every .rs file under crates/, src/, tests/, examples/,
                   including the workspace call-graph analyses
    --format F     Output format: text (default), json, or sarif (2.1.0)
    --json         Alias for --format json
    --workers N    Per-file analysis on N parpool workers (default 1; the
                   report is byte-identical at any worker count)
    --cache DIR    Fingerprint-keyed per-file cache; warm runs re-analyze
                   only edited files (stderr reports hits/reanalyzed)
    --graph-stats  Print call-graph resolution counters to stderr
    --root PATH    Workspace root (default: nearest [workspace] Cargo.toml)
    --at PATH      Lint the (single) FILE as if it lived at this
                   workspace-relative path; rule scoping is path-based, so
                   this is how fixtures emulate in-tree locations. The path
                   is normalized to workspace-relative form, so absolute or
                   subdirectory-relative spellings scope identically
    --list-rules   Print the rule ids with descriptions and exit
    -h, --help     This help

Suppress a finding with an auditable scoped comment:
    // soclint: allow(<rule>) -- <reason>
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_discovery_finds_a_workspace() {
        // When run from the repo, the discovered root has a [workspace].
        let root = find_workspace_root();
        let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
        assert!(manifest.contains("[workspace]") || root == std::path::Path::new("."));
    }

    #[test]
    fn lexical_clean_resolves_dots() {
        assert_eq!(
            lexical_clean(Path::new("/a/b/../c/./d")),
            PathBuf::from("/a/c/d")
        );
        assert_eq!(lexical_clean(Path::new("a/../../b")), PathBuf::from("b"));
    }

    #[test]
    fn workspace_rel_keeps_relative_and_rebases_absolute() {
        let root = find_workspace_root();
        // A plain workspace-relative path is unchanged.
        assert_eq!(
            workspace_rel(&root, "crates/tam/src/lib.rs"),
            "crates/tam/src/lib.rs"
        );
        // An absolute in-tree path is rebased.
        let abs = root.join("crates/tam/src/lib.rs");
        if abs.is_file() {
            assert_eq!(
                workspace_rel(&root, abs.to_str().expect("utf8 path")),
                "crates/tam/src/lib.rs"
            );
        }
        // A path outside the workspace stays as given.
        assert_eq!(workspace_rel(&root, "/nowhere/x.rs"), "/nowhere/x.rs");
    }
}
