//! CLI for the workspace contract linter.
//!
//! ```text
//! cargo run -p soclint -- --workspace            # lint the whole tree
//! cargo run -p soclint -- --workspace --json     # machine-readable report
//! cargo run -p soclint -- crates/tam/src/anneal.rs   # lint specific files
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use soclint::{lint_source, lint_workspace_with, to_json, Diagnostic, RULE_IDS};

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();
    let mut workspace = false;
    let mut at: Option<String> = None;
    let mut workers = 1usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--at" => match args.next() {
                Some(p) => at = Some(p.replace('\\', "/")),
                None => return usage("--at needs a workspace-relative path"),
            },
            "--workers" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => workers = n,
                _ => return usage("--workers needs a positive integer"),
            },
            "--list-rules" => {
                for id in RULE_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag `{other}`"));
            }
            file => files.push(file.to_string()),
        }
    }
    if !workspace && files.is_empty() {
        return usage("nothing to lint: pass --workspace or file paths");
    }

    let root = root.unwrap_or_else(find_workspace_root);
    let mut diags: Vec<Diagnostic> = Vec::new();

    if workspace {
        match lint_workspace_with(&root, workers) {
            Ok(d) => diags.extend(d),
            Err(e) => {
                eprintln!("soclint: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if at.is_some() && files.len() != 1 {
        return usage("--at applies to exactly one file");
    }
    for rel in &files {
        let full = root.join(rel);
        let lint_as = at.as_deref().unwrap_or(rel);
        match std::fs::read_to_string(&full) {
            Ok(source) => diags.extend(lint_source(&lint_as.replace('\\', "/"), &source)),
            Err(e) => {
                eprintln!("soclint: {}: {e}", full.display());
                return ExitCode::from(2);
            }
        }
    }
    diags.sort();
    diags.dedup();

    if json {
        print!("{}", to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            eprintln!("soclint: clean");
        } else {
            eprintln!("soclint: {} violation(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walks upward from the current directory to the first directory holding
/// a `Cargo.toml` with a `[workspace]` table; falls back to `.`.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("soclint: {message}");
    eprint!("{HELP}");
    ExitCode::from(2)
}

const HELP: &str = "\
soclint — workspace contract linter (determinism / robustness / hygiene)

USAGE:
    soclint --workspace [--json] [--root PATH] [--workers N]
    soclint [--root PATH] [--at PATH] FILE...

OPTIONS:
    --workspace    Lint every .rs file under crates/, src/, tests/, examples/
    --json         Emit a JSON array instead of text diagnostics
    --workers N    Lint files on N parpool workers (default 1; the report
                   is byte-identical at any worker count)
    --root PATH    Workspace root (default: nearest [workspace] Cargo.toml)
    --at PATH      Lint the (single) FILE as if it lived at this
                   workspace-relative path; rule scoping is path-based, so
                   this is how fixtures emulate in-tree locations
    --list-rules   Print the rule ids and exit
    -h, --help     This help

Suppress a finding with an auditable scoped comment:
    // soclint: allow(<rule>) -- <reason>
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_discovery_finds_a_workspace() {
        // When run from the repo, the discovered root has a [workspace].
        let root = find_workspace_root();
        let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
        assert!(manifest.contains("[workspace]") || root == std::path::Path::new("."));
    }
}
