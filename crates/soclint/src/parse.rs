//! Pass 1 of the flow-aware analyzer: a lightweight recursive-descent
//! layer over the token stream from [`crate::lexer`].
//!
//! This is deliberately **not** a Rust parser. It recovers exactly the
//! structure the flow rules in [`crate::taint`] and [`crate::captures`]
//! need, and nothing more:
//!
//! - every `fn` item (free, inherent, trait) with its name, parameter
//!   binding names, and body token range;
//! - every `let` binding inside a body, **flattened** in source order —
//!   bindings inside `if`/`for`/`match` arms appear in the enclosing
//!   function's table (block scoping is intentionally ignored: for a lint,
//!   a binding that leaks a few lines past its block costs a possible
//!   false positive, never a missed flow);
//! - every closure, as a tree: `move`-ness, arity-zero detection (the
//!   job-thunk signature `FnOnce() -> T` submitted to `parpool`), closure
//!   parameter names, and the closure's own flattened `let` table.
//!
//! Everything else (types, generics, attributes, expressions) stays as
//! raw token ranges into the significant-token stream, which the pass-2
//! matchers scan linearly. Like the lexer, the parser never fails: on any
//! input — including byte garbage `rustc` would reject — it produces
//! *some* tree with in-bounds spans (the property suite in
//! `tests/lint_prop.rs` holds it to that).

use crate::lexer::{Token, TokenKind, Tokens};

/// One parsed function item.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameter binding names (`self` excluded; pattern parameters
    /// contribute the idents directly followed by `:`).
    pub params: Vec<String>,
    /// Body as a half-open range into the significant-token index list
    /// (the tokens strictly inside the outermost braces).
    pub body: SigRange,
    /// `let` bindings in the body, flattened in source order. Bindings
    /// inside nested closures are *not* listed here — they live on the
    /// closure node.
    pub lets: Vec<LetBinding>,
    /// Closures in the body, outermost first, in source order.
    pub closures: Vec<Closure>,
}

/// One `let` binding (possibly a pattern binding several names).
#[derive(Debug)]
pub struct LetBinding {
    /// All names the pattern binds (`let (a, b) = …` lists both).
    pub names: Vec<String>,
    /// 1-based line of the `let` keyword.
    pub line: u32,
    /// Initializer token range (empty for `let x;`). For `let … else`,
    /// the range covers the initializer *and* the else block — the flow
    /// rules only scan it for idents, so the over-approximation is safe.
    pub init: SigRange,
}

/// One closure expression.
#[derive(Debug)]
pub struct Closure {
    /// 1-based line of the opening `|` (or of `move`).
    pub line: u32,
    /// Whether the closure is a `move` closure.
    pub is_move: bool,
    /// Parameter binding names.
    pub params: Vec<String>,
    /// True for `||` closures — the `FnOnce() -> T` job-thunk shape.
    pub nullary: bool,
    /// Body token range (inside braces for block bodies, the bare
    /// expression otherwise).
    pub body: SigRange,
    /// Flattened `let` bindings inside the body.
    pub lets: Vec<LetBinding>,
    /// Nested closures inside the body.
    pub closures: Vec<Closure>,
}

/// Half-open `[start, end)` range of *significant-token indices* (indices
/// into the `sig` vector, not into `Tokens::all`).
pub type SigRange = (usize, usize);

/// The parsed file: functions plus the shared significant-token index
/// list every range points into.
#[derive(Debug)]
pub struct Ast {
    /// All functions, in source order (nested fns are hoisted to this
    /// list like everything else — flow analysis is per-function).
    pub fns: Vec<FnItem>,
    /// Indices of non-comment tokens, shared by all ranges.
    pub sig: Vec<usize>,
}

impl Ast {
    /// All binding names local to `closure` (its parameters plus its
    /// flattened `let` names) — the complement of its capture set.
    pub fn closure_locals(closure: &Closure) -> Vec<&str> {
        let mut out: Vec<&str> = closure.params.iter().map(String::as_str).collect();
        for l in &closure.lets {
            out.extend(l.names.iter().map(String::as_str));
        }
        out
    }
}

/// Parses `tokens` into the item/closure tree. Never fails; see module
/// docs for the guarantees.
pub fn parse(tokens: &Tokens) -> Ast {
    let sig = tokens.significant();
    let toks = &tokens.all;
    let mut fns = Vec::new();
    let mut s = 0usize;
    while s < sig.len() {
        if toks[sig[s]].is_ident("fn") {
            let (item, next) = parse_fn(toks, &sig, s);
            if let Some(item) = item {
                fns.push(item);
            }
            s = next;
        } else {
            s += 1;
        }
    }
    Ast { fns, sig }
}

/// Parses a `fn` item starting at `s` (which points at the `fn` ident).
/// Returns the item (None for signatures without a body, e.g. trait
/// method declarations) and the index to resume scanning from. The
/// resume index is always *inside or just past the signature*, never past
/// the body — nested fns inside the body are found by the caller's scan.
fn parse_fn(toks: &[Token], sig: &[usize], s: usize) -> (Option<FnItem>, usize) {
    let line = toks[sig[s]].line;
    let mut j = s + 1;
    let Some(name) = sig
        .get(j)
        .and_then(|&t| toks[t].ident().map(str::to_string))
    else {
        return (None, s + 1);
    };
    j += 1;
    // Generics: `<` … `>` with `->` arrows inside (`fn f<F: Fn(u32) -> u64>`)
    // not closing the list.
    if at_punct(toks, sig, j, '<') {
        j = skip_angle_group(toks, sig, j);
    }
    // Parameters.
    if !at_punct(toks, sig, j, '(') {
        return (None, j);
    }
    let params_start = j + 1;
    let params_end = match_group(toks, sig, j, '(', ')');
    let params = param_names(toks, sig, params_start, params_end.saturating_sub(1));
    j = params_end;
    // Return type / where clause: run to the body `{` or a terminating `;`
    // (trait declarations). Angle groups are skipped so a `Result<… {0} …>`
    // const-generic brace cannot be mistaken for the body.
    while j < sig.len() {
        match toks[sig[j]].kind {
            TokenKind::Punct('{') => break,
            TokenKind::Punct(';') => return (None, j + 1),
            TokenKind::Punct('<') => {
                j = skip_angle_group(toks, sig, j);
            }
            _ => j += 1,
        }
    }
    if j >= sig.len() {
        return (None, j);
    }
    let body_start = j + 1;
    let body_close = match_group(toks, sig, j, '{', '}');
    let body = (body_start, body_close.saturating_sub(1).max(body_start));
    let mut lets = Vec::new();
    let mut closures = Vec::new();
    scan_block(toks, sig, body, &mut lets, &mut closures);
    (
        Some(FnItem {
            name,
            line,
            params,
            body,
            lets,
            closures,
        }),
        // Resume after the signature, not after the body: nested `fn`
        // items inside the body must be seen by the top-level scan.
        body_start,
    )
}

/// Collects `let` bindings and closures in `range`, flattening nested
/// blocks but *descending into closures separately* (their bindings land
/// on the closure node, not on the enclosing function).
fn scan_block(
    toks: &[Token],
    sig: &[usize],
    range: SigRange,
    lets: &mut Vec<LetBinding>,
    closures: &mut Vec<Closure>,
) {
    let (start, end) = range;
    let mut j = start;
    while j < end.min(sig.len()) {
        let t = &toks[sig[j]];
        match &t.kind {
            TokenKind::Ident(name) if name == "let" => {
                let (binding, next) = parse_let(toks, sig, j, end);
                // The initializer may itself contain closures.
                let init = binding.init;
                lets.push(binding);
                scan_for_closures(toks, sig, init, closures);
                j = next;
            }
            TokenKind::Ident(name) if name == "fn" => {
                // Nested fn: skip its signature; its body is scanned when
                // `parse` reaches it. Avoid double-counting its lets here.
                let close = skip_fn_item(toks, sig, j, end);
                j = close;
            }
            TokenKind::Punct('|') if closure_starts_here(toks, sig, j) => {
                let (closure, next) = parse_closure(toks, sig, j, end, false);
                closures.push(closure);
                j = next;
            }
            TokenKind::Ident(name) if name == "move" && at_punct(toks, sig, j + 1, '|') => {
                let (closure, next) = parse_closure(toks, sig, j + 1, end, true);
                closures.push(closure);
                j = next;
            }
            _ => j += 1,
        }
    }
}

/// Like [`scan_block`] but only collects closures (used on `let`
/// initializer ranges, whose `let`s were already recorded).
fn scan_for_closures(toks: &[Token], sig: &[usize], range: SigRange, closures: &mut Vec<Closure>) {
    let (start, end) = range;
    let mut j = start;
    while j < end.min(sig.len()) {
        match &toks[sig[j]].kind {
            TokenKind::Punct('|') if closure_starts_here(toks, sig, j) => {
                let (closure, next) = parse_closure(toks, sig, j, end, false);
                closures.push(closure);
                j = next;
            }
            TokenKind::Ident(name) if name == "move" && at_punct(toks, sig, j + 1, '|') => {
                let (closure, next) = parse_closure(toks, sig, j + 1, end, true);
                closures.push(closure);
                j = next;
            }
            _ => j += 1,
        }
    }
}

/// Parses `let <pattern> [: ty] [= init] …;` starting at the `let` ident.
fn parse_let(toks: &[Token], sig: &[usize], s: usize, limit: usize) -> (LetBinding, usize) {
    let line = toks[sig[s]].line;
    let mut names = Vec::new();
    let mut j = s + 1;
    // Pattern + optional type: everything up to the top-level `=` (not
    // `==`, `=>`, `<=`, `>=`, `!=`) or the statement end.
    let mut depth = 0i32;
    let mut eq: Option<usize> = None;
    while j < limit.min(sig.len()) {
        match &toks[sig[j]].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
            TokenKind::Punct('{') => break, // `let x = loop {`? no: brace before `=` ends pattern scan defensively
            TokenKind::Punct(';') if depth <= 0 => break,
            TokenKind::Punct('=') if depth <= 0 => {
                let next_eq = at_punct(toks, sig, j + 1, '=') || at_punct(toks, sig, j + 1, '>');
                let prev = j
                    .checked_sub(1)
                    .map(|p| &toks[sig[p]].kind)
                    .cloned()
                    .unwrap_or(TokenKind::Punct(' '));
                let prev_cmp = matches!(
                    prev,
                    TokenKind::Punct('=')
                        | TokenKind::Punct('<')
                        | TokenKind::Punct('>')
                        | TokenKind::Punct('!')
                );
                if !next_eq && !prev_cmp {
                    eq = Some(j);
                    break;
                }
            }
            TokenKind::Ident(name) if !matches!(name.as_str(), "mut" | "ref" | "let") => {
                // In the pattern section (before the `:` type annotation /
                // `=` initializer), idents are binding names — unless they
                // are path segments (`Some`, `Ok`, enum/struct names
                // followed by `(`/`{`/`::`).
                let is_path = at_punct(toks, sig, j + 1, '(')
                    || at_punct(toks, sig, j + 1, '{')
                    || (at_punct(toks, sig, j + 1, ':') && at_punct(toks, sig, j + 2, ':'));
                if !is_path {
                    names.push(name.clone());
                }
            }
            _ => {}
        }
        // A single `:` at depth 0 starts the type annotation — nothing
        // after it binds a name.
        if depth <= 0
            && toks[sig[j]].is_punct(':')
            && !at_punct(toks, sig, j + 1, ':')
            && !(j > s + 1 && toks[sig[j - 1]].is_punct(':'))
        {
            // Fast-forward to the `=` / `;`.
            let mut k = j + 1;
            let mut d = 0i32;
            while k < limit.min(sig.len()) {
                match &toks[sig[k]].kind {
                    TokenKind::Punct('(') | TokenKind::Punct('[') => d += 1,
                    TokenKind::Punct(')') | TokenKind::Punct(']') => d -= 1,
                    TokenKind::Punct('<') => {
                        k = skip_angle_group(toks, sig, k);
                        continue;
                    }
                    TokenKind::Punct(';') if d <= 0 => break,
                    TokenKind::Punct('=') if d <= 0 && !at_punct(toks, sig, k + 1, '=') => break,
                    TokenKind::Punct('{') if d <= 0 => break,
                    _ => {}
                }
                k += 1;
            }
            j = k;
            if at_punct(toks, sig, j, '=') {
                eq = Some(j);
            }
            break;
        }
        j += 1;
    }
    // Initializer: from after `=` to the statement-ending `;` at depth 0
    // (braces from `match`/`if`/`else` blocks raise the depth, so the
    // terminator of `let … else { … };` and `let x = match … { … };` is
    // found correctly).
    let (init, next) = match eq {
        Some(e) => {
            let mut k = e + 1;
            let mut d = 0i32;
            while k < limit.min(sig.len()) {
                match &toks[sig[k]].kind {
                    TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => d += 1,
                    TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => d -= 1,
                    TokenKind::Punct(';') if d <= 0 => break,
                    _ => {}
                }
                k += 1;
            }
            ((e + 1, k), k + 1)
        }
        None => ((j, j), j + 1),
    };
    (LetBinding { names, line, init }, next)
}

/// Decides whether the `|` at `s` opens a closure (vs bitwise/boolean or,
/// or a pattern alternative). A closure `|` follows an expression
/// *opener*: `(`, `,`, `=`, `{`, `;`, `:`, `return`, `=>`, `.method(`…
/// anything that cannot end an operand. A `|` after an operand
/// (ident/literal/`)`/`]`) is an operator.
fn closure_starts_here(toks: &[Token], sig: &[usize], s: usize) -> bool {
    let Some(p) = s.checked_sub(1) else {
        return true;
    };
    match &toks[sig[p]].kind {
        TokenKind::Ident(name) => matches!(
            name.as_str(),
            "return" | "move" | "else" | "in" | "break" | "match" | "if" | "while"
        ),
        TokenKind::Literal | TokenKind::Lifetime => false,
        TokenKind::Punct(c) => !matches!(c, ')' | ']' | '}'),
        TokenKind::Comment(_) => true,
    }
}

/// Parses a closure starting at the opening `|` (caller already consumed
/// a `move` if present).
fn parse_closure(
    toks: &[Token],
    sig: &[usize],
    bar: usize,
    limit: usize,
    is_move: bool,
) -> (Closure, usize) {
    let line = toks[sig[bar]].line;
    let mut params = Vec::new();
    let nullary = at_punct(toks, sig, bar + 1, '|');
    let mut j;
    if nullary {
        j = bar + 2;
    } else {
        // Parameter list to the closing `|` (skipping over any type
        // annotations and their bracket groups).
        j = bar + 1;
        let mut depth = 0i32;
        let mut in_type = false;
        while j < limit.min(sig.len()) {
            match &toks[sig[j]].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct('<') => {
                    j = skip_angle_group(toks, sig, j);
                    continue;
                }
                TokenKind::Punct('|') if depth <= 0 => {
                    j += 1;
                    break;
                }
                TokenKind::Punct(':') if depth <= 0 => in_type = true,
                TokenKind::Punct(',') if depth <= 0 => in_type = false,
                TokenKind::Ident(name) if !in_type && !matches!(name.as_str(), "mut" | "ref") => {
                    params.push(name.clone());
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Body: a block `{ … }`, or a bare expression up to `,` / `)` / `;`
    // at depth 0.
    let (body, next) = if at_punct(toks, sig, j, '{') {
        let close = match_group(toks, sig, j, '{', '}');
        ((j + 1, close.saturating_sub(1).max(j + 1)), close)
    } else {
        let start = j;
        let mut k = j;
        let mut d = 0i32;
        while k < limit.min(sig.len()) {
            match &toks[sig[k]].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => d += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    if d == 0 {
                        break;
                    }
                    d -= 1;
                }
                TokenKind::Punct(',') | TokenKind::Punct(';') if d <= 0 => break,
                _ => {}
            }
            k += 1;
        }
        ((start, k), k)
    };
    let mut lets = Vec::new();
    let mut closures = Vec::new();
    scan_block(toks, sig, body, &mut lets, &mut closures);
    (
        Closure {
            line,
            is_move,
            params,
            nullary,
            body,
            lets,
            closures,
        },
        next,
    )
}

/// Skips a nested `fn` item's signature inside a body scan; returns the
/// index of its body-opening `{` + 1 (so the nested body is scanned as
/// part of the *nested* fn when `parse` reaches it, not double-counted
/// here). The nested body is skipped entirely.
fn skip_fn_item(toks: &[Token], sig: &[usize], s: usize, limit: usize) -> usize {
    let mut j = s + 1;
    while j < limit.min(sig.len()) {
        match toks[sig[j]].kind {
            TokenKind::Punct('{') => return match_group(toks, sig, j, '{', '}'),
            TokenKind::Punct(';') => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Parameter names between `start..end` (the inside of the parens):
/// idents directly followed by `:` (excluding `self` and path `::`).
fn param_names(toks: &[Token], sig: &[usize], start: usize, end: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut j = start;
    while j < end.min(sig.len()) {
        if let TokenKind::Ident(name) = &toks[sig[j]].kind {
            let single_colon = at_punct(toks, sig, j + 1, ':') && !at_punct(toks, sig, j + 2, ':');
            let prev_colon = j > start && toks[sig[j - 1]].is_punct(':');
            if single_colon && !prev_colon && name != "self" {
                out.push(name.clone());
            }
        }
        j += 1;
    }
    out
}

/// Index just past the matching `close` for the `open` at `s`. Returns
/// `sig.len()` when unbalanced (truncated input).
pub(crate) fn match_group(
    toks: &[Token],
    sig: &[usize],
    s: usize,
    open: char,
    close: char,
) -> usize {
    let mut depth = 0i32;
    let mut j = s;
    while j < sig.len() {
        if toks[sig[j]].is_punct(open) {
            depth += 1;
        } else if toks[sig[j]].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    sig.len()
}

/// Skips a `<` … `>` group starting at `s`, treating `->`'s `>` as not
/// closing (function-trait sugar inside generics). Returns the index just
/// past the closing `>`, or the first position where the group cannot
/// continue (unbalanced input).
fn skip_angle_group(toks: &[Token], sig: &[usize], s: usize) -> usize {
    let mut depth = 0i32;
    let mut j = s;
    while j < sig.len() {
        match toks[sig[j]].kind {
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('>') => {
                let arrow = j > 0 && toks[sig[j - 1]].is_punct('-');
                if !arrow {
                    depth -= 1;
                    if depth <= 0 {
                        return j + 1;
                    }
                }
            }
            // A `;` or `{` at angle depth means this wasn't a generic
            // list after all (e.g. `a < b` comparison): bail out.
            TokenKind::Punct(';') | TokenKind::Punct('{') => return j,
            _ => {}
        }
        j += 1;
    }
    sig.len()
}

fn at_punct(toks: &[Token], sig: &[usize], j: usize, c: char) -> bool {
    sig.get(j).is_some_and(|&t| toks[t].is_punct(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src))
    }

    #[test]
    fn fn_names_params_and_lets() {
        let ast = parse_src(
            "fn add(a: u32, b: u32) -> u32 { let sum = a + b; sum }\n\
             fn other(x: &str) { let (p, q) = split(x); }\n",
        );
        assert_eq!(ast.fns.len(), 2);
        assert_eq!(ast.fns[0].name, "add");
        assert_eq!(ast.fns[0].params, ["a", "b"]);
        assert_eq!(ast.fns[0].lets.len(), 1);
        assert_eq!(ast.fns[0].lets[0].names, ["sum"]);
        assert_eq!(ast.fns[1].lets[0].names, ["p", "q"]);
    }

    #[test]
    fn generic_fn_with_fn_trait_bound() {
        let ast = parse_src("fn run<F: Fn(u32) -> u64>(task: F) -> u64 { task(1) }\n");
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].params, ["task"]);
    }

    #[test]
    fn lets_inside_control_flow_are_flattened() {
        let ast = parse_src(
            "fn f(v: &[u32]) { for x in v { let y = x + 1; use_it(y); } if t { let z = 2; } }\n",
        );
        let names: Vec<_> = ast.fns[0]
            .lets
            .iter()
            .flat_map(|l| l.names.clone())
            .collect();
        assert_eq!(names, ["y", "z"]);
    }

    #[test]
    fn let_with_type_annotation_and_match_init() {
        let ast = parse_src(
            "fn f(s: &str) { let n: usize = s.parse().ok()?; let m = match n { 0 => 1, _ => n };\n}\n",
        );
        let l = &ast.fns[0].lets;
        assert_eq!(l[0].names, ["n"]);
        assert_eq!(l[1].names, ["m"]);
        // The init ranges are non-empty and in bounds.
        for b in l {
            assert!(b.init.0 <= b.init.1 && b.init.1 <= ast.sig.len());
        }
    }

    #[test]
    fn closures_move_nullary_and_captures() {
        let ast = parse_src(
            "fn f() { let tasks: Vec<_> = (0..9).map(|k| move || { let local = k; work(local) }).collect(); }\n",
        );
        let outer = &ast.fns[0].closures;
        assert_eq!(outer.len(), 1, "{outer:?}");
        assert_eq!(outer[0].params, ["k"]);
        assert!(!outer[0].nullary);
        let inner = &outer[0].closures;
        assert_eq!(inner.len(), 1);
        assert!(inner[0].nullary && inner[0].is_move);
        assert_eq!(inner[0].lets[0].names, ["local"]);
        let locals = Ast::closure_locals(&inner[0]);
        assert!(locals.contains(&"local") && !locals.contains(&"k"));
    }

    #[test]
    fn or_operator_is_not_a_closure() {
        let ast = parse_src("fn f(a: bool, b: bool) -> bool { a | b }\n");
        assert!(ast.fns[0].closures.is_empty());
    }

    #[test]
    fn nested_fn_lets_stay_on_the_nested_fn() {
        let ast = parse_src("fn outer() { fn inner() { let x = 1; } let y = 2; }\n");
        assert_eq!(ast.fns.len(), 2);
        let outer = ast.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = ast.fns.iter().find(|f| f.name == "inner").unwrap();
        let outer_names: Vec<_> = outer.lets.iter().flat_map(|l| l.names.clone()).collect();
        let inner_names: Vec<_> = inner.lets.iter().flat_map(|l| l.names.clone()).collect();
        assert_eq!(outer_names, ["y"]);
        assert_eq!(inner_names, ["x"]);
    }

    #[test]
    fn let_else_init_spans_the_else_block() {
        let ast =
            parse_src("fn f(o: Option<u32>) { let Some(v) = o else { return; }; use_it(v); }\n");
        assert_eq!(ast.fns[0].lets.len(), 1);
        assert_eq!(ast.fns[0].lets[0].names, ["v"]);
    }

    #[test]
    fn garbage_never_panics_and_spans_stay_in_bounds() {
        for src in [
            "fn",
            "fn (",
            "fn f(",
            "fn f() {",
            "let | = |;",
            "fn f() { |x { } }",
            "}}}}((((",
            "fn f<T(] { let = ; }",
        ] {
            let ast = parse_src(src);
            for f in &ast.fns {
                assert!(f.body.0 <= ast.sig.len() && f.body.1 <= ast.sig.len());
                for l in &f.lets {
                    assert!(l.init.1 <= ast.sig.len());
                }
            }
        }
    }
}
