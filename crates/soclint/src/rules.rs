//! The contract rules and the engine that applies them to one file.
//!
//! Every rule has a stable kebab-case id — the name used in suppression
//! comments, `--json` output, and the fixture suite:
//!
//! | id | scope | contract |
//! |----|-------|----------|
//! | `hash-collections` | determinism crates | no `HashMap`/`HashSet` & friends — iteration order may reach decisions |
//! | `wall-clock` | all but `robust`/bench | no `Instant::now` / `SystemTime::now` |
//! | `os-entropy` | all but `robust`/bench | no thread ids, `RandomState`, OS RNGs |
//! | `nan-compare` | determinism crates | no `partial_cmp` — use `total_cmp` / integer keys |
//! | `panic-path` | untrusted parsers | no `unwrap`/`expect`/`panic!`-family |
//! | `unchecked-index` | untrusted parsers | no `expr[...]` indexing — use `get` |
//! | `as-narrowing` | untrusted parsers | no narrowing `as` casts — use `try_from` |
//! | `taint-arith` | untrusted parsers | parsed values must not reach raw `+`/`-`/`*` — use `checked_*` |
//! | `taint-index` | untrusted parsers | parsed values must not reach index/`split_at` sinks unguarded |
//! | `capture-mut` | capture crates | job thunks must not mutate captured shared state |
//! | `relaxed-ordering` | determinism crates | no `Ordering::Relaxed` — results may vary per run |
//! | `order-sensitive-reduce` | capture crates | no reductions over completion-order streams |
//! | `dsan-escape` | capture crates | shared state captured by job thunks flows through `dsan::` accessors |
//! | `deny-header` | crate/bin/test roots | root carries the agreed `#![forbid]`(/`#![deny]`) header |
//! | `cfg-test-gate` | all library code | `mod tests` must be `#[cfg(test)]`-gated |
//! | `allow-syntax` | everywhere | suppressions must name known rules and carry `-- <reason>` |
//!
//! The first seven are token-pattern rules; `taint-*` and the capture
//! family run on the pass-1 tree from [`crate::parse`] (see
//! [`crate::taint`] and [`crate::captures`]).
//!
//! Suppression: `// soclint: allow(rule-a, rule-b) -- reason`. A trailing
//! comment suppresses its own line; a comment alone on a line suppresses
//! the next code line; `allow-file(rule) -- reason` anywhere in the file
//! suppresses the whole file. The reason is mandatory — an allow without
//! one is itself a violation, so every exception stays auditable.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Token, TokenKind, Tokens};
use crate::scope::{classify, test_spans, FileScope, TestSpans};

/// Identifiers of every rule, in reporting order.
pub const RULE_IDS: &[&str] = &[
    "hash-collections",
    "wall-clock",
    "os-entropy",
    "nan-compare",
    "panic-path",
    "unchecked-index",
    "as-narrowing",
    "taint-arith",
    "taint-index",
    "capture-mut",
    "relaxed-ordering",
    "order-sensitive-reduce",
    "dsan-escape",
    "deny-header",
    "cfg-test-gate",
    "allow-syntax",
    "cross-taint",
    "cancel-coverage",
    "panic-reach",
];

/// The workspace-level (interprocedural) rules: they run on the call
/// graph in [`crate::graph`], not on a single file, so `--workspace` (or
/// [`crate::lint_workspace`]) is the only mode that reports them.
pub const WORKSPACE_RULE_IDS: &[&str] = &["cross-taint", "cancel-coverage", "panic-reach"];

/// One-line description per rule id, for `--list-rules` and the SARIF
/// `tool.driver.rules` metadata. Kept 1:1 with [`RULE_IDS`] (pinned by a
/// test).
pub const RULE_DESCRIPTIONS: &[(&str, &str)] = &[
    (
        "hash-collections",
        "no hash-ordered collections in determinism-scoped crates",
    ),
    (
        "wall-clock",
        "no Instant::now/SystemTime::now outside robust/bench code",
    ),
    (
        "os-entropy",
        "no OS entropy or thread identity in library code",
    ),
    (
        "nan-compare",
        "no NaN-unsafe partial_cmp in determinism-scoped crates",
    ),
    (
        "panic-path",
        "no unwrap/expect/panic! in untrusted-input parsers",
    ),
    (
        "unchecked-index",
        "no expr[..] indexing in untrusted-input parsers",
    ),
    (
        "as-narrowing",
        "no narrowing as casts in untrusted-input parsers",
    ),
    (
        "taint-arith",
        "parsed values must not reach raw +/-/* unchecked",
    ),
    (
        "taint-index",
        "parsed values must not reach index sinks unguarded",
    ),
    (
        "capture-mut",
        "job thunks must not mutate captured shared state",
    ),
    (
        "relaxed-ordering",
        "no Ordering::Relaxed in determinism-scoped crates",
    ),
    (
        "order-sensitive-reduce",
        "no reductions over completion-order streams",
    ),
    (
        "dsan-escape",
        "shared state captured by job thunks must flow through the dsan \
         instrumented accessors",
    ),
    (
        "deny-header",
        "crate/bin/test roots carry the agreed lint header",
    ),
    ("cfg-test-gate", "mod tests must be #[cfg(test)]-gated"),
    (
        "allow-syntax",
        "suppressions must name known rules and carry a reason",
    ),
    (
        "cross-taint",
        "parsed values must not flow into callees whose parameters reach \
         arithmetic/index sinks (interprocedural)",
    ),
    (
        "cancel-coverage",
        "loops reachable from the cascade/serve request path must poll \
         Deadline/CancelToken transitively",
    ),
    (
        "panic-reach",
        "untrusted-input parsers must not transitively call panic-capable \
         functions",
    ),
];

/// Hash-ordered collection types banned in determinism crates
/// (`hash-collections`). `clippy.toml`'s `disallowed-types` must stay a
/// subset of this list — `tests/clippy_sync.rs` pins the two layers
/// together.
pub const BANNED_HASH_TYPES: &[&str] = &[
    "HashMap",
    "HashSet",
    "FxHashMap",
    "FxHashSet",
    "IndexMap",
    "IndexSet",
    "DefaultHasher",
];

/// Types whose `::now` constructor is banned outside `robust`/bench code
/// (`wall-clock`). Mirrored by `clippy.toml`'s `disallowed-methods`.
pub const BANNED_CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];

/// Entropy / scheduler-identity sources banned outside `robust`/bench
/// code (`os-entropy`).
pub const BANNED_ENTROPY_SOURCES: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "getrandom",
    "OsRng",
    "ThreadId",
    "RandomState",
];

/// One finding: file, 1-based line, rule id, human-readable message.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Stable rule id (see [`RULE_IDS`]).
    pub rule: String,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Parsed suppressions for one file.
#[derive(Debug, Default)]
pub(crate) struct Allows {
    /// rule id -> lines on which it is suppressed.
    pub(crate) lines: BTreeMap<String, BTreeSet<u32>>,
    /// rule ids suppressed for the whole file.
    pub(crate) file_wide: BTreeSet<String>,
    /// Malformed directives found while parsing.
    pub(crate) errors: Vec<(u32, String)>,
}

impl Allows {
    fn permits(&self, rule: &str, line: u32) -> bool {
        self.file_wide.contains(rule)
            || self
                .lines
                .get(rule)
                .is_some_and(|lines| lines.contains(&line))
    }
}

/// Lints one file's source text under the scope its path implies.
///
/// `path` must be workspace-relative with `/` separators — rule scoping
/// is path-based, so the same source text can lint differently at
/// different paths (the fixture suite leans on this).
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    lint_tokens(path, &lex(source)).0
}

/// [`lint_source`] over pre-lexed tokens, so callers that also extract
/// facts ([`crate::facts`]) lex only once. Returns `(reported,
/// suppressed)`: findings an `allow` directive swallowed are kept so the
/// SARIF renderer can surface them as `note`-level results — every
/// suppression stays visible in code scanning instead of vanishing.
pub(crate) fn lint_tokens(path: &str, tokens: &Tokens) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    let scope = classify(path);
    let spans = test_spans(tokens);
    let allows = parse_allows(tokens);

    let mut out = Vec::new();
    let mut allowed = Vec::new();
    let mut push = |rule: &str, line: u32, message: String| {
        let d = Diagnostic {
            file: path.to_string(),
            line,
            rule: rule.to_string(),
            message,
        };
        if allows.permits(rule, line) {
            allowed.push(d);
        } else {
            out.push(d);
        }
    };

    for (line, message) in &allows.errors {
        push("allow-syntax", *line, message.clone());
    }

    let sig = tokens.significant();
    let toks = &tokens.all;
    let in_test = |line: u32| scope.all_test || spans.contains(line);

    for (si, &ti) in sig.iter().enumerate() {
        let t = &toks[ti];
        let line = t.line;
        if in_test(line) {
            continue;
        }
        check_determinism(&scope, toks, &sig, si, t, &mut push);
        check_robustness(&scope, toks, &sig, si, t, &mut push);
        check_test_gate(&scope, toks, &sig, si, t, &spans, &mut push);
    }

    // Flow-aware passes on the pass-1 tree. The parse only runs for files
    // some flow rule actually scopes to — the token rules above don't
    // need it.
    if scope.untrusted_parser || scope.capture_checked {
        let ast = crate::parse::parse(tokens);
        if scope.untrusted_parser {
            crate::taint::check(&ast, toks, &in_test, &mut push);
        }
        if scope.capture_checked {
            crate::captures::check_captures(&ast, toks, &in_test, &mut push);
            crate::captures::check_dsan_escape(&ast, toks, &in_test, &mut push);
            crate::captures::check_reductions(toks, &sig, &in_test, &mut push);
        }
    }
    if scope.determinism {
        crate::captures::check_orderings(toks, &sig, &in_test, &mut push);
    }

    if scope.lib_root {
        check_deny_header(tokens, true, &mut push);
    } else if scope.bin_root {
        check_deny_header(tokens, false, &mut push);
    }

    out.sort();
    allowed.sort();
    (out, allowed)
}

/// Determinism rules: hash collections, wall clock, entropy, NaN-unsafe
/// comparisons.
fn check_determinism(
    scope: &FileScope,
    toks: &[Token],
    sig: &[usize],
    si: usize,
    t: &Token,
    push: &mut impl FnMut(&str, u32, String),
) {
    let Some(name) = t.ident() else { return };
    if scope.determinism {
        if BANNED_HASH_TYPES.contains(&name) {
            push(
                "hash-collections",
                t.line,
                format!(
                    "`{name}` in a determinism-scoped crate: iteration order can reach \
                     search decisions; use `BTreeMap`/`BTreeSet` or a sorted drain"
                ),
            );
        }
        if name == "partial_cmp" {
            push(
                "nan-compare",
                t.line,
                "`partial_cmp` is NaN-unsafe in a determinism-scoped crate; use \
                 `total_cmp` or compare integer keys"
                    .to_string(),
            );
        }
    }
    if scope.wall_clock_banned {
        if BANNED_CLOCK_TYPES.contains(&name) && followed_by_path(toks, sig, si, "now") {
            push(
                "wall-clock",
                t.line,
                format!(
                    "`{name}::now` outside `robust`/bench code: wall-clock reads make \
                     results machine-dependent; thread a `robust::Deadline` instead"
                ),
            );
        }
        if BANNED_ENTROPY_SOURCES.contains(&name) {
            push(
                "os-entropy",
                t.line,
                format!("`{name}` draws OS entropy or thread identity; derive state from the run's seed"),
            );
        }
        if name == "thread" && followed_by_path(toks, sig, si, "current") {
            push(
                "os-entropy",
                t.line,
                "`thread::current()` leaks scheduler identity into library code".to_string(),
            );
        }
    }
}

/// Robustness rules for untrusted-input parsers: panic paths, unguarded
/// indexing, narrowing casts.
fn check_robustness(
    scope: &FileScope,
    toks: &[Token],
    sig: &[usize],
    si: usize,
    t: &Token,
    push: &mut impl FnMut(&str, u32, String),
) {
    if !scope.untrusted_parser {
        return;
    }
    match &t.kind {
        TokenKind::Ident(name) => {
            const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
            const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
            if PANIC_METHODS.contains(&name.as_str())
                && prev_is(toks, sig, si, '.')
                && next_is(toks, sig, si, '(')
            {
                push(
                    "panic-path",
                    t.line,
                    format!(
                        "`.{name}()` on an untrusted-input path: malformed input must \
                         surface as a typed error, never a panic"
                    ),
                );
            }
            if PANIC_MACROS.contains(&name.as_str()) && next_is(toks, sig, si, '!') {
                push(
                    "panic-path",
                    t.line,
                    format!("`{name}!` on an untrusted-input path: return a typed error instead"),
                );
            }
            const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "isize"];
            if name == "as" {
                if let Some(target) = sig
                    .get(si + 1)
                    .and_then(|&j| toks[j].ident())
                    .filter(|target| NARROW.contains(target))
                {
                    push(
                        "as-narrowing",
                        t.line,
                        format!(
                            "`as {target}` can silently truncate untrusted values; use \
                             `{target}::try_from` and report the failure"
                        ),
                    );
                }
            }
        }
        TokenKind::Punct('[') => {
            // `expr[...]`: an open bracket right after an identifier, `)`,
            // or `]` is an index expression (attributes arrive after `#`,
            // macros after `!`, types after `:`/`<`/`&` — none match).
            let indexes = si > 0
                && match &toks[sig[si - 1]].kind {
                    TokenKind::Ident(prev) => prev != "as" && !is_keyword_before_bracket(prev),
                    TokenKind::Punct(')') | TokenKind::Punct(']') => true,
                    _ => false,
                };
            if indexes {
                push(
                    "unchecked-index",
                    t.line,
                    "indexing can panic on untrusted input; use `.get(..)` and handle `None`"
                        .to_string(),
                );
            }
        }
        _ => {}
    }
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`let [a, b] = …` slice patterns, `return [..]`, `in [..]`, …).
fn is_keyword_before_bracket(name: &str) -> bool {
    matches!(
        name,
        "let"
            | "for"
            | "return"
            | "break"
            | "in"
            | "if"
            | "while"
            | "match"
            | "else"
            | "move"
            | "mut"
            | "dyn"
    )
}

/// Hygiene: `mod tests` must be gated.
fn check_test_gate(
    scope: &FileScope,
    toks: &[Token],
    sig: &[usize],
    si: usize,
    t: &Token,
    spans: &TestSpans,
    push: &mut impl FnMut(&str, u32, String),
) {
    if scope.all_test {
        return;
    }
    if t.is_ident("mod")
        && sig
            .get(si + 1)
            .is_some_and(|&j| toks[j].is_ident("tests") || toks[j].is_ident("test"))
        && !spans.contains(t.line)
    {
        push(
            "cfg-test-gate",
            t.line,
            "`mod tests` without `#[cfg(test)]`: test-only code must not ship in the \
             library build"
                .to_string(),
        );
    }
}

/// Hygiene: compilation roots must carry the agreed lint header. Library
/// crate roots (`require_docs`) need both attributes; binary/test/example
/// roots need `#![forbid(unsafe_code)]` only (doc coverage is not
/// enforced on harnesses).
fn check_deny_header(
    tokens: &crate::lexer::Tokens,
    require_docs: bool,
    push: &mut impl FnMut(&str, u32, String),
) {
    let sig = tokens.significant();
    let toks = &tokens.all;
    let mut has_forbid_unsafe = false;
    let mut has_deny_missing_docs = false;
    for (si, &ti) in sig.iter().enumerate() {
        if let Some(name) = toks[ti].ident() {
            match name {
                "forbid" => {
                    has_forbid_unsafe |= attr_args_contain(toks, &sig, si, "unsafe_code");
                }
                "deny" => {
                    has_deny_missing_docs |= attr_args_contain(toks, &sig, si, "missing_docs");
                }
                _ => {}
            }
        }
    }
    let kind = if require_docs {
        "library crate root"
    } else {
        "binary/test root"
    };
    if !has_forbid_unsafe {
        push(
            "deny-header",
            1,
            format!("{kind} lacks `#![forbid(unsafe_code)]`"),
        );
    }
    if require_docs && !has_deny_missing_docs {
        push(
            "deny-header",
            1,
            format!("{kind} lacks `#![deny(missing_docs)]`"),
        );
    }
}

/// True when the ident at `si` is followed by `(... wanted ...)`.
fn attr_args_contain(toks: &[Token], sig: &[usize], si: usize, wanted: &str) -> bool {
    let mut j = si + 1;
    if j >= sig.len() || !toks[sig[j]].is_punct('(') {
        return false;
    }
    let mut depth = 0i32;
    while j < sig.len() {
        match &toks[sig[j]].kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            TokenKind::Ident(name) if name == wanted => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

/// True when the significant tokens after `si` are `:: name`.
fn followed_by_path(toks: &[Token], sig: &[usize], si: usize, name: &str) -> bool {
    prev_or_next_colons(toks, sig, si) && sig.get(si + 3).is_some_and(|&j| toks[j].is_ident(name))
}

fn prev_or_next_colons(toks: &[Token], sig: &[usize], si: usize) -> bool {
    sig.get(si + 1).is_some_and(|&j| toks[j].is_punct(':'))
        && sig.get(si + 2).is_some_and(|&j| toks[j].is_punct(':'))
}

fn prev_is(toks: &[Token], sig: &[usize], si: usize, c: char) -> bool {
    si > 0 && toks[sig[si - 1]].is_punct(c)
}

fn next_is(toks: &[Token], sig: &[usize], si: usize, c: char) -> bool {
    sig.get(si + 1).is_some_and(|&j| toks[j].is_punct(c))
}

/// Extracts `soclint: allow(...)` directives from comment tokens.
pub(crate) fn parse_allows(tokens: &crate::lexer::Tokens) -> Allows {
    let mut allows = Allows::default();
    // Per code line: the first and last significant token, to decide
    // whether a directive is trailing (suppresses its own line) or
    // standalone (suppresses the next code line), and to step over
    // attribute-only lines (`#[allow(...)]`) when binding forward.
    let mut line_tokens: BTreeMap<u32, (TokenKind, TokenKind)> = BTreeMap::new();
    for t in &tokens.all {
        if matches!(t.kind, TokenKind::Comment(_)) {
            continue;
        }
        line_tokens
            .entry(t.line)
            .and_modify(|(_, last)| *last = t.kind.clone())
            .or_insert_with(|| (t.kind.clone(), t.kind.clone()));
    }
    let code_lines: BTreeSet<u32> = line_tokens.keys().copied().collect();
    // A line holding nothing but an attribute: starts with `#`, ends with
    // `]`. Standalone allows bind *through* these to the item they gate.
    let attr_only = |line: u32| -> bool {
        line_tokens.get(&line).is_some_and(|(first, last)| {
            matches!(first, TokenKind::Punct('#')) && matches!(last, TokenKind::Punct(']'))
        })
    };

    for t in &tokens.all {
        let TokenKind::Comment(text) = &t.kind else {
            continue;
        };
        // Doc comments are prose — a directive only counts in a plain
        // `//` / `/* */` comment (lets docs *talk about* the syntax).
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = text.find("soclint:") else {
            continue;
        };
        let directive = text[pos + "soclint:".len()..].trim();
        let (rules, file_wide) = match parse_directive(directive) {
            Ok(parsed) => parsed,
            Err(msg) => {
                allows.errors.push((t.line, msg));
                continue;
            }
        };
        let target = if code_lines.contains(&t.line) {
            t.line
        } else {
            // Standalone comment: bind to the next line that has code,
            // stepping over attribute-only lines so an allow above
            // `#[allow(clippy::…)]` still reaches the gated item.
            match code_lines.range(t.line + 1..).find(|&&l| !attr_only(l)) {
                Some(&next) => next,
                None => continue,
            }
        };
        for rule in rules {
            if file_wide {
                allows.file_wide.insert(rule);
            } else {
                allows.lines.entry(rule).or_default().insert(target);
            }
        }
    }
    allows
}

/// Parses the text after `soclint:` — `allow(rule, …) -- reason` or
/// `allow-file(rule, …) -- reason`.
fn parse_directive(text: &str) -> Result<(Vec<String>, bool), String> {
    let (file_wide, rest) = if let Some(rest) = text.strip_prefix("allow-file") {
        (true, rest)
    } else if let Some(rest) = text.strip_prefix("allow") {
        (false, rest)
    } else {
        return Err(format!(
            "unknown soclint directive `{text}`; expected `allow(<rule>) -- <reason>`"
        ));
    };
    let rest = rest.trim_start();
    let inner = rest
        .strip_prefix('(')
        .and_then(|r| r.split_once(')'))
        .ok_or_else(|| "allow directive needs `(<rule, …>)`".to_string())?;
    let (list, tail) = inner;
    let mut rules = Vec::new();
    for rule in list.split(',') {
        let rule = rule.trim();
        if rule.is_empty() {
            return Err("allow directive lists an empty rule name".to_string());
        }
        if !RULE_IDS.contains(&rule) {
            return Err(format!(
                "allow directive names unknown rule `{rule}` (known: {})",
                RULE_IDS.join(", ")
            ));
        }
        rules.push(rule.to_string());
    }
    if rules.is_empty() {
        return Err("allow directive lists no rules".to_string());
    }
    let reason = tail
        .trim()
        .strip_prefix("--")
        .map(str::trim)
        .unwrap_or_default();
    if reason.is_empty() {
        return Err(
            "allow directive is missing its mandatory `-- <reason>`: every exception \
             must say why it is sound"
                .to_string(),
        );
    }
    Ok((rules, file_wide))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEARCH_PATH: &str = "crates/tam/src/example.rs";
    const PARSER_PATH: &str = "crates/tdcsoc/src/planfile.rs";

    fn rules_hit(path: &str, src: &str) -> Vec<String> {
        lint_source(path, src).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn hash_map_flagged_in_search_crate_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules_hit(SEARCH_PATH, src), ["hash-collections"]);
        assert!(rules_hit("crates/robust/src/util.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n  fn f() { x.unwrap(); }\n}\n";
        assert!(rules_hit(SEARCH_PATH, src).is_empty());
        assert!(rules_hit(PARSER_PATH, src).is_empty());
    }

    #[test]
    fn wall_clock_flagged_outside_robust() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(rules_hit(SEARCH_PATH, src), ["wall-clock"]);
        assert!(rules_hit("crates/robust/src/x.rs", src).is_empty());
        // Bench bins may read clocks (they still owe the bin-root header,
        // checked separately).
        assert!(!rules_hit("src/bin/bench_profile.rs", src).contains(&"wall-clock".to_string()));
    }

    #[test]
    fn panic_paths_only_in_parser_files() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(rules_hit(PARSER_PATH, src), ["panic-path"]);
        assert!(rules_hit(SEARCH_PATH, src).is_empty());
    }

    #[test]
    fn free_function_named_expect_is_not_a_panic_path() {
        // planfile.rs has a local helper `expect(tok, kw, idx)`; only the
        // *method* `.expect(` panics.
        let src = "fn f() { expect(a, b, c)?; }\n";
        assert!(rules_hit(PARSER_PATH, src).is_empty());
    }

    #[test]
    fn indexing_flagged_with_get_exempt() {
        assert_eq!(
            rules_hit(PARSER_PATH, "fn f(v: &[u32], i: usize) -> u32 { v[i] }\n"),
            ["unchecked-index"]
        );
        assert!(rules_hit(
            PARSER_PATH,
            "fn f(v: &[u32], i: usize) -> Option<&u32> { v.get(i) }\n"
        )
        .is_empty());
        // Attributes, macro brackets and types are not index expressions.
        assert!(rules_hit(
            PARSER_PATH,
            "#[derive(Debug)]\nstruct S { a: [u8; 4] }\nfn f() -> Vec<u32> { vec![0; 4] }\n"
        )
        .is_empty());
        // Slice patterns destructure without panicking.
        assert!(rules_hit(
            PARSER_PATH,
            "fn f(v: &[u32]) { for w in v.windows(2) { let [a, b] = w else { return }; g(a, b); } }\n"
        )
        .is_empty());
    }

    #[test]
    fn narrowing_casts_flagged() {
        assert_eq!(
            rules_hit(PARSER_PATH, "fn f(x: u64) -> u32 { x as u32 }\n"),
            ["as-narrowing"]
        );
        assert!(rules_hit(PARSER_PATH, "fn f(x: u32) -> u64 { x as u64 }\n").is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "use std::collections::HashMap; // soclint: allow(hash-collections) -- keys never iterated\n";
        assert!(rules_hit(SEARCH_PATH, src).is_empty());
    }

    #[test]
    fn standalone_allow_binds_to_next_code_line() {
        let src = "// soclint: allow(hash-collections) -- lookup only, never iterated\nuse std::collections::HashMap;\n";
        assert!(rules_hit(SEARCH_PATH, src).is_empty());
    }

    #[test]
    fn standalone_allow_skips_attribute_lines() {
        let src = "// soclint: allow(hash-collections) -- lookup-only memo\n\
                   #[allow(clippy::disallowed_types)]\n\
                   use std::collections::HashMap;\n";
        assert!(rules_hit(SEARCH_PATH, src).is_empty());
    }

    #[test]
    fn doc_comments_do_not_carry_directives() {
        // Docs may *describe* the syntax without activating it.
        let src = "/// Suppress with `// soclint: allow(bogus-rule)` and a reason.\nfn f() {}\n";
        assert!(rules_hit(SEARCH_PATH, src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_violation() {
        let src = "use std::collections::HashMap; // soclint: allow(hash-collections)\n";
        let hits = rules_hit(SEARCH_PATH, src);
        assert!(hits.contains(&"allow-syntax".to_string()), "{hits:?}");
        assert!(hits.contains(&"hash-collections".to_string()), "{hits:?}");
    }

    #[test]
    fn allow_unknown_rule_is_a_violation() {
        let src = "fn f() {} // soclint: allow(made-up) -- because\n";
        assert_eq!(rules_hit(SEARCH_PATH, src), ["allow-syntax"]);
    }

    #[test]
    fn allow_file_spans_whole_file() {
        let src =
            "// soclint: allow-file(hash-collections) -- audit 2026-08: maps are lookup-only\n\
                   use std::collections::HashMap;\nfn f() { let x: HashMap<u32, u32>; }\n";
        assert!(rules_hit(SEARCH_PATH, src).is_empty());
    }

    #[test]
    fn allow_does_not_leak_to_other_lines() {
        let src = "use std::collections::HashMap; // soclint: allow(hash-collections) -- r\n\
                   use std::collections::HashSet;\n";
        let hits = lint_source(SEARCH_PATH, src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn deny_header_required_on_lib_roots() {
        let bare = "pub fn f() {}\n";
        let hits = rules_hit("crates/tam/src/lib.rs", bare);
        assert_eq!(hits, ["deny-header", "deny-header"]);
        let good = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}\n";
        assert!(rules_hit("crates/tam/src/lib.rs", good).is_empty());
        // Non-root files don't need it.
        assert!(rules_hit("crates/tam/src/other.rs", bare).is_empty());
    }

    #[test]
    fn ungated_mod_tests_flagged() {
        assert_eq!(
            rules_hit(SEARCH_PATH, "mod tests { fn t() {} }\n"),
            ["cfg-test-gate"]
        );
        assert!(rules_hit(SEARCH_PATH, "#[cfg(test)]\nmod tests { fn t() {} }\n").is_empty());
    }

    #[test]
    fn entropy_sources_flagged() {
        let hits = rules_hit(SEARCH_PATH, "fn f() { let id = thread::current().id(); }\n");
        assert_eq!(hits, ["os-entropy"]);
        assert_eq!(
            rules_hit(
                SEARCH_PATH,
                "use std::collections::hash_map::RandomState;\n"
            ),
            ["os-entropy"]
        );
    }

    #[test]
    fn nan_compare_flagged() {
        assert_eq!(
            rules_hit(SEARCH_PATH, "fn f(a: f64, b: f64) { a.partial_cmp(&b); }\n"),
            ["nan-compare"]
        );
    }

    #[test]
    fn diagnostics_carry_location_and_sort_stably() {
        let src = "use std::collections::HashSet;\nuse std::collections::HashMap;\n";
        let hits = lint_source(SEARCH_PATH, src);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].line, 1);
        assert_eq!(hits[1].line, 2);
        assert_eq!(
            hits[0].to_string(),
            format!("{SEARCH_PATH}:1: [hash-collections] {}", hits[0].message)
        );
    }

    #[test]
    fn taint_rules_scope_to_parser_files_only() {
        let src = "fn f(s: &str) -> u64 { let n: u64 = s.parse().ok()?; n + 1 }\n";
        assert_eq!(rules_hit(PARSER_PATH, src), ["taint-arith"]);
        assert!(rules_hit(SEARCH_PATH, src).is_empty());
        assert!(rules_hit("crates/robust/src/x.rs", src).is_empty());
    }

    #[test]
    fn capture_rules_scope_to_capture_crates_only() {
        // An uninstrumented `.lock()` on a capture trips both the mutation
        // rule and the sanitizer-coverage rule; outside capture crates,
        // neither applies.
        let src = "fn f() { s.spawn(move || { shared.lock().push(1); }); }\n";
        assert_eq!(
            rules_hit("crates/parpool/src/pool.rs", src),
            ["capture-mut", "dsan-escape"]
        );
        assert_eq!(rules_hit(SEARCH_PATH, src), ["capture-mut", "dsan-escape"]);
        assert!(rules_hit("crates/robust/src/x.rs", src).is_empty());
    }

    #[test]
    fn relaxed_ordering_scopes_to_determinism_crates() {
        let src = "fn f(n: &AtomicU64) { n.fetch_add(1, Ordering::Relaxed); }\n";
        assert_eq!(rules_hit(SEARCH_PATH, src), ["relaxed-ordering"]);
        // `robust` owns cancellation flags; relaxed there is fine.
        assert!(rules_hit("crates/robust/src/cancel.rs", src).is_empty());
    }

    #[test]
    fn order_sensitive_reduce_flagged_in_capture_crates() {
        let src = "fn f(rx: Receiver<R>) { let best = rx.try_iter().min_by_key(|r| r.cost); }\n";
        assert_eq!(
            rules_hit("crates/tam/src/example.rs", src),
            ["order-sensitive-reduce"]
        );
        assert!(rules_hit("crates/robust/src/x.rs", src).is_empty());
    }

    #[test]
    fn taint_allow_suppresses_with_reason() {
        let src = "fn f(s: &str) -> u64 { let n: u64 = s.parse().ok()?; \
                   n + 1 // soclint: allow(taint-arith) -- n parsed from a 3-digit field\n }\n";
        assert!(rules_hit(PARSER_PATH, src).is_empty());
    }

    #[test]
    fn bin_roots_need_forbid_unsafe_only() {
        let bare = "fn main() { run(); }\n";
        assert_eq!(rules_hit("src/bin/soc_tdc.rs", bare), ["deny-header"]);
        assert_eq!(rules_hit("tests/smoke.rs", bare), ["deny-header"]);
        assert_eq!(rules_hit("crates/tam/tests/prop.rs", bare), ["deny-header"]);
        let good = "#![forbid(unsafe_code)]\nfn main() { run(); }\n";
        assert!(rules_hit("src/bin/soc_tdc.rs", good).is_empty());
        assert!(rules_hit("tests/smoke.rs", good).is_empty());
        // Missing docs is NOT required on bin roots.
        assert!(!rules_hit("tests/smoke.rs", good).contains(&"deny-header".to_string()));
    }

    #[test]
    fn strings_and_comments_never_trigger() {
        let src =
            "fn f() -> &'static str { \"HashMap Instant::now .unwrap()\" }\n// HashMap in prose\n";
        assert!(rules_hit(SEARCH_PATH, src).is_empty());
        assert!(rules_hit(PARSER_PATH, src).is_empty());
    }
}
