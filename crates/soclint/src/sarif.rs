//! SARIF 2.1.0 output (`soclint --format sarif`), shaped for GitHub code
//! scanning: one run, the full rule table on `tool.driver`, one result
//! per diagnostic with a physical location. Rendered by hand like
//! [`crate::to_json`] — stable field order, no dependencies.

use crate::json_string;
use crate::rules::{Diagnostic, RULE_DESCRIPTIONS, RULE_IDS};

/// The schema GitHub's SARIF ingestion validates against.
pub const SCHEMA_URI: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Renders diagnostics as a SARIF 2.1.0 log.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"$schema\": {},\n", json_string(SCHEMA_URI)));
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"soclint\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/soc-tdc/soclint\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, (id, desc)) in RULE_DESCRIPTIONS.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{}\n",
            json_string(id),
            json_string(desc),
            if i + 1 < RULE_DESCRIPTIONS.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let rule_index = RULE_IDS
            .iter()
            .position(|r| *r == d.rule)
            .map(|p| p.to_string())
            .unwrap_or_else(|| "-1".to_string());
        out.push_str(&format!(
            "        {{\"ruleId\": {}, \"ruleIndex\": {}, \"level\": \"error\", \
             \"message\": {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": {}, \"uriBaseId\": \"%SRCROOT%\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}{}\n",
            json_string(&d.rule),
            rule_index,
            json_string(&d.message),
            json_string(&d.file),
            d.line.max(1),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_log_has_tool_and_no_results() {
        let s = to_sarif(&[]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"soclint\""));
        assert!(s.contains("sarif-schema-2.1.0.json"));
        // All rules are declared even with no findings.
        for id in RULE_IDS {
            assert!(s.contains(&format!("\"id\": \"{id}\"")), "{id}");
        }
    }

    #[test]
    fn results_carry_location_and_rule_index() {
        let d = Diagnostic {
            file: "crates/tam/src/lib.rs".into(),
            line: 7,
            rule: "cancel-coverage".into(),
            message: "a \"quoted\" message".into(),
        };
        let s = to_sarif(&[d]);
        assert!(s.contains("\"uri\": \"crates/tam/src/lib.rs\""));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("\\\"quoted\\\""));
        let idx = RULE_IDS
            .iter()
            .position(|r| *r == "cancel-coverage")
            .expect("rule");
        assert!(s.contains(&format!("\"ruleIndex\": {idx}")));
    }
}
