//! SARIF 2.1.0 output (`soclint --format sarif`), shaped for GitHub code
//! scanning: one run, the full rule table on `tool.driver` (with
//! per-rule `shortDescription` and `helpUri`), one result per finding
//! with a physical location. Reported violations render at level
//! `error`; findings a `// soclint: allow(...)` directive suppressed
//! render at level `note`, so every suppression stays visible in code
//! scanning instead of vanishing. Rendered by hand like
//! [`crate::to_json`] — stable field order, no dependencies.

use crate::json_string;
use crate::rules::{Diagnostic, RULE_DESCRIPTIONS, RULE_IDS};

/// The schema GitHub's SARIF ingestion validates against.
pub const SCHEMA_URI: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Base URI for rule documentation; each rule's `helpUri` is
/// `<base>#<rule-id>` (the anchors match the rule table in `rules.rs`).
pub const HELP_URI_BASE: &str = "https://example.invalid/soc-tdc/soclint";

/// Renders reported and `allow`-suppressed findings as a SARIF 2.1.0
/// log. `diags` become `error`-level results, `allowed` become
/// `note`-level results (in that order, each pre-sorted by the caller —
/// the log is byte-identical across runs and worker counts).
pub fn to_sarif(diags: &[Diagnostic], allowed: &[Diagnostic]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"$schema\": {},\n", json_string(SCHEMA_URI)));
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"soclint\",\n");
    out.push_str(&format!(
        "          \"informationUri\": {},\n",
        json_string(HELP_URI_BASE)
    ));
    out.push_str("          \"rules\": [\n");
    for (i, (id, desc)) in RULE_DESCRIPTIONS.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}, \
             \"helpUri\": {}}}{}\n",
            json_string(id),
            json_string(desc),
            json_string(&format!("{HELP_URI_BASE}#{id}")),
            if i + 1 < RULE_DESCRIPTIONS.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    let total = diags.len() + allowed.len();
    for (i, (d, level)) in diags
        .iter()
        .map(|d| (d, "error"))
        .chain(allowed.iter().map(|d| (d, "note")))
        .enumerate()
    {
        let rule_index = RULE_IDS
            .iter()
            .position(|r| *r == d.rule)
            .map(|p| p.to_string())
            .unwrap_or_else(|| "-1".to_string());
        out.push_str(&format!(
            "        {{\"ruleId\": {}, \"ruleIndex\": {}, \"level\": \"{}\", \
             \"message\": {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": {}, \"uriBaseId\": \"%SRCROOT%\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}{}\n",
            json_string(&d.rule),
            rule_index,
            level,
            json_string(&d.message),
            json_string(&d.file),
            d.line.max(1),
            if i + 1 < total { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_log_has_tool_and_no_results() {
        let s = to_sarif(&[], &[]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"soclint\""));
        assert!(s.contains("sarif-schema-2.1.0.json"));
        // All rules are declared even with no findings, each with a
        // rule-anchored helpUri.
        for id in RULE_IDS {
            assert!(s.contains(&format!("\"id\": \"{id}\"")), "{id}");
            assert!(
                s.contains(&format!("\"helpUri\": \"{HELP_URI_BASE}#{id}\"")),
                "{id}"
            );
        }
    }

    #[test]
    fn results_carry_location_and_rule_index() {
        let d = Diagnostic {
            file: "crates/tam/src/lib.rs".into(),
            line: 7,
            rule: "cancel-coverage".into(),
            message: "a \"quoted\" message".into(),
        };
        let s = to_sarif(&[d], &[]);
        assert!(s.contains("\"uri\": \"crates/tam/src/lib.rs\""));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("\\\"quoted\\\""));
        let idx = RULE_IDS
            .iter()
            .position(|r| *r == "cancel-coverage")
            .expect("rule");
        assert!(s.contains(&format!("\"ruleIndex\": {idx}")));
    }

    #[test]
    fn allowed_findings_render_as_notes_after_errors() {
        let err = Diagnostic {
            file: "a.rs".into(),
            line: 1,
            rule: "capture-mut".into(),
            message: "reported".into(),
        };
        let note = Diagnostic {
            file: "b.rs".into(),
            line: 2,
            rule: "relaxed-ordering".into(),
            message: "suppressed".into(),
        };
        let s = to_sarif(&[err], &[note]);
        let err_pos = s.find("\"level\": \"error\"").expect("error result");
        let note_pos = s.find("\"level\": \"note\"").expect("note result");
        assert!(err_pos < note_pos);
        assert!(s.contains("\"uri\": \"b.rs\""));
    }
}
