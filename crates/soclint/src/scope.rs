//! File classification and test-code span tracking.
//!
//! Rules are scoped: determinism rules apply to the search/reduction
//! crates, robustness rules to the untrusted-input parsers, hygiene rules
//! to every library crate. Classification is purely path-based so the
//! mapping stays auditable in one place — this module — rather than
//! scattered through per-file annotations.

use crate::lexer::{Token, TokenKind, Tokens};

/// Crates whose search and reduction decisions must be bit-reproducible:
/// no hash-ordered iteration, wall clock, OS entropy, or NaN-unsafe float
/// comparisons outside test code. `soclint` polices itself: diagnostics
/// order is part of its output contract.
pub const DETERMINISM_CRATES: &[&str] = &[
    "tam",
    "selenc",
    "wrapper",
    "parpool",
    "tdcsoc",
    "lfsr",
    "soc-model",
    "fdr",
    "soclint",
    // The daemon takes all time through `robust::Deadline` and keeps its
    // own state in ordered containers, so its request handling is as
    // reproducible as the planner underneath it.
    "serve",
    // The batch driver's ordered reports and plans must be identical at
    // any worker split; its latency/throughput reporting reads the clock
    // through explicit per-line allows.
    "fleet",
];

/// Crates allowed to read the wall clock: `robust` owns deadlines, the
/// vendored `criterion` shim times benchmarks.
pub const WALL_CLOCK_CRATES: &[&str] = &["robust", "criterion", "bench"];

/// Files that parse untrusted input end to end; panicking there turns bad
/// input into a crash, so `unwrap`/`expect`/`panic!`/unguarded indexing
/// and unchecked `as` narrowing are banned outright. The flow-aware
/// taint rules (`taint-arith`, `taint-index`) run on the same set.
pub const UNTRUSTED_PARSER_FILES: &[&str] = &[
    "crates/tdcsoc/src/planfile.rs",
    "crates/tdcsoc/src/vectors.rs",
    "crates/soc-model/src/itc02.rs",
    "crates/soc-model/src/patfile.rs",
    "crates/serve/src/json.rs",
    "crates/serve/src/http.rs",
    "crates/fleet/src/manifest.rs",
];

/// Crates that build or submit `parpool` job closures; the closure-capture
/// rules (`capture-mut`, `order-sensitive-reduce`) run here.
pub const CAPTURE_CRATES: &[&str] = &["parpool", "tam", "tdcsoc", "fleet"];

/// Everything soclint knows about one file before rules run.
#[derive(Debug, Clone)]
pub struct FileScope {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Owning crate (`tam`, `tdcsoc`, …); the workspace root package is
    /// `soc-tdc`.
    pub crate_name: String,
    /// Determinism rules apply (crate in scope, file not exempted).
    pub determinism: bool,
    /// Wall-clock and entropy bans apply.
    pub wall_clock_banned: bool,
    /// Robustness (no-panic) rules apply.
    pub untrusted_parser: bool,
    /// Closure-capture determinism rules apply.
    pub capture_checked: bool,
    /// This is a `crates/*/src/lib.rs` — full hygiene header required.
    pub lib_root: bool,
    /// A binary/test/example root (`src/bin/*.rs`, `tests/*.rs`,
    /// `examples/*.rs`, `crates/*/{tests,examples,benches}/*.rs`) — the
    /// `#![forbid(unsafe_code)]` half of the header is required.
    pub bin_root: bool,
    /// The whole file is test/bench code (under `tests/`, `benches/`, or
    /// an `examples/` directory).
    pub all_test: bool,
}

/// Classifies a workspace-relative path. `path` must use `/` separators.
pub fn classify(path: &str) -> FileScope {
    let crate_name = path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("soc-tdc")
        .to_string();

    let all_test = path.contains("/tests/")
        || path.contains("/benches/")
        || path.starts_with("tests/")
        || path.starts_with("examples/");

    // Bench binaries in the root package are measurement code, exempt
    // from the wall-clock ban like the bench crate itself.
    let bench_bin = path.starts_with("src/bin/bench_");

    let determinism = DETERMINISM_CRATES.contains(&crate_name.as_str()) && !all_test && !bench_bin;
    let wall_clock_banned = !WALL_CLOCK_CRATES.contains(&crate_name.as_str())
        && crate_name != "proptest"
        && !all_test
        && !bench_bin;
    let untrusted_parser = UNTRUSTED_PARSER_FILES.contains(&path);
    let capture_checked = CAPTURE_CRATES.contains(&crate_name.as_str()) && !all_test && !bench_bin;
    let lib_root = path.starts_with("crates/") && path.ends_with("/src/lib.rs");
    let bin_root = is_bin_root(path);

    FileScope {
        path: path.to_string(),
        crate_name,
        determinism,
        wall_clock_banned,
        untrusted_parser,
        capture_checked,
        lib_root,
        bin_root,
        all_test,
    }
}

/// True for direct `.rs` children of the binary/test/example roots —
/// files `rustc` compiles as their own crate, so each needs its own
/// `#![forbid(unsafe_code)]`.
fn is_bin_root(path: &str) -> bool {
    let direct_child_of = |prefix: &str| -> bool {
        path.strip_prefix(prefix)
            .is_some_and(|rest| rest.ends_with(".rs") && !rest.contains('/'))
    };
    if direct_child_of("tests/") || direct_child_of("examples/") || direct_child_of("src/bin/") {
        return true;
    }
    // crates/<name>/{tests,examples,benches,src/bin}/<file>.rs
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some((_, tail)) = rest.split_once('/') {
            for dir in ["tests/", "examples/", "benches/", "src/bin/"] {
                if let Some(file) = tail.strip_prefix(dir) {
                    if file.ends_with(".rs") && !file.contains('/') {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Line ranges (1-based, inclusive) of `#[cfg(test)]`- or `#[test]`-gated
/// items. Rules treat tokens inside these ranges as test code.
#[derive(Debug, Default)]
pub struct TestSpans {
    ranges: Vec<(u32, u32)>,
}

impl TestSpans {
    /// True when `line` is inside any gated item.
    pub fn contains(&self, line: u32) -> bool {
        self.ranges.iter().any(|&(a, b)| (a..=b).contains(&line))
    }

    /// The computed ranges (for diagnostics in tests).
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }
}

/// Finds `#[cfg(test)]` / `#[test]` attributes and brace-matches the item
/// that follows, recording its line span. Attributes stacked on the same
/// item are handled (the span starts at the first gated attribute). Items
/// ending in `;` (gated `use`, `type`) span to that semicolon.
pub fn test_spans(tokens: &Tokens) -> TestSpans {
    let sig = tokens.significant();
    let toks = &tokens.all;
    let mut spans = TestSpans::default();
    let mut s = 0usize;
    while s < sig.len() {
        if !is_test_attribute(toks, &sig, s) {
            s += 1;
            continue;
        }
        let attr_line = toks[sig[s]].line;
        // Skip this attribute and any further attributes on the same item.
        let mut j = skip_attribute(toks, &sig, s);
        while j < sig.len() && toks[sig[j]].is_punct('#') {
            j = skip_attribute(toks, &sig, j);
        }
        // Brace-match the item body (or run to `;` for braceless items).
        let mut depth = 0i32;
        let mut end_line = attr_line;
        while j < sig.len() {
            let t = &toks[sig[j]];
            match t.kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = t.line;
                        j += 1;
                        break;
                    }
                }
                TokenKind::Punct(';') if depth == 0 => {
                    end_line = t.line;
                    j += 1;
                    break;
                }
                _ => {}
            }
            end_line = t.line;
            j += 1;
        }
        spans.ranges.push((attr_line, end_line));
        s = j;
    }
    spans
}

/// True when the significant token at `s` opens `#[cfg(test)]`,
/// `#[cfg(any(test, …))]` or `#[test]` (also `#[bench]` and
/// `#[proptest]`-style test markers containing the word `test`).
fn is_test_attribute(toks: &[Token], sig: &[usize], s: usize) -> bool {
    if !toks[sig[s]].is_punct('#') {
        return false;
    }
    // Collect the idents inside the attribute's brackets.
    let mut j = s + 1;
    if j >= sig.len() || !toks[sig[j]].is_punct('[') {
        return false;
    }
    let mut depth = 0i32;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut first_ident: Option<&str> = None;
    while j < sig.len() {
        let t = &toks[sig[j]];
        match &t.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenKind::Ident(name) => {
                if first_ident.is_none() {
                    first_ident = Some(name);
                }
                match name.as_str() {
                    "cfg" | "cfg_attr" => saw_cfg = true,
                    "test" => saw_test = true,
                    _ => {}
                }
            }
            _ => {}
        }
        j += 1;
    }
    match first_ident {
        Some("test") | Some("bench") => true,
        _ => saw_cfg && saw_test,
    }
}

/// Returns the index of the first significant token after the attribute
/// opening at `s` (which must be `#`).
fn skip_attribute(toks: &[Token], sig: &[usize], s: usize) -> usize {
    let mut j = s + 1;
    // Optional `!` for inner attributes.
    if j < sig.len() && toks[sig[j]].is_punct('!') {
        j += 1;
    }
    if j >= sig.len() || !toks[sig[j]].is_punct('[') {
        return j;
    }
    let mut depth = 0i32;
    while j < sig.len() {
        match toks[sig[j]].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn classification_matrix() {
        let tam = classify("crates/tam/src/anneal.rs");
        assert!(tam.determinism && tam.wall_clock_banned && !tam.untrusted_parser);
        assert_eq!(tam.crate_name, "tam");

        let robust = classify("crates/robust/src/lib.rs");
        assert!(!robust.wall_clock_banned && robust.lib_root);

        let planfile = classify("crates/tdcsoc/src/planfile.rs");
        assert!(planfile.untrusted_parser && planfile.determinism);

        let wire_json = classify("crates/serve/src/json.rs");
        assert!(wire_json.untrusted_parser && wire_json.determinism);
        let wire_http = classify("crates/serve/src/http.rs");
        assert!(wire_http.untrusted_parser && wire_http.determinism);
        assert!(!classify("crates/serve/src/server.rs").untrusted_parser);

        let bench_bin = classify("src/bin/bench_profile.rs");
        assert!(!bench_bin.wall_clock_banned && !bench_bin.determinism);
        assert_eq!(bench_bin.crate_name, "soc-tdc");

        // The batched decompressor emulator replays plan-verified streams;
        // it must stay under the determinism and wall-clock bans like the
        // scalar decoder it mirrors.
        let emulate = classify("crates/selenc/src/emulate.rs");
        assert!(emulate.determinism && emulate.wall_clock_banned);
        // Dirty-tracking: content fingerprints (lut), the memoized stamp
        // (memo), and the fingerprint-keyed profile cache (planner) decide
        // what gets rebuilt — hash-order or clock leaks there would make
        // incremental and cold rebuilds diverge.
        let fingerprint = classify("crates/selenc/src/lut.rs");
        assert!(fingerprint.determinism && fingerprint.wall_clock_banned);
        let memo = classify("crates/selenc/src/memo.rs");
        assert!(memo.determinism && memo.wall_clock_banned);
        let incr = classify("crates/tdcsoc/src/planner.rs");
        assert!(incr.determinism && incr.wall_clock_banned && incr.capture_checked);

        // The fleet batch driver: determinism- and capture-checked like
        // the planner it drives; its manifest parser takes untrusted input.
        let fleet_runner = classify("crates/fleet/src/runner.rs");
        assert!(fleet_runner.determinism && fleet_runner.capture_checked);
        assert!(fleet_runner.wall_clock_banned && !fleet_runner.untrusted_parser);
        let fleet_manifest = classify("crates/fleet/src/manifest.rs");
        assert!(fleet_manifest.untrusted_parser && fleet_manifest.determinism);

        let itest = classify("crates/tam/tests/portfolio_prop.rs");
        assert!(itest.all_test && !itest.determinism);

        let root_test = classify("tests/failure_injection.rs");
        assert!(root_test.all_test);
    }

    #[test]
    fn capture_and_bin_root_scoping() {
        assert!(classify("crates/parpool/src/lib.rs").capture_checked);
        assert!(classify("crates/tam/src/optimize.rs").capture_checked);
        assert!(!classify("crates/robust/src/lib.rs").capture_checked);
        assert!(!classify("crates/parpool/tests/pool.rs").capture_checked);

        assert!(classify("tests/failure_injection.rs").bin_root);
        assert!(classify("src/bin/bench_profile.rs").bin_root);
        assert!(classify("examples/plan_demo.rs").bin_root);
        assert!(classify("crates/tam/tests/portfolio_prop.rs").bin_root);
        assert!(classify("crates/tam/benches/anneal.rs").bin_root);
        assert!(!classify("crates/tam/src/optimize.rs").bin_root);
        assert!(!classify("crates/tam/src/lib.rs").bin_root);
        assert!(!classify("tests/common/util.rs").bin_root);
    }

    #[test]
    fn cfg_test_mod_span() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn after() {}\n";
        let spans = test_spans(&lex(src));
        assert_eq!(spans.ranges(), &[(2, 5)]);
        assert!(spans.contains(4));
        assert!(!spans.contains(1));
        assert!(!spans.contains(6));
    }

    #[test]
    fn test_fn_and_stacked_attributes() {
        let src = "#[test]\n#[should_panic(expected = \"x\")]\nfn boom() {\n  body();\n}\n";
        let spans = test_spans(&lex(src));
        assert_eq!(spans.ranges(), &[(1, 5)]);
    }

    #[test]
    fn gated_use_spans_to_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashSet;\nfn real() {}\n";
        let spans = test_spans(&lex(src));
        assert_eq!(spans.ranges(), &[(1, 2)]);
        assert!(!spans.contains(3));
    }

    #[test]
    fn cfg_any_test_counts() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nmod helpers { fn h() {} }\n";
        let spans = test_spans(&lex(src));
        assert!(spans.contains(2));
    }

    #[test]
    fn non_test_cfg_ignored() {
        let src = "#[cfg(feature = \"fast\")]\nfn f() { x(); }\n";
        assert!(test_spans(&lex(src)).ranges().is_empty());
    }
}
