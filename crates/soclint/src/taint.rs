//! Pass 2a: untrusted-input taint analysis for the parser files.
//!
//! The robustness contract (DESIGN.md §9) says malformed ITC'02 / plan /
//! pattern / vector input must surface as typed errors. The token rules
//! (`panic-path`, `unchecked-index`, `as-narrowing`) ban the *syntactic*
//! crash sites; this module closes the flow gap: a value that **originates
//! from a reader or parse call** must not reach
//!
//! - an arithmetic sink (`+`, `-`, `*`, including compound assignment)
//!   outside a `checked_*`/`saturating_*`/`wrapping_*`/`try_from`
//!   construction → `taint-arith`;
//! - an indexing sink (`expr[…]`, `copy_from_slice`, `split_at`,
//!   `split_off`) without a *preceding bounds guard on the same binding*
//!   → `taint-index`.
//!
//! Sources are the direct reader calls (`read_*`, `from_str`, `.parse()`,
//! `from_le_bytes`-family byte loads) **plus a same-file call summary**:
//! any function in the file whose body calls a source becomes a source
//! itself (computed to fixpoint), so `planfile::num` — a thin wrapper
//! around `str::parse` — taints its callers' bindings exactly like a bare
//! `.parse()` would. Taint then propagates through `let` bindings in
//! source order, and every diagnostic renders the full chain
//! (`sink ← binding ← source call at line N`) so a finding is auditable
//! without re-running the analysis.
//!
//! Known false-negative classes are documented in DESIGN.md §13 (taint
//! through struct fields, through collections, and across files).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Token, TokenKind};
use crate::parse::{Ast, FnItem};

/// Method/function names that introduce taint when called.
pub(crate) fn is_source_name(name: &str) -> bool {
    name == "parse"
        || name == "from_str"
        || name.starts_with("read_")
        || name == "from_le_bytes"
        || name == "from_be_bytes"
        || name == "from_ne_bytes"
}

/// Names whose call *sanitizes* its result: a binding built through one
/// of these is range-checked (or explicitly wrapping) and no longer
/// attacker-steerable into a panic/overflow.
pub(crate) fn is_sanitizer_name(name: &str) -> bool {
    name == "try_from"
        || name == "try_into"
        || name == "clamp"
        || name == "min"
        || name == "len"
        || name.starts_with("checked_")
        || name.starts_with("saturating_")
        || name.starts_with("wrapping_")
}

/// Call sinks that panic on out-of-range lengths/indices.
pub(crate) const SLICE_SINKS: &[&str] =
    &["copy_from_slice", "split_at", "split_at_mut", "split_off"];

/// Where a binding's taint came from, for chain rendering.
#[derive(Debug, Clone)]
struct Taint {
    chain: String,
}

/// Runs the taint rules over every function in `ast`, reporting through
/// `push(rule, line, message)`. `in_test` exempts test-span lines.
pub fn check(
    ast: &Ast,
    toks: &[Token],
    in_test: &dyn Fn(u32) -> bool,
    push: &mut dyn FnMut(&str, u32, String),
) {
    let sources = derived_sources(ast, toks);
    for f in &ast.fns {
        check_fn(f, ast, toks, &sources, in_test, push);
    }
}

/// Same-file source summary: seed with the builtin source names, then a
/// fixpoint over function bodies — a fn that calls a source is a source.
pub(crate) fn derived_sources(ast: &Ast, toks: &[Token]) -> BTreeSet<String> {
    let mut sources: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut changed = false;
        for f in &ast.fns {
            if sources.contains(&f.name) {
                continue;
            }
            let (start, end) = f.body;
            let mut calls_source = false;
            for j in start..end.min(ast.sig.len()) {
                if let TokenKind::Ident(name) = &toks[ast.sig[j]].kind {
                    let called = is_call(toks, &ast.sig, j);
                    if called && (is_source_name(name) || sources.contains(name)) {
                        calls_source = true;
                        break;
                    }
                }
            }
            if calls_source {
                sources.insert(f.name.clone());
                changed = true;
            }
        }
        if !changed {
            return sources;
        }
    }
}

/// True when the ident at sig index `j` is called: followed by `(`,
/// optionally through a turbofish (`parse::<u32>(`).
pub(crate) fn is_call(toks: &[Token], sig: &[usize], j: usize) -> bool {
    if at(toks, sig, j + 1, '(') {
        return true;
    }
    // `name::<…>(`
    if at(toks, sig, j + 1, ':') && at(toks, sig, j + 2, ':') && at(toks, sig, j + 3, '<') {
        let mut depth = 0i32;
        let mut k = j + 3;
        while k < sig.len() {
            match toks[sig[k]].kind {
                TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        return at(toks, sig, k + 1, '(');
                    }
                }
                TokenKind::Punct(';') | TokenKind::Punct('{') => return false,
                _ => {}
            }
            k += 1;
        }
    }
    false
}

pub(crate) fn at(toks: &[Token], sig: &[usize], j: usize, c: char) -> bool {
    sig.get(j).is_some_and(|&t| toks[t].is_punct(c))
}

pub(crate) fn ident_at<'t>(toks: &'t [Token], sig: &[usize], j: usize) -> Option<&'t str> {
    sig.get(j).and_then(|&t| toks[t].ident())
}

/// The per-function linear dataflow walk. Processing significant tokens
/// in source order gives flow sensitivity for free: a guard recognized at
/// token *i* protects every sink at tokens *> i*.
fn check_fn(
    f: &FnItem,
    ast: &Ast,
    toks: &[Token],
    sources: &BTreeSet<String>,
    in_test: &dyn Fn(u32) -> bool,
    push: &mut dyn FnMut(&str, u32, String),
) {
    let sig = &ast.sig;
    let mut tainted: BTreeMap<String, Taint> = BTreeMap::new();
    let mut guarded: BTreeSet<String> = BTreeSet::new();

    // Pre-compute binding taint in source order (bindings are flattened,
    // so this is one forward pass).
    let mut lets = f.lets.iter().peekable();
    let (start, end) = f.body;
    let mut j = start;
    while j < end.min(sig.len()) {
        // Apply any let bindings whose initializer has been fully passed.
        while let Some(l) = lets.peek() {
            if l.init.1 <= j {
                let l = lets.next().expect("peeked");
                if let Some(taint) = init_taint(l, toks, sig, sources, &tainted) {
                    for name in &l.names {
                        tainted.insert(name.clone(), taint.clone());
                        guarded.remove(name);
                    }
                } else {
                    // Re-binding a name to a clean value clears its taint
                    // (`let n = usize::try_from(n)?;`).
                    for name in &l.names {
                        tainted.remove(name);
                    }
                }
            } else {
                break;
            }
        }

        let t = &toks[sig[j]];
        let line = t.line;
        match &t.kind {
            TokenKind::Ident(name) => {
                // Guard recognition: a comparison adjacent to the binding
                // (`n <= cap`, `cap > n`, `n == 0`), or a checked lookup
                // (`get(n)`, `n.min(…)`).
                if is_comparison_neighbor(toks, sig, j) {
                    guarded.insert(name.clone());
                }
                if (name == "get" || name == "min" || name == "max") && at(toks, sig, j + 1, '(') {
                    // Arguments of get/min/max become guarded.
                    for a in idents_in_group(toks, sig, j + 1) {
                        guarded.insert(a);
                    }
                }
                // Call sinks (`copy_from_slice(n)`, `split_at(n)`).
                if SLICE_SINKS.contains(&name.as_str()) && at(toks, sig, j + 1, '(') {
                    for a in idents_in_group(toks, sig, j + 1) {
                        if let Some(taint) = tainted.get(&a) {
                            if !guarded.contains(&a) && !in_test(line) {
                                push(
                                    "taint-index",
                                    line,
                                    format!(
                                        "`{a}` reaches `{name}(…)` unguarded ({}): a corrupt \
                                         input can make the length panic; bounds-check `{a}` \
                                         first or use a fallible split",
                                        taint.chain
                                    ),
                                );
                            }
                        }
                    }
                }
            }
            TokenKind::Punct('[') if is_index_expr(toks, sig, j) => {
                for a in idents_in_bracket_group(toks, sig, j) {
                    if let Some(taint) = tainted.get(&a) {
                        if !guarded.contains(&a) && !in_test(line) {
                            push(
                                "taint-index",
                                line,
                                format!(
                                    "`{a}` indexes a slice unguarded ({}): a corrupt input \
                                     can push it out of bounds; check it against the length \
                                     or use `.get({a})`",
                                    taint.chain
                                ),
                            );
                        }
                    }
                }
            }
            TokenKind::Punct(op @ ('+' | '-' | '*')) if is_binary_arith(toks, sig, j) => {
                for a in [
                    ident_at(toks, sig, j.wrapping_sub(1)),
                    arith_rhs(toks, sig, j),
                ]
                .into_iter()
                .flatten()
                {
                    if let Some(taint) = tainted.get(a) {
                        if !in_test(line) {
                            push(
                                "taint-arith",
                                line,
                                format!(
                                    "`{a}` reaches raw `{op}` ({}): untrusted arithmetic can \
                                     overflow; use `checked_{}`/`saturating_{}` or widen via \
                                     `try_from`",
                                    taint.chain,
                                    arith_name(*op),
                                    arith_name(*op)
                                ),
                            );
                        }
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
}

fn arith_name(op: char) -> &'static str {
    match op {
        '+' => "add",
        '-' => "sub",
        _ => "mul",
    }
}

/// Taint for a `let` initializer: `Some` when the init range contains a
/// source call (or an already-tainted ident) and no sanitizer call.
fn init_taint(
    l: &crate::parse::LetBinding,
    toks: &[Token],
    sig: &[usize],
    sources: &BTreeSet<String>,
    tainted: &BTreeMap<String, Taint>,
) -> Option<Taint> {
    let (start, end) = l.init;
    let mut found: Option<Taint> = None;
    for j in start..end.min(sig.len()) {
        let Some(name) = ident_at(toks, sig, j) else {
            continue;
        };
        if is_call(toks, sig, j) {
            if is_sanitizer_name(name) {
                return None;
            }
            if (is_source_name(name) || sources.contains(name)) && found.is_none() {
                found = Some(Taint {
                    chain: format!("← `{name}(…)` at line {}", toks[sig[j]].line),
                });
            }
        } else if let Some(t) = tainted.get(name) {
            if found.is_none() {
                // Chain through the prior binding, capped so messages
                // stay readable.
                let prior = truncate_chain(&t.chain);
                found = Some(Taint {
                    chain: format!("← `{name}` {prior}"),
                });
            }
        }
    }
    found
}

/// Keeps at most two links of an existing chain.
fn truncate_chain(chain: &str) -> String {
    let mut parts: Vec<&str> = chain.split(" ← ").collect();
    if parts.len() > 2 {
        parts.truncate(2);
        format!("{} ← …", parts.join(" ← "))
    } else {
        chain.to_string()
    }
}

/// True when the token adjacent to `j` (either side) is a comparison
/// operator (`<`, `>`, `<=`, `>=`, `==`, `!=`).
pub(crate) fn is_comparison_neighbor(toks: &[Token], sig: &[usize], j: usize) -> bool {
    let cmp_at = |k: usize| -> bool {
        let Some(&t) = sig.get(k) else { return false };
        match toks[t].kind {
            TokenKind::Punct('<') | TokenKind::Punct('>') => true,
            TokenKind::Punct('=') => {
                // `==` only (a bare `=` is assignment): one neighbor must
                // also be `=` or `!`.
                (k > 0
                    && matches!(
                        toks[sig[k - 1]].kind,
                        TokenKind::Punct('=') | TokenKind::Punct('!')
                    ))
                    || sig.get(k + 1).is_some_and(|&n| toks[n].is_punct('='))
            }
            _ => false,
        }
    };
    (j > 0 && cmp_at(j - 1)) || cmp_at(j + 1)
}

/// Idents inside the group opened at sig index `open` (a `(`).
pub(crate) fn idents_in_group(toks: &[Token], sig: &[usize], open: usize) -> Vec<String> {
    idents_in_matched(toks, sig, open, '(', ')')
}

/// Idents inside the bracket group opened at sig index `open` (a `[`).
pub(crate) fn idents_in_bracket_group(toks: &[Token], sig: &[usize], open: usize) -> Vec<String> {
    idents_in_matched(toks, sig, open, '[', ']')
}

fn idents_in_matched(
    toks: &[Token],
    sig: &[usize],
    open: usize,
    oc: char,
    cc: char,
) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut j = open;
    while j < sig.len() {
        match &toks[sig[j]].kind {
            TokenKind::Punct(c) if *c == oc => depth += 1,
            TokenKind::Punct(c) if *c == cc => {
                depth -= 1;
                if depth == 0 {
                    return out;
                }
            }
            TokenKind::Ident(name) if depth > 0 => out.push(name.clone()),
            _ => {}
        }
        j += 1;
    }
    out
}

/// Mirrors the `unchecked-index` heuristic: `[` right after an operand.
pub(crate) fn is_index_expr(toks: &[Token], sig: &[usize], j: usize) -> bool {
    j > 0
        && match &toks[sig[j - 1]].kind {
            TokenKind::Ident(prev) => {
                prev != "as"
                    && !matches!(
                        prev.as_str(),
                        "let"
                            | "for"
                            | "return"
                            | "break"
                            | "in"
                            | "if"
                            | "while"
                            | "match"
                            | "else"
                            | "move"
                            | "mut"
                            | "dyn"
                    )
            }
            TokenKind::Punct(')') | TokenKind::Punct(']') => true,
            _ => false,
        }
}

/// True when the `+`/`-`/`*` at `j` is a binary operator (an operand on
/// the left) rather than a unary minus, deref, arrow, or attribute
/// position. Compound assignment (`x += y`) counts: it is arithmetic.
pub(crate) fn is_binary_arith(toks: &[Token], sig: &[usize], j: usize) -> bool {
    let Some(p) = j.checked_sub(1) else {
        return false;
    };
    let left_operand = match &toks[sig[p]].kind {
        TokenKind::Ident(name) => !is_keywordish(name),
        TokenKind::Literal => true,
        TokenKind::Punct(')') | TokenKind::Punct(']') => true,
        _ => false,
    };
    if !left_operand {
        return false;
    }
    // `->` is not arithmetic.
    if toks[sig[j]].is_punct('-') && at(toks, sig, j + 1, '>') {
        return false;
    }
    // `*` immediately followed by another operator is not a multiply.
    if toks[sig[j]].is_punct('*') && sig.get(j + 1).is_none() {
        return false;
    }
    true
}

fn is_keywordish(name: &str) -> bool {
    matches!(
        name,
        "return" | "break" | "in" | "if" | "while" | "match" | "else" | "as" | "let" | "move"
    )
}

/// The right-hand operand ident of the operator at `j`: the next ident,
/// stepping over a compound-assign `=`.
pub(crate) fn arith_rhs<'t>(toks: &'t [Token], sig: &[usize], j: usize) -> Option<&'t str> {
    let mut k = j + 1;
    if at(toks, sig, k, '=') {
        k += 1;
    }
    ident_at(toks, sig, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn run(src: &str) -> Vec<(String, u32, String)> {
        let tokens = lex(src);
        let ast = parse(&tokens);
        let mut out = Vec::new();
        check(&ast, &tokens.all, &|_| false, &mut |rule, line, msg| {
            out.push((rule.to_string(), line, msg))
        });
        out
    }

    #[test]
    fn parse_to_raw_add_is_flagged_with_chain() {
        let hits = run("fn f(s: &str) -> u64 { let n: u64 = s.parse().ok()?; n + 1 }\n");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, "taint-arith");
        assert!(hits[0].2.contains("`n`"), "{}", hits[0].2);
        assert!(hits[0].2.contains("parse"), "{}", hits[0].2);
    }

    #[test]
    fn checked_construction_is_clean() {
        assert!(run(
            "fn f(s: &str) -> Option<u64> { let n: u64 = s.parse().ok()?; n.checked_add(1) }\n"
        )
        .is_empty());
    }

    #[test]
    fn try_from_sanitizes_the_binding() {
        assert!(run(
            "fn f(s: &str) -> usize { let n: u64 = s.parse().ok()?; let i = usize::try_from(n).ok()?; i + 1 }\n"
        )
        .iter()
        .all(|(r, _, _)| r != "taint-arith"));
    }

    #[test]
    fn taint_propagates_through_bindings() {
        let hits = run(
            "fn f(s: &str) { let n: u64 = s.parse().ok()?; let m = n; let v = m * 2; keep(v); }\n",
        );
        assert!(
            hits.iter()
                .any(|(r, _, m)| r == "taint-arith" && m.contains("`m`")),
            "{hits:?}"
        );
    }

    #[test]
    fn unguarded_index_flagged_guarded_clean() {
        let bad = "fn f(s: &str, v: &[u8]) { let i: usize = s.parse().ok()?; use_it(v[i]); }\n";
        let hits = run(bad);
        assert!(hits.iter().any(|(r, _, _)| r == "taint-index"), "{hits:?}");
        let good = "fn f(s: &str, v: &[u8]) { let i: usize = s.parse().ok()?; \
                    if i < v.len() { use_it(v[i]); } }\n";
        assert!(
            run(good).iter().all(|(r, _, _)| r != "taint-index"),
            "guard must clear the index sink"
        );
    }

    #[test]
    fn slice_call_sinks_flagged() {
        let bad = "fn f(s: &str, v: &[u8]) { let n: usize = s.parse().ok()?; \
                   let (a, b) = v.split_at(n); use_it(a, b); }\n";
        let hits = run(bad);
        assert!(hits
            .iter()
            .any(|(r, _, m)| r == "taint-index" && m.contains("split_at")));
    }

    #[test]
    fn derived_source_functions_taint_their_callers() {
        let src = "fn num(tok: &str) -> u64 { tok.parse().unwrap_or(0) }\n\
                   fn f(s: &str) -> u64 { let t = num(s); t + 1 }\n";
        let hits = run(src);
        assert!(
            hits.iter()
                .any(|(r, _, m)| r == "taint-arith" && m.contains("num")),
            "{hits:?}"
        );
    }

    #[test]
    fn untainted_arithmetic_is_clean() {
        assert!(run("fn f(a: u64, b: u64) -> u64 { a + b * 2 }\n").is_empty());
    }
}
