//! Sync pin between the two lint layers: every ban in `clippy.toml` must
//! map onto a soclint determinism rule, and every reason string must name
//! the soclint rule id it mirrors. The layers drifted silently before
//! this test existed; now drift is a test failure in either direction —
//! a clippy ban with no soclint counterpart fails here, and loosening a
//! soclint ban list without updating `clippy.toml` fails here too.

#![forbid(unsafe_code)]

use std::path::Path;

use soclint::{BANNED_CLOCK_TYPES, BANNED_HASH_TYPES, RULE_IDS};

/// One `{ path = "...", reason = "..." }` entry from a clippy.toml array.
#[derive(Debug)]
struct Entry {
    path: String,
    reason: String,
}

fn read_clippy_toml() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../clippy.toml");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("clippy.toml must exist at the workspace root: {e}"))
}

/// Extracts the entries of one `key = [ ... ]` array. The file is ours
/// and machine-formatted, so quoted-string scanning is enough — no TOML
/// dependency needed offline.
fn entries(toml: &str, key: &str) -> Vec<Entry> {
    let start = toml
        .find(&format!("{key} = ["))
        .unwrap_or_else(|| panic!("clippy.toml must define `{key}`"));
    let body = &toml[start..];
    let end = body.find(']').expect("unterminated array");
    let body = &body[..end];

    let mut out = Vec::new();
    for line in body.lines() {
        let Some(path) = quoted_value(line, "path") else {
            continue;
        };
        let reason = quoted_value(line, "reason")
            .unwrap_or_else(|| panic!("entry for `{path}` has no reason"));
        out.push(Entry { path, reason });
    }
    out
}

/// The first `key = "..."` quoted value on the line.
fn quoted_value(line: &str, key: &str) -> Option<String> {
    let at = line.find(&format!("{key} = \""))?;
    let rest = &line[at + key.len() + 4..];
    rest.split('"').next().map(str::to_string)
}

/// The `(soclint: rule-id)` tag inside a reason string.
fn soclint_tag(reason: &str) -> &str {
    let at = reason
        .find("(soclint: ")
        .unwrap_or_else(|| panic!("reason must cite its soclint rule: {reason:?}"));
    reason[at + "(soclint: ".len()..]
        .split(')')
        .next()
        .expect("unterminated soclint tag")
}

#[test]
fn disallowed_methods_are_a_subset_of_soclint_clock_bans() {
    let toml = read_clippy_toml();
    let methods = entries(&toml, "disallowed-methods");
    assert!(!methods.is_empty(), "disallowed-methods must not be empty");
    for e in &methods {
        let mut segments = e.path.rsplit("::");
        let method = segments.next().expect("path has segments");
        let type_name = segments.next().expect("path has a type segment");
        assert_eq!(
            method, "now",
            "clippy method ban `{}` has no soclint counterpart: soclint's wall-clock \
             rule only covers `::now` constructors",
            e.path
        );
        assert!(
            BANNED_CLOCK_TYPES.contains(&type_name),
            "clippy bans `{}` but soclint::BANNED_CLOCK_TYPES does not list `{type_name}` — \
             the layers drifted",
            e.path
        );
        assert_eq!(soclint_tag(&e.reason), "wall-clock");
    }
}

#[test]
fn disallowed_types_are_a_subset_of_soclint_hash_bans() {
    let toml = read_clippy_toml();
    let types = entries(&toml, "disallowed-types");
    assert!(!types.is_empty(), "disallowed-types must not be empty");
    for e in &types {
        let type_name = e.path.rsplit("::").next().expect("path has segments");
        assert!(
            BANNED_HASH_TYPES.contains(&type_name),
            "clippy bans `{}` but soclint::BANNED_HASH_TYPES does not list `{type_name}` — \
             the layers drifted",
            e.path
        );
        assert_eq!(soclint_tag(&e.reason), "hash-collections");
    }
}

#[test]
fn every_cited_rule_id_is_a_real_soclint_rule() {
    let toml = read_clippy_toml();
    for key in ["disallowed-methods", "disallowed-types"] {
        for e in entries(&toml, key) {
            let tag = soclint_tag(&e.reason).to_string();
            assert!(
                RULE_IDS.contains(&tag.as_str()),
                "clippy.toml reason for `{}` cites unknown soclint rule `{tag}`",
                e.path
            );
        }
    }
}
