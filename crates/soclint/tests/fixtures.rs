//! Fixture suite: every rule has one failing and one passing fixture under
//! `tests/fixtures/<rule>/`, linted at an emulated workspace-relative path
//! (scoping is path-based, so the path picks which contracts apply). The
//! final test self-applies the linter to the shipped workspace.

#![forbid(unsafe_code)]

use std::fs;
use std::path::Path;

use soclint::{lint_source, lint_workspace, RULE_IDS, WORKSPACE_RULE_IDS};

/// The workspace-relative path each rule's fixtures pretend to live at.
fn emulated_path(rule: &str) -> &'static str {
    match rule {
        "hash-collections" | "wall-clock" | "allow-syntax" => "crates/tam/src/fixture.rs",
        "os-entropy" => "crates/parpool/src/fixture.rs",
        "nan-compare" => "crates/selenc/src/fixture.rs",
        "panic-path" | "unchecked-index" | "taint-arith" => "crates/tdcsoc/src/planfile.rs",
        "taint-index" => "crates/tdcsoc/src/vectors.rs",
        "capture-mut" | "relaxed-ordering" | "dsan-escape" => "crates/parpool/src/fixture.rs",
        "order-sensitive-reduce" => "crates/tam/src/fixture.rs",
        "as-narrowing" => "crates/soc-model/src/itc02.rs",
        "deny-header" => "crates/tam/src/lib.rs",
        "cfg-test-gate" => "crates/wrapper/src/fit.rs",
        other => panic!("no fixture path mapped for rule {other:?}"),
    }
}

fn fixture(rule: &str, which: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
        .join(format!("{which}.rs"));
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn every_rule_has_a_tripping_fixture() {
    for &rule in RULE_IDS {
        if WORKSPACE_RULE_IDS.contains(&rule) {
            continue; // interprocedural rules use workspace fixture trees below
        }
        let diags = lint_source(emulated_path(rule), &fixture(rule, "fail"));
        assert!(
            diags.iter().any(|d| d.rule == rule),
            "fixtures/{rule}/fail.rs must trip `{rule}`, got: {diags:?}"
        );
        assert!(
            diags.iter().all(|d| d.rule == rule),
            "fixtures/{rule}/fail.rs must trip only `{rule}`, got: {diags:?}"
        );
    }
}

#[test]
fn every_rule_has_a_clean_fixture() {
    for &rule in RULE_IDS {
        if WORKSPACE_RULE_IDS.contains(&rule) {
            continue; // interprocedural rules use workspace fixture trees below
        }
        let diags = lint_source(emulated_path(rule), &fixture(rule, "pass"));
        assert!(
            diags.is_empty(),
            "fixtures/{rule}/pass.rs must lint clean, got: {diags:?}"
        );
    }
}

#[test]
fn diagnostics_carry_file_line_and_known_rule() {
    let diags = lint_source(emulated_path("panic-path"), &fixture("panic-path", "fail"));
    let d = diags.first().expect("fail fixture trips");
    assert_eq!(d.file, "crates/tdcsoc/src/planfile.rs");
    assert!(d.line >= 1);
    assert!(RULE_IDS.contains(&d.rule.as_str()));
    assert_eq!(
        d.to_string(),
        format!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message)
    );
}

/// Interprocedural rules need more than one file, so their fixtures are
/// miniature workspace trees under `fixtures/<rule>/{trip,clean,allowed}/`,
/// linted with the full pipeline rooted at the fixture directory.
#[test]
fn every_workspace_rule_has_trip_clean_and_allowed_trees() {
    for &rule in WORKSPACE_RULE_IDS {
        for which in ["trip", "clean", "allowed"] {
            let root = Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("tests/fixtures")
                .join(rule)
                .join(which);
            assert!(root.is_dir(), "missing fixture tree {}", root.display());
            let diags =
                lint_workspace(&root).unwrap_or_else(|e| panic!("lint {}: {e}", root.display()));
            if which == "trip" {
                assert!(
                    diags.iter().any(|d| d.rule == rule),
                    "fixtures/{rule}/trip must trip `{rule}`, got: {diags:?}"
                );
                assert!(
                    diags.iter().all(|d| d.rule == rule),
                    "fixtures/{rule}/trip must trip only `{rule}`, got: {diags:?}"
                );
            } else {
                assert!(
                    diags.is_empty(),
                    "fixtures/{rule}/{which} must lint clean, got: {diags:?}"
                );
            }
        }
    }
}

/// The acceptance gate: the tree as shipped carries zero violations, so any
/// regression shows up as a test failure, not just a CI lint step.
#[test]
fn shipped_workspace_is_violation_free() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/soclint sits two levels under the workspace root");
    let diags = lint_workspace(root).expect("workspace walk");
    assert!(
        diags.is_empty(),
        "workspace must lint clean:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
