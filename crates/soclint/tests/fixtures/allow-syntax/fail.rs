pub fn noisy() -> u32 {
    // soclint: allow(hash-collections)
    0
}
