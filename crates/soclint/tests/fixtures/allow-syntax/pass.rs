// soclint: allow-file(hash-collections) -- fixture demonstrating a well-formed file-wide suppression

use std::collections::HashMap;

pub type Lookup = HashMap<u32, u32>;
