pub fn module_count(modules: &[String]) -> u32 {
    modules.len() as u32
}
