pub fn module_count(modules: &[String]) -> u32 {
    u32::try_from(modules.len()).unwrap_or(u32::MAX)
}
