//! Fixture: the loop is bounded, recorded with a reasoned allow.
pub fn search_tams(d: &Deadline) -> u32 {
    let mut best = 0;
    // soclint: allow(cancel-coverage) -- bounded: improving() caps at 100 iterations
    while improving(best) {
        best = step(best);
    }
    best
}

fn improving(best: u32) -> bool {
    best < 100
}

fn step(best: u32) -> u32 {
    best
}
