//! Fixture: the improvement loop polls the deadline each iteration.
pub fn search_tams(d: &Deadline) -> u32 {
    let mut best = 0;
    while improving(best) {
        if d.expired() {
            break;
        }
        best = step(best);
    }
    best
}

fn improving(best: u32) -> bool {
    best < 100
}

fn step(best: u32) -> u32 {
    best
}
