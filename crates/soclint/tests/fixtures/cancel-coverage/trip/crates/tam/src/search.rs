//! Fixture: an unbounded improvement loop with no cancellation poll.
pub fn search_tams(d: &Deadline) -> u32 {
    let mut best = 0;
    while improving(best) {
        best = step(best);
    }
    best
}

fn improving(best: u32) -> bool {
    best < 100
}

fn step(best: u32) -> u32 {
    best
}
