//! Fixture root: the planning cascade entry.
use tam::search_tams;

pub fn solve(d: &Deadline) -> u32 {
    search_tams(d)
}
