use std::sync::Mutex;

pub fn run_jobs(pool: &Pool, items: Vec<u64>, log: &Mutex<Vec<u64>>) {
    for item in items {
        pool.submit(move || {
            log.lock().unwrap().push(item);
        });
    }
}
