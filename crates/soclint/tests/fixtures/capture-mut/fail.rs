pub fn run_jobs(pool: &Pool, items: Vec<u64>) -> u64 {
    let mut total = 0u64;
    for item in items {
        pool.submit(move || {
            total += item;
        });
    }
    total
}
