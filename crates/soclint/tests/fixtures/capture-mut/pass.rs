pub fn run_jobs(pool: &Pool, items: Vec<u64>) -> Vec<u64> {
    let tasks: Vec<_> = items
        .into_iter()
        .map(|item| move || cost_of(item))
        .collect();
    pool.run(tasks)
}
