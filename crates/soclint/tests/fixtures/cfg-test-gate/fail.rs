pub fn double(x: u32) -> u32 {
    x * 2
}

mod tests {
    #[test]
    fn doubles() {
        assert_eq!(super::double(2), 4);
    }
}
