//! Fixture: the flow is acknowledged with a reasoned allow.
use soc_model::scaled_bits;

fn read_count(line: &str) -> Option<u64> {
    let n: u64 = line.parse().ok()?;
    // soclint: allow(cross-taint) -- n is range-checked by the caller's schema
    Some(scaled_bits(n))
}
