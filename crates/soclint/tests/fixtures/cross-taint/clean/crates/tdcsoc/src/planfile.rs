//! Fixture: the parsed count is clamped before crossing the boundary.
use soc_model::scaled_bits;

fn read_count(line: &str) -> Option<u64> {
    let n: u64 = line.parse().ok()?;
    Some(scaled_bits(n.min(4096)))
}
