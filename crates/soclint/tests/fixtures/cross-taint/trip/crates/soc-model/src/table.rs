//! Fixture helper: multiplies its argument without any bound check.
pub fn scaled_bits(n: u64) -> u64 {
    n * 8
}
