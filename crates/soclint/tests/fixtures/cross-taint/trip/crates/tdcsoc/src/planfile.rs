//! Fixture: a parsed count crosses the crate boundary unsanitized.
use soc_model::scaled_bits;

fn read_count(line: &str) -> Option<u64> {
    let n: u64 = line.parse().ok()?;
    Some(scaled_bits(n))
}
