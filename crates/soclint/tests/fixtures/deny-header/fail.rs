//! A crate root missing the contract header.

/// The answer.
pub fn answer() -> u32 {
    42
}
