//! A crate root carrying the contract header.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// The answer.
pub fn answer() -> u32 {
    42
}
