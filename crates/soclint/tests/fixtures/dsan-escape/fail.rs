use std::sync::atomic::{AtomicU64, Ordering};

pub fn run_jobs(pool: &Pool, items: Vec<u64>, bound: &AtomicU64) -> Vec<u64> {
    let tasks: Vec<_> = items
        .into_iter()
        .map(|item| move || cost_of(item, bound.load(Ordering::SeqCst)))
        .collect();
    pool.run(tasks)
}
