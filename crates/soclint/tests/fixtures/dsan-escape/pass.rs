use std::sync::atomic::Ordering;

use parpool::dsan;

pub fn run_jobs(pool: &Pool, items: Vec<u64>, bound: &dsan::AtomicCell) -> Vec<u64> {
    let tasks: Vec<_> = items
        .into_iter()
        .map(|item| move || cost_of(item, bound.load(Ordering::SeqCst)))
        .collect();
    pool.run(tasks)
}
