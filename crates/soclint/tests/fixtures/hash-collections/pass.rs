use std::collections::BTreeMap;

pub fn histogram(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut h = BTreeMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h
}
