pub fn best(scores: &[f64]) -> Option<usize> {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .map(|(i, _)| i)
}
