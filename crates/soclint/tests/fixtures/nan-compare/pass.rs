pub fn best(scores: &[f64]) -> Option<usize> {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
}
