use std::sync::mpsc::Receiver;

pub fn best_of(rx: &Receiver<(u64, usize)>) -> Option<(u64, usize)> {
    rx.try_iter().min()
}
