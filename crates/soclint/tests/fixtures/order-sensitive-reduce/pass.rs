pub fn best_of(results: &[(u64, usize)]) -> Option<(u64, usize)> {
    results
        .iter()
        .enumerate()
        .min_by_key(|(i, r)| (r.0, *i))
        .map(|(_, r)| *r)
}
