pub fn worker_tag() -> String {
    format!("{:?}", std::thread::current().id())
}
