pub fn worker_tag(index: usize) -> String {
    format!("worker-{index}")
}
