pub fn parse_width(field: &str) -> u32 {
    field.trim().parse().unwrap()
}
