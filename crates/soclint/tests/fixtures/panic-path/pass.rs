pub fn parse_width(field: &str) -> Result<u32, std::num::ParseIntError> {
    field.trim().parse()
}
