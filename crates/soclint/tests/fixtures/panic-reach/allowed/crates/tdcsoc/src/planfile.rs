//! Fixture: the call is acknowledged with a reasoned allow.
use selenc::first_code;

fn parse_field(s: &str) -> u32 {
    // soclint: allow(panic-reach) -- s is checked non-empty by the tokenizer
    first_code(s)
}
