//! Fixture helper: total on empty input.
pub fn first_code(s: &str) -> Option<u32> {
    s.bytes().next().map(u32::from)
}
