//! Fixture: the parser uses the fallible decoder.
use selenc::first_code;

fn parse_field(s: &str) -> Option<u32> {
    first_code(s)
}
