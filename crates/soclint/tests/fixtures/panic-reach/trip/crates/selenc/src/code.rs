//! Fixture helper: panics on empty input.
pub fn first_code(s: &str) -> u32 {
    u32::from(s.bytes().next().unwrap())
}
