//! Fixture: the parser trusts a panicking decoder.
use selenc::first_code;

fn parse_field(s: &str) -> u32 {
    first_code(s)
}
