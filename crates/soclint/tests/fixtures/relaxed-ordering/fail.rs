use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish_bound(shared: &AtomicU64, value: u64) {
    shared.fetch_min(value, Ordering::Relaxed);
}
