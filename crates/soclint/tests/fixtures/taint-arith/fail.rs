pub fn start_cycle(field: &str) -> Result<u64, std::num::ParseIntError> {
    let base: u64 = field.trim().parse()?;
    Ok(base + 1)
}
