pub fn start_cycle(field: &str) -> Option<u64> {
    let base: u64 = field.trim().parse().ok()?;
    base.checked_add(1)
}
