pub fn split_payload(header: &str, bytes: &[u8]) -> Option<(&[u8], &[u8])> {
    let n: usize = header.trim().parse().ok()?;
    Some(bytes.split_at(n))
}
