pub fn first_two(fields: &[u32]) -> (u32, u32) {
    (fields[0], fields[1])
}
