pub fn first_two(fields: &[u32]) -> Option<(u32, u32)> {
    match (fields.first(), fields.get(1)) {
        (Some(&a), Some(&b)) => Some((a, b)),
        _ => None,
    }
}
