use std::time::Instant;

pub fn measure<T>(f: impl FnOnce() -> T) -> (T, std::time::Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}
