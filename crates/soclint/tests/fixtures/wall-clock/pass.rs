pub fn remaining_us(deadline_us: u64, now_us: u64) -> u64 {
    deadline_us.saturating_sub(now_us)
}
