//! Property tests for the workspace layer: the call-graph builder must
//! never panic on any fact set the per-file pass can produce (token soup,
//! byte-mutated real sources, hostile path layouts), its counters must
//! stay consistent, and the incremental cache must be semantically
//! invisible — after a random single-file edit, a warm run's findings are
//! sha256-identical to a from-scratch cold run.

#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use soclint::facts::analyze_file;
use soclint::graph::analyze;
use soclint::sha::sha256_hex;
use soclint::{lint_workspace_report, to_json, LintOptions, RULE_IDS};

/// Paths chosen to hit every special role the graph layer dispatches on:
/// cancel-analysis roots, cancel-audited crates, untrusted-parser scope,
/// and plain helper crates.
const GRAPH_PATHS: &[&str] = &[
    "crates/tdcsoc/src/cascade.rs",  // cancel root + audited crate
    "crates/serve/src/server.rs",    // cancel root (request path)
    "crates/tam/src/search.rs",      // cancel-audited crate
    "crates/tdcsoc/src/planfile.rs", // untrusted parser scope
    "crates/soc-model/src/table.rs", // plain helper
    "src/main.rs",                   // workspace root binary
];

/// Real sources dense with the constructs the graph layer consumes:
/// calls, loops, qualified paths, `use` declarations.
const REAL_SOURCES: &[&str] = &[
    include_str!("../src/graph.rs"),
    include_str!("../../tdcsoc/src/planfile.rs"),
    include_str!("../../tam/src/exhaustive.rs"),
];

fn assert_graph_total(sources: &[(&str, String)]) {
    let analyses: Vec<_> = sources
        .iter()
        .map(|(path, src)| analyze_file(path, src))
        .collect();
    let facts: Vec<_> = analyses.into_iter().map(|a| a.facts).collect();
    let (diags, stats) = analyze(&facts);
    for d in &diags {
        assert!(
            RULE_IDS.contains(&d.rule.as_str()),
            "unknown rule {:?}",
            d.rule
        );
        assert!(d.line >= 1, "diagnostic lines are 1-based");
        assert!(
            sources.iter().any(|(p, _)| *p == d.file),
            "diagnostic points at an analyzed file: {:?}",
            d.file
        );
    }
    // Every call site lands in exactly one resolution bucket.
    assert_eq!(
        stats.resolved + stats.ambiguous + stats.unknown + stats.external + stats.std_filtered,
        stats.calls,
        "resolution buckets must partition the call sites: {stats}"
    );
    // Determinism: the same facts give the same report.
    let (again, _) = analyze(&facts);
    assert_eq!(diags, again, "graph analysis must be deterministic");
}

/// One byte-level mutation with lossy UTF-8 repair (mirrors what a file
/// reader does with a corrupt file).
fn mutate(source: &str, pos: usize, byte: u8, mode: u8) -> String {
    let mut bytes = source.as_bytes().to_vec();
    if bytes.is_empty() {
        return String::new();
    }
    let pos = pos % bytes.len();
    match mode % 4 {
        0 => bytes.truncate(pos),
        1 => bytes[pos] = byte,
        2 => bytes.insert(pos, byte),
        _ => {
            bytes.remove(pos);
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Fragments biased toward what the graph layer parses out of files:
/// fns, calls (free / method / qualified), loops, polls, use decls.
const GRAPH_SOUP: &[&str] = &[
    "fn ",
    "pub fn ",
    "solve",
    "plan",
    "handle_stdio",
    "expired",
    "is_cancelled",
    "search_tams",
    "(",
    ")",
    "{",
    "}",
    "d",
    ".",
    "::",
    "use tam::search_tams;\n",
    "use selenc::first_code;\n",
    "while ",
    "loop ",
    "for x in y ",
    "if ",
    "break",
    ";",
    "\n",
    "unwrap",
    "expect",
    "panic!(\"x\")",
    "v[i]",
    "let ",
    " = ",
    "s.parse()",
    "x.min(y)",
    "Deadline::expired",
    "self",
    "&",
    ",",
    "// soclint: allow(panic-reach) -- soup\n",
    "#[test]\n",
    "mod tests ",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn graph_soup_never_panics(
        pieces in proptest::collection::vec(0usize..GRAPH_SOUP.len(), 0..160),
        cut in 0usize..GRAPH_PATHS.len(),
    ) {
        // The same soup lands in every special-role file at once, split
        // at a moving boundary so fn bodies straddle files differently
        // case to case.
        let soup: String = pieces.iter().map(|&i| GRAPH_SOUP[i]).collect();
        let mut mid = soup.len() / 2;
        while mid > 0 && !soup.is_char_boundary(mid) {
            mid -= 1;
        }
        let (head, tail) = soup.split_at(mid);
        let sources: Vec<(&str, String)> = GRAPH_PATHS
            .iter()
            .enumerate()
            .map(|(i, p)| (*p, if i <= cut { head.to_string() } else { tail.to_string() }))
            .collect();
        assert_graph_total(&sources);
    }

    #[test]
    fn mutated_real_sources_never_break_the_graph(
        which in 0usize..REAL_SOURCES.len(),
        pos in any::<usize>(),
        byte in any::<u8>(),
        mode in any::<u8>(),
        path in 0usize..GRAPH_PATHS.len(),
    ) {
        // One mutated file among pristine copies of the others: the
        // cross-file indices are built from mixed-quality inputs.
        let sources: Vec<(&str, String)> = GRAPH_PATHS
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let src = REAL_SOURCES[(i + which) % REAL_SOURCES.len()];
                if i == path {
                    (*p, mutate(src, pos, byte, mode))
                } else {
                    (*p, src.to_string())
                }
            })
            .collect();
        assert_graph_total(&sources);
    }
}

#[test]
fn empty_and_single_file_workspaces_are_total() {
    assert_graph_total(&[]);
    for p in GRAPH_PATHS {
        assert_graph_total(&[(*p, REAL_SOURCES[0].to_string())]);
    }
}

// --- Incremental ≡ cold under random single-file edits ------------------

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Self {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("soclint-incprop-{}-{n}", std::process::id()));
        fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// The editable corpus: interlinked enough that editing one file changes
/// cross-file conclusions (the whole point of re-running phase 2 on a
/// warm cache).
const WS_FILES: &[(&str, &str)] = &[
    (
        "crates/tdcsoc/src/planfile.rs",
        "use soc_model::scaled_bits;\n\
         fn parse_line(line: &str) -> Option<u64> {\n\
             let n: u64 = line.parse().ok()?;\n\
             Some(scaled_bits(n))\n\
         }\n\
         pub fn total(text: &str) -> u64 {\n\
             text.lines().filter_map(parse_line).sum()\n\
         }\n",
    ),
    (
        "crates/soc-model/src/table.rs",
        "pub fn scaled_bits(n: u64) -> u64 {\n    n.min(4096) * 8\n}\n",
    ),
    (
        "crates/tdcsoc/src/cascade.rs",
        "use tam::search_tams;\n\
         pub fn solve(d: &Deadline) -> u32 {\n    search_tams(d)\n}\n",
    ),
    (
        "crates/tam/src/search.rs",
        "pub fn search_tams(d: &Deadline) -> u32 {\n\
             let mut best = 0;\n\
             while best < 100 {\n\
                 if d.expired() {\n            break;\n        }\n\
                 best += 1;\n\
             }\n\
             best\n\
         }\n",
    ),
    (
        "crates/filler/src/quiet.rs",
        "pub fn quiet(x: u64) -> u64 {\n    x ^ 1\n}\n",
    ),
];

fn write_ws(root: &Path) {
    for (rel, body) in WS_FILES {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, body).unwrap();
    }
}

fn findings_sha(root: &Path, cache: Option<&Path>) -> String {
    let opts = LintOptions {
        workers: 1,
        cache_dir: cache.map(Path::to_path_buf),
    };
    let report = lint_workspace_report(root, &opts).expect("workspace walk");
    sha256_hex(to_json(&report.diags).as_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn warm_findings_match_cold_after_random_single_file_edit(
        which in 0usize..WS_FILES.len(),
        pos in any::<usize>(),
        byte in any::<u8>(),
        mode in any::<u8>(),
    ) {
        let ws = Scratch::new();
        write_ws(&ws.0);
        let cache = ws.0.join("cache");

        // Populate the cache from the pristine tree.
        let _ = findings_sha(&ws.0, Some(&cache));

        // Randomly edit exactly one file (lossy-repaired, so it is the
        // same bytes any reader would hand the analyzer).
        let (rel, body) = WS_FILES[which];
        fs::write(ws.0.join(rel), mutate(body, pos, byte, mode)).unwrap();

        // Warm (incremental) and cold (uncached) must agree byte for
        // byte on the findings JSON.
        let warm = findings_sha(&ws.0, Some(&cache));
        let cold = findings_sha(&ws.0, None);
        prop_assert_eq!(warm, cold, "incremental run diverged from cold on edit of {}", rel);
    }
}
