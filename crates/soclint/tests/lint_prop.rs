//! Property tests for the lint front end: the lexer and the pass-1
//! parser must never panic and must produce in-bounds, well-formed spans
//! on *any* input — arbitrary byte garbage and mutated copies of real
//! workspace sources alike. This fuzzes the tuple-index class of bug a
//! previous audit hit in the lexer (an off-by-one span on `x.0.min(y)`
//! chains) and holds the whole `lint_source` pipeline to the same
//! no-panic bar the parsers it lints are held to.

#![forbid(unsafe_code)]

use proptest::prelude::*;

use soclint::lexer::lex;
use soclint::lint_source;
use soclint::parse::{parse, Closure, FnItem, SigRange};

/// Real sources to mutate: the linter's own front end (dense with string
/// escapes and punctuation) and an untrusted-input parser (dense with
/// the constructs the flow rules match on).
const REAL_SOURCES: &[&str] = &[
    include_str!("../src/lexer.rs"),
    include_str!("../src/parse.rs"),
    include_str!("../../tdcsoc/src/planfile.rs"),
];

/// Paths covering every scope combination rules dispatch on.
const EMULATED_PATHS: &[&str] = &[
    "crates/tdcsoc/src/planfile.rs", // untrusted parser + determinism + captures
    "crates/parpool/src/fixture.rs", // captures + determinism
    "crates/tam/src/lib.rs",         // determinism + lib root
    "tests/smoke.rs",                // bin root, all-test
    "crates/robust/src/lib.rs",      // wall-clock exempt
];

fn check_range(what: &str, (start, end): SigRange, sig_len: usize) {
    assert!(start <= end, "{what}: start {start} > end {end}");
    assert!(
        end <= sig_len,
        "{what}: end {end} out of bounds (sig len {sig_len})"
    );
}

fn check_closure(c: &Closure, sig_len: usize) {
    check_range("closure body", c.body, sig_len);
    for l in &c.lets {
        check_range("closure let init", l.init, sig_len);
    }
    for nested in &c.closures {
        check_closure(nested, sig_len);
    }
}

fn check_fn(f: &FnItem, sig_len: usize) {
    check_range("fn body", f.body, sig_len);
    for l in &f.lets {
        check_range("let init", l.init, sig_len);
    }
    for c in &f.closures {
        check_closure(c, sig_len);
    }
}

/// The full front-end invariant: lex, parse, and lint never panic; token
/// lines are non-decreasing; every span is in bounds.
fn assert_front_end_total(src: &str) {
    let tokens = lex(src);
    let mut last_line = 1u32;
    for t in &tokens.all {
        assert!(
            t.line >= last_line,
            "token lines must be non-decreasing: {} after {last_line}",
            t.line
        );
        last_line = t.line;
    }
    let ast = parse(&tokens);
    for &i in &ast.sig {
        assert!(i < tokens.all.len(), "sig index {i} out of bounds");
    }
    for f in &ast.fns {
        check_fn(f, ast.sig.len());
    }
    for path in EMULATED_PATHS {
        // Diagnostics may be anything; the property is "returns".
        let _ = lint_source(path, src);
    }
}

/// Applies one byte-level mutation, then repairs UTF-8 lossily — the
/// front end consumes `&str`, so the lossy repair mirrors what any file
/// reader in the pipeline would do with a corrupt file.
fn mutate(source: &str, pos: usize, byte: u8, mode: u8) -> String {
    let mut bytes = source.as_bytes().to_vec();
    if bytes.is_empty() {
        return String::new();
    }
    let pos = pos % bytes.len();
    match mode % 4 {
        0 => bytes.truncate(pos),
        1 => bytes[pos] = byte,
        2 => bytes.insert(pos, byte),
        _ => {
            bytes.remove(pos);
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_front_end_total(&src);
    }

    #[test]
    fn rust_flavored_soup_never_panics(
        pieces in proptest::collection::vec(0usize..TOKEN_SOUP.len(), 0..120),
    ) {
        // Dense valid-token soup reaches deeper parser paths than raw
        // bytes (real keywords, balanced-ish punctuation, comments).
        let src: String = pieces.iter().map(|&i| TOKEN_SOUP[i]).collect();
        assert_front_end_total(&src);
    }

    #[test]
    fn mutated_real_sources_never_panic(
        which in 0usize..REAL_SOURCES.len(),
        pos in any::<usize>(),
        byte in any::<u8>(),
        mode in any::<u8>(),
    ) {
        let src = mutate(REAL_SOURCES[which], pos, byte, mode);
        assert_front_end_total(&src);
    }
}

/// Fragments biased toward the constructs pass 1 actually parses.
const TOKEN_SOUP: &[&str] = &[
    "fn ",
    "f",
    "(",
    ")",
    "{",
    "}",
    "|",
    "||",
    "move ",
    "let ",
    "x",
    ": u32",
    " = ",
    ";",
    ".",
    "::",
    "<",
    ">",
    "->",
    "parse",
    "unwrap",
    "0.5",
    "\"s\"",
    "'a'",
    "'static ",
    "// c\n",
    "\n",
    "/* b */",
    "#[test]\n",
    "match ",
    "if ",
    "else ",
    "b\"raw\"",
    "r#\"raw\"#",
    "1_000",
    "x.0",
    "+",
    "*",
    "&mut ",
    "[",
    "]",
    ",",
    "?",
    "=>",
    "..",
    "tuple.1.min",
    "try_from",
    "\\",
];

#[test]
fn real_sources_unmutated_hold_the_invariant() {
    for src in REAL_SOURCES {
        assert_front_end_total(src);
    }
}
