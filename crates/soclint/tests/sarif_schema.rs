//! Schema check for `--format sarif`: the output is parsed with a real
//! (dependency-free) JSON parser and validated against the required
//! properties of the SARIF 2.1.0 schema — the same constraints GitHub's
//! code-scanning ingestion enforces. String-contains assertions would
//! miss malformed escaping or broken nesting; parsing does not.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

use soclint::sarif::{to_sarif, SCHEMA_URI};
use soclint::{Diagnostic, RULE_IDS};

// --- Minimal strict JSON parser (test-only) -----------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(m) => m.get(key).unwrap_or_else(|| panic!("missing key {key:?}")),
            other => panic!("expected object for key {key:?}, got {other:?}"),
        }
    }

    fn str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    fn num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            other => panic!("expected array, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) {
        self.ws();
        assert_eq!(
            self.b.get(self.i),
            Some(&c),
            "expected {:?} at byte {}",
            c as char,
            self.i
        );
        self.i += 1;
    }

    fn value(&mut self) -> Json {
        self.ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Json::Str(self.string()),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(_) => self.number(),
            None => panic!("unexpected end of input"),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Json {
        assert!(
            self.b[self.i..].starts_with(word.as_bytes()),
            "bad literal at byte {}",
            self.i
        );
        self.i += word.len();
        v
    }

    fn number(&mut self) -> Json {
        let start = self.i;
        while matches!(
            self.b.get(self.i),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("utf8 number");
        Json::Num(
            text.parse()
                .unwrap_or_else(|e| panic!("bad number {text:?}: {e}")),
        )
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return out;
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .expect("utf8 hex");
                            let code = u32::from_str_radix(hex, 16)
                                .unwrap_or_else(|e| panic!("bad \\u escape {hex:?}: {e}"));
                            out.push(char::from_u32(code).expect("scalar \\u escape"));
                            self.i += 4;
                        }
                        other => panic!("bad escape {other:?}"),
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    // Multibyte UTF-8 passes through unchanged.
                    let len = match c {
                        0x00..=0x1f => panic!("raw control byte {c:#x} in string"),
                        0x20..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    out.push_str(std::str::from_utf8(&self.b[self.i..self.i + len]).expect("utf8"));
                    self.i += len;
                }
                None => panic!("unterminated string"),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut v = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Json::Arr(v);
        }
        loop {
            v.push(self.value());
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Json::Arr(v);
                }
                other => panic!("expected , or ] got {other:?}"),
            }
        }
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut m = BTreeMap::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Json::Obj(m);
        }
        loop {
            self.ws();
            let key = self.string();
            self.eat(b':');
            let val = self.value();
            assert!(
                m.insert(key.clone(), val).is_none(),
                "duplicate key {key:?}"
            );
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Json::Obj(m);
                }
                other => panic!("expected , or }} got {other:?}"),
            }
        }
    }
}

fn parse_json(text: &str) -> Json {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    let v = p.value();
    p.ws();
    assert_eq!(p.i, p.b.len(), "trailing bytes after JSON document");
    v
}

// --- The SARIF 2.1.0 required-property check ----------------------------

/// Asserts every property the SARIF 2.1.0 schema marks `required` on the
/// objects soclint emits, plus the cross-references (ruleId/ruleIndex
/// agreement) that GitHub rejects when broken.
fn assert_valid_sarif(log: &Json) {
    assert_eq!(log.get("$schema").str(), SCHEMA_URI);
    assert_eq!(log.get("version").str(), "2.1.0");
    let runs = log.get("runs").arr();
    assert_eq!(runs.len(), 1, "one run per invocation");
    let run = &runs[0];

    let driver = run.get("tool").get("driver");
    assert_eq!(driver.get("name").str(), "soclint");
    let rules = driver.get("rules").arr();
    let rule_ids: Vec<&str> = rules.iter().map(|r| r.get("id").str()).collect();
    assert_eq!(rule_ids, RULE_IDS, "driver rule table mirrors RULE_IDS");
    for rule in rules {
        assert!(
            !rule.get("shortDescription").get("text").str().is_empty(),
            "every rule carries a description"
        );
        let help = rule.get("helpUri").str();
        assert!(
            help.ends_with(&format!("#{}", rule.get("id").str())),
            "helpUri anchors on the rule id: {help}"
        );
    }

    for result in run.get("results").arr() {
        let rule_id = result.get("ruleId").str();
        let idx = result.get("ruleIndex").num() as usize;
        assert_eq!(
            rule_ids.get(idx).copied(),
            Some(rule_id),
            "ruleIndex must point at ruleId's entry in the rule table"
        );
        let level = result.get("level").str();
        assert!(
            level == "error" || level == "note",
            "reported findings are errors, allow-suppressed ones notes: {level}"
        );
        assert!(!result.get("message").get("text").str().is_empty());
        let locations = result.get("locations").arr();
        assert_eq!(locations.len(), 1);
        let phys = locations[0].get("physicalLocation");
        let artifact = phys.get("artifactLocation");
        let uri = artifact.get("uri").str();
        assert!(
            !uri.is_empty() && !uri.starts_with('/'),
            "relative uri: {uri}"
        );
        assert_eq!(artifact.get("uriBaseId").str(), "%SRCROOT%");
        let line = phys.get("region").get("startLine").num();
        assert!(line >= 1.0, "startLine is 1-based");
    }
}

#[test]
fn empty_log_is_schema_valid() {
    let log = parse_json(&to_sarif(&[], &[]));
    assert_valid_sarif(&log);
    assert!(log.get("runs").arr()[0].get("results").arr().is_empty());
}

#[test]
fn results_with_hostile_text_stay_schema_valid() {
    let diags: Vec<Diagnostic> = RULE_IDS
        .iter()
        .enumerate()
        .map(|(i, rule)| Diagnostic {
            file: format!("crates/x/src/f{i}.rs"),
            line: i as u32, // includes 0, which must clamp to 1
            rule: (*rule).to_string(),
            message: format!("quote \" slash \\ newline \n tab \t unicode \u{2190} {rule}"),
        })
        .collect();
    let log = parse_json(&to_sarif(&diags, &[]));
    assert_valid_sarif(&log);
    let results = log.get("runs").arr()[0].get("results").arr().to_vec();
    assert_eq!(results.len(), RULE_IDS.len());
    // Escapes round-trip: the parsed message contains the raw characters.
    let msg = results[0].get("message").get("text").str().to_string();
    assert!(msg.contains("quote \" slash \\ newline \n tab \t unicode \u{2190}"));
}

#[test]
fn real_workspace_sarif_is_schema_valid() {
    // Lint the linter's own tripping fixtures through the real pipeline
    // so the SARIF path is exercised with genuine rule output.
    let root =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/panic-reach/trip");
    let diags = soclint::lint_workspace(&root).expect("fixture walk");
    assert!(!diags.is_empty(), "trip fixture produces results");
    assert_valid_sarif(&parse_json(&to_sarif(&diags, &[])));
}

#[test]
fn suppressed_findings_surface_as_schema_valid_notes() {
    // The shipped workspace is violation-free but carries audited
    // `allow` directives; those must come back as note-level results.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root");
    let report = soclint::lint_workspace_report(&root, &soclint::LintOptions::default())
        .expect("workspace walk");
    assert!(
        !report.allowed.is_empty(),
        "the workspace's allow directives suppress real findings"
    );
    let log = parse_json(&to_sarif(&report.diags, &report.allowed));
    assert_valid_sarif(&log);
    let results = log.get("runs").arr()[0].get("results").arr().to_vec();
    assert!(results
        .iter()
        .any(|r| r.get("level").str() == "note" && r.get("ruleId").str() == "capture-mut"));
}
