//! Integration contracts for the workspace pipeline: the cache must be
//! invisible (warm ≡ cold, byte for byte), parallelism must be invisible
//! (any worker count ≡ sequential), SARIF output must match the 2.1.0
//! schema shape, and `--at` must scope identically from any invoking
//! directory. These are the properties CI relies on, pinned as tests.

#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};

use soclint::sha::sha256_hex;
use soclint::{
    lint_workspace_report, to_json, LintOptions, RULE_DESCRIPTIONS, RULE_IDS, WORKSPACE_RULE_IDS,
};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("soclint-{tag}-{}-{n}", std::process::id()));
        fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Writes a miniature workspace: one untrusted parser, one helper crate
/// it calls into, and a tail of neutral files so cache-hit ratios are
/// meaningful (1 edit out of 10 files = 10% re-analysis).
fn write_mini_workspace(root: &Path) {
    let files: &[(&str, &str)] = &[
        (
            "crates/tdcsoc/src/planfile.rs",
            "use soc_model::scaled_bits;\n\
             fn parse_line(line: &str) -> Option<u64> {\n\
                 let n: u64 = line.parse().ok()?;\n\
                 Some(scaled_bits(n))\n\
             }\n\
             pub fn total(text: &str) -> u64 {\n\
                 text.lines().filter_map(parse_line).sum()\n\
             }\n",
        ),
        (
            "crates/soc-model/src/table.rs",
            "pub fn scaled_bits(n: u64) -> u64 {\n    n.min(4096) * 8\n}\n",
        ),
    ];
    for (rel, body) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, body).unwrap();
    }
    for i in 0..8 {
        let path = root.join(format!("crates/filler/src/mod{i}.rs"));
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(
            path,
            format!("pub fn f{i}(x: u64) -> u64 {{\n    x.wrapping_add({i})\n}}\n"),
        )
        .unwrap();
    }
}

fn report_sha(root: &Path, opts: &LintOptions) -> (String, usize, usize, usize) {
    let report = lint_workspace_report(root, opts).expect("workspace walk");
    (
        sha256_hex(to_json(&report.diags).as_bytes()),
        report.files,
        report.cache_hits,
        report.reanalyzed,
    )
}

#[test]
fn warm_run_reanalyzes_under_twenty_percent_and_matches_cold() {
    let ws = Scratch::new("warm");
    write_mini_workspace(ws.path());
    let cache = ws.path().join("cache");
    let cached = LintOptions {
        workers: 1,
        cache_dir: Some(cache),
    };
    let cold_opts = LintOptions {
        workers: 1,
        cache_dir: None,
    };

    // First run populates the cache from nothing.
    let (first, files, hits0, re0) = report_sha(ws.path(), &cached);
    assert_eq!((hits0, re0), (0, files), "empty cache means all misses");

    // Unedited warm run: everything hits, nothing re-analyzed.
    let (warm, _, hits1, re1) = report_sha(ws.path(), &cached);
    assert_eq!((hits1, re1), (files, 0), "warm run must be all hits");
    assert_eq!(warm, first, "cache must not change the report");

    // Edit one file; the warm run re-analyzes only that file (<20%)
    // and its report is byte-identical to an uncached cold run.
    let edited = ws.path().join("crates/tdcsoc/src/planfile.rs");
    let mut body = fs::read_to_string(&edited).unwrap();
    body.push_str("pub fn extra(v: &[u64]) -> usize {\n    v.len()\n}\n");
    fs::write(&edited, body).unwrap();

    let (warm2, files2, hits2, re2) = report_sha(ws.path(), &cached);
    assert_eq!(re2, 1, "exactly the edited file is re-analyzed");
    assert_eq!(hits2, files2 - 1);
    assert!(
        (re2 as f64) < 0.20 * files2 as f64,
        "warm run re-analyzed {re2}/{files2} files"
    );
    let (cold2, ..) = report_sha(ws.path(), &cold_opts);
    assert_eq!(warm2, cold2, "warm report must be sha-identical to cold");
}

#[test]
fn worker_count_never_changes_the_report() {
    // Run on the real shipped workspace: large enough that scheduling
    // differences would show if ordering leaked into the output.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let mut shas = Vec::new();
    for workers in [1usize, 2, 4] {
        let opts = LintOptions {
            workers,
            cache_dir: None,
        };
        let report = lint_workspace_report(root, &opts).expect("workspace walk");
        shas.push((workers, sha256_hex(to_json(&report.diags).as_bytes())));
    }
    assert_eq!(shas[0].1, shas[1].1, "workers=1 vs workers=2 differ");
    assert_eq!(shas[0].1, shas[2].1, "workers=1 vs workers=4 differ");
}

#[test]
fn rule_descriptions_cover_every_rule_exactly_once() {
    let ids: Vec<&str> = RULE_DESCRIPTIONS.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids, RULE_IDS, "descriptions must mirror RULE_IDS in order");
    for (id, desc) in RULE_DESCRIPTIONS {
        assert!(!desc.is_empty(), "rule {id} needs a description");
    }
    for rule in WORKSPACE_RULE_IDS {
        assert!(RULE_IDS.contains(rule), "workspace rule {rule} unknown");
    }
}

// --- CLI-level contracts (spawn the built binary) -----------------------

fn soclint_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_soclint"))
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

/// `--at` must mean the same scope set no matter which subdirectory the
/// linter runs from: the regression here was `crates/...` spellings
/// failing to normalize when invoked from inside `crates/`.
#[test]
fn at_scopes_identically_from_workspace_root_and_subdirectory() {
    let root = workspace_root();
    let fixture = root.join("crates/soclint/tests/fixtures/panic-path/fail.rs");
    assert!(fixture.is_file(), "fixture exists");
    let at = "crates/tdcsoc/src/planfile.rs";

    let run = |cwd: &Path| {
        let out = soclint_cmd()
            .current_dir(cwd)
            .args(["--root", root.to_str().unwrap(), "--format", "json", "--at"])
            .arg(at)
            .arg(&fixture)
            .output()
            .expect("spawn soclint");
        String::from_utf8(out.stdout).expect("utf8 json")
    };

    let from_root = run(&root);
    let from_crates = run(&root.join("crates"));
    assert_eq!(
        from_root, from_crates,
        "--at must normalize identically from any cwd"
    );
    assert!(
        from_root.contains("\"crates/tdcsoc/src/planfile.rs\""),
        "diagnostics must carry the workspace-relative path: {from_root}"
    );
    assert!(
        from_root.contains("panic-path"),
        "parser scope must apply under --at: {from_root}"
    );

    // An absolute --at spelling rebases onto the workspace root.
    let abs_at = root.join(at);
    let out = soclint_cmd()
        .current_dir(root.join("crates"))
        .args(["--root", root.to_str().unwrap(), "--format", "json", "--at"])
        .arg(abs_at.to_str().unwrap())
        .arg(&fixture)
        .output()
        .expect("spawn soclint");
    let abs_json = String::from_utf8(out.stdout).expect("utf8 json");
    assert_eq!(abs_json, from_root, "absolute --at must rebase to relative");
}

/// The stderr cache banner is a CI contract: cold run all misses, warm
/// run all hits, and exit code 0 on the shipped (clean) tree.
#[test]
fn cli_cache_banner_reports_cold_then_warm() {
    let root = workspace_root();
    let scratch = Scratch::new("clicache");
    let cache = scratch.path().join("cache");
    let run = || {
        let out = soclint_cmd()
            .current_dir(&root)
            .args(["--workspace", "--cache"])
            .arg(&cache)
            .output()
            .expect("spawn soclint");
        (
            out.status.code(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (code_cold, err_cold) = run();
    assert_eq!(code_cold, Some(0), "shipped tree lints clean: {err_cold}");
    assert!(
        err_cold.contains("hits=0"),
        "cold run starts from an empty cache: {err_cold}"
    );
    let (code_warm, err_warm) = run();
    assert_eq!(code_warm, Some(0));
    assert!(
        err_warm.contains("reanalyzed=0"),
        "warm run must be all hits: {err_warm}"
    );
}
