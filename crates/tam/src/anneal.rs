//! Simulated-annealing TAM architecture search — an alternative to the
//! deterministic hill-climber of [`optimize_architecture`] for design
//! spaces where the balanced starting points mislead greedy refinement.
//!
//! Moves: shift one wire between two TAMs, split a TAM into two, or merge
//! two TAMs. Acceptance follows the Metropolis rule on SOC test time; the
//! best architecture ever visited is returned. Fully deterministic for a
//! fixed seed.
//!
//! [`optimize_architecture`]: crate::optimize_architecture

use std::collections::HashMap;

use robust::CancelToken;
use soc_model::SplitMix64;

use crate::cost::CostModel;
use crate::greedy::greedy_schedule;
use crate::optimize::Architecture;
use crate::schedule::ScheduleError;
use crate::search::{Search, SearchStatus};

/// Options for [`anneal_architecture`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealOptions {
    /// Total proposal count (default 2000).
    pub iterations: u32,
    /// Initial temperature as a fraction of the starting makespan
    /// (default 0.05).
    pub initial_temp: f64,
    /// Geometric cooling factor per iteration (default 0.997).
    pub cooling: f64,
    /// RNG seed (the search is deterministic per seed).
    pub seed: u64,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            iterations: 2000,
            initial_temp: 0.05,
            cooling: 0.997,
            seed: 0x5EED,
        }
    }
}

/// Searches TAM partitions of `total_width` by simulated annealing.
///
/// # Errors
///
/// Returns [`ScheduleError`] when even a single TAM of the full budget
/// cannot host every core (same feasibility condition as the hill
/// climber).
pub fn anneal_architecture(
    cost: &CostModel,
    total_width: u32,
    opts: &AnnealOptions,
) -> Result<Architecture, ScheduleError> {
    anneal_architecture_with(cost, total_width, opts, None, &CancelToken::never())
        .map(|search| search.architecture)
}

/// Cancellable, warm-startable variant of [`anneal_architecture`].
///
/// `warm_start` seeds the walk with a known-good partition (e.g. the
/// incumbent of an earlier cascade stage) instead of the single-TAM
/// baseline; an infeasible warm start silently falls back to the
/// baseline. Polls `token` every iteration and returns the best
/// architecture visited so far with [`SearchStatus::Interrupted`] when it
/// trips.
///
/// # Errors
///
/// As [`anneal_architecture`] — the initial greedy schedule runs before
/// the first token check, so there is always an incumbent to return.
pub fn anneal_architecture_with(
    cost: &CostModel,
    total_width: u32,
    opts: &AnnealOptions,
    warm_start: Option<&[u32]>,
    token: &CancelToken,
) -> Result<Search, ScheduleError> {
    if total_width == 0 {
        return Err(ScheduleError::BadPartition {
            total_width,
            tams: 0,
        });
    }
    let mut widths = vec![total_width];
    if let Some(seed_widths) = warm_start {
        let feasible = !seed_widths.is_empty()
            && !seed_widths.contains(&0)
            && seed_widths.iter().sum::<u32>() == total_width
            && greedy_schedule(cost, seed_widths).is_ok();
        if feasible {
            widths = seed_widths.to_vec();
        }
    }
    let current = greedy_schedule(cost, &widths)?;
    let mut current_time = current.makespan();
    let mut best = Architecture {
        test_time: current_time,
        schedule: current,
    };

    let mut rng = SplitMix64::new(opts.seed);
    let mut temp = opts.initial_temp * current_time as f64;
    let max_tams = total_width.min(cost.core_count() as u32).max(1) as usize;

    // The walk revisits partitions constantly (a shift undone two moves
    // later lands on a seen key), so makespans are answered from a memo,
    // and on a miss by an allocation-free greedy sweep instead of
    // materializing a full Schedule. Only a new best pays for one.
    let mut eval = Evaluator::new(cost);
    eval.seed(&widths, Some(best.test_time));

    let mut status = SearchStatus::Complete;
    for _ in 0..opts.iterations {
        if token.is_cancelled() {
            status = SearchStatus::Interrupted;
            break;
        }
        let candidate = propose(&widths, max_tams, &mut rng);
        temp *= opts.cooling;
        let Some(candidate) = candidate else {
            continue;
        };
        let Some(time) = eval.makespan(&candidate) else {
            continue; // infeasible partition for some core
        };
        let accept = time <= current_time || {
            let delta = (time - current_time) as f64;
            temp > 0.0 && rng.next_f64() < (-delta / temp).exp()
        };
        if accept {
            widths = candidate;
            current_time = time;
            if current_time < best.test_time {
                best = Architecture {
                    test_time: current_time,
                    schedule: greedy_schedule(cost, &widths)
                        .expect("evaluator certified this partition feasible"),
                };
            }
        }
    }
    Ok(Search {
        architecture: best,
        status,
    })
}

/// Memoized makespan oracle for [`anneal_architecture_with`]: answers
/// "what would [`greedy_schedule`] produce for this partition?" without
/// building the schedule. `None` means the partition is infeasible.
///
/// The sweep mirrors [`schedule_in_order`](crate::schedule_in_order)
/// decision for decision (same ordering, same tie-breaks), so a makespan
/// reported here is exactly the one the materialized schedule has — the
/// anneal's accept/reject sequence, and therefore its RNG stream and its
/// result, are bit-identical to evaluating every candidate the slow way.
struct Evaluator<'a> {
    cost: &'a CostModel,
    memo: HashMap<Vec<u32>, Option<u64>>,
    /// Scratch: per-core sort keys (best time within the partition).
    keys: Vec<u64>,
    /// Scratch: core visit order, longest first.
    order: Vec<usize>,
    /// Scratch: per-TAM finish times.
    finish: Vec<u64>,
}

impl<'a> Evaluator<'a> {
    fn new(cost: &'a CostModel) -> Self {
        let n = cost.core_count();
        Evaluator {
            cost,
            memo: HashMap::new(),
            keys: vec![0; n],
            order: Vec::with_capacity(n),
            finish: Vec::new(),
        }
    }

    /// Pre-loads a known result (e.g. the warm-start schedule's makespan).
    fn seed(&mut self, widths: &[u32], makespan: Option<u64>) {
        self.memo.insert(widths.to_vec(), makespan);
    }

    /// The makespan [`greedy_schedule`] would produce for `widths`, or
    /// `None` when some core fits no TAM of the partition.
    fn makespan(&mut self, widths: &[u32]) -> Option<u64> {
        if let Some(&hit) = self.memo.get(widths) {
            return hit;
        }
        let result = self.sweep(widths);
        self.memo.insert(widths.to_vec(), result);
        result
    }

    fn sweep(&mut self, widths: &[u32]) -> Option<u64> {
        let cost = self.cost;
        // longest_first_order: each core judged at its best width available
        // in this partition, longest first, index as tie-break.
        for (i, key) in self.keys.iter_mut().enumerate() {
            *key = widths
                .iter()
                .filter_map(|&w| cost.time(i, w))
                .min()
                .unwrap_or(u64::MAX);
        }
        self.order.clear();
        self.order.extend(0..cost.core_count());
        let keys = &self.keys;
        self.order
            .sort_by(|&a, &b| keys[b].cmp(&keys[a]).then(a.cmp(&b)));

        // schedule_in_order, minus the schedule. Its candidate comparison
        // (least makespan increase, ties to the earlier finish, then the
        // lower TAM index) collapses to "first TAM with the strictly
        // smallest finish + duration": new_makespan = max(current,
        // new_finish) is monotone in new_finish, so the makespan-then-
        // finish lexicographic test accepts a candidate exactly when its
        // new_finish is strictly smaller than the incumbent's.
        self.finish.clear();
        self.finish.resize(widths.len(), 0);
        for &core in &self.order {
            let mut choice: Option<(usize, u64)> = None; // (tam, new_finish)
            for (j, &w) in widths.iter().enumerate() {
                let Some(d) = cost.time(core, w) else {
                    continue;
                };
                let new_finish = self.finish[j] + d;
                if choice.is_none_or(|(_, bf)| new_finish < bf) {
                    choice = Some((j, new_finish));
                }
            }
            let (tam, new_finish) = choice?;
            self.finish[tam] = new_finish;
        }
        Some(self.finish.iter().copied().max().unwrap_or(0))
    }
}

/// Proposes a neighbouring partition, or `None` when the move is a no-op.
fn propose(widths: &[u32], max_tams: usize, rng: &mut SplitMix64) -> Option<Vec<u32>> {
    let k = widths.len();
    let mut next = widths.to_vec();
    match rng.next_below(3) {
        // Move one wire from a donor to a receiver.
        0 if k >= 2 => {
            let donor = rng.next_below(k as u64) as usize;
            let recv = rng.next_below(k as u64) as usize;
            if donor == recv || next[donor] <= 1 {
                return None;
            }
            next[donor] -= 1;
            next[recv] += 1;
            Some(next)
        }
        // Split a TAM in two.
        1 if k < max_tams => {
            let idx = rng.next_below(k as u64) as usize;
            if next[idx] < 2 {
                return None;
            }
            let cut = 1 + rng.next_below(u64::from(next[idx] - 1)) as u32;
            let rest = next[idx] - cut;
            next[idx] = cut;
            next.push(rest);
            Some(next)
        }
        // Merge two TAMs.
        2 if k >= 2 => {
            let a = rng.next_below(k as u64) as usize;
            let mut b = rng.next_below(k as u64) as usize;
            if a == b {
                b = (b + 1) % k;
            }
            let (lo, hi) = (a.min(b), a.max(b));
            next[lo] += next[hi];
            next.swap_remove(hi);
            Some(next)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::{optimize_architecture, ArchitectureOptions};

    fn cost() -> CostModel {
        CostModel::from_fn(&["a", "b", "c", "d", "e"], 16, |i, w| {
            Some(40_000 * (i as u64 + 2) / u64::from(w) + 25)
        })
    }

    #[test]
    fn produces_valid_architectures() {
        let c = cost();
        let arch = anneal_architecture(&c, 12, &AnnealOptions::default()).unwrap();
        arch.schedule.validate(&c).unwrap();
        assert_eq!(arch.schedule.total_width(), 12);
        assert_eq!(arch.test_time, arch.schedule.makespan());
    }

    #[test]
    fn deterministic_per_seed() {
        let c = cost();
        let a = anneal_architecture(&c, 10, &AnnealOptions::default()).unwrap();
        let b = anneal_architecture(&c, 10, &AnnealOptions::default()).unwrap();
        assert_eq!(a, b);
        let other = anneal_architecture(
            &c,
            10,
            &AnnealOptions {
                seed: 99,
                ..Default::default()
            },
        )
        .unwrap();
        // Different seed may or may not find the same optimum, but must be
        // valid.
        other.schedule.validate(&c).unwrap();
    }

    #[test]
    fn never_worse_than_single_tam() {
        let c = cost();
        let single = greedy_schedule(&c, &[14]).unwrap().makespan();
        let arch = anneal_architecture(&c, 14, &AnnealOptions::default()).unwrap();
        assert!(arch.test_time <= single);
    }

    #[test]
    fn competitive_with_hill_climbing() {
        let c = cost();
        let hill = optimize_architecture(&c, 16, &ArchitectureOptions::default()).unwrap();
        let sa = anneal_architecture(&c, 16, &AnnealOptions::default()).unwrap();
        // Within 15% of the deterministic optimizer on this easy landscape.
        assert!(
            sa.test_time as f64 <= hill.test_time as f64 * 1.15,
            "SA {} vs hill {}",
            sa.test_time,
            hill.test_time
        );
    }

    #[test]
    fn respects_infeasible_widths() {
        let mut m = CostModel::new(8);
        m.push_core(
            "wide",
            vec![None, None, None, None, None, None, None, Some(100)],
        );
        m.push_core("any", vec![Some(80); 8]);
        // Splitting is never accepted (would orphan `wide`); result must
        // still be valid.
        let arch = anneal_architecture(&m, 8, &AnnealOptions::default()).unwrap();
        arch.schedule.validate(&m).unwrap();
        assert_eq!(arch.schedule.tam_widths(), &[8]);
    }

    #[test]
    fn cancelled_anneal_still_returns_valid_incumbent() {
        let c = cost();
        let token = CancelToken::expiring_in(std::time::Duration::ZERO);
        let search =
            anneal_architecture_with(&c, 12, &AnnealOptions::default(), None, &token).unwrap();
        assert_eq!(search.status, SearchStatus::Interrupted);
        search.architecture.schedule.validate(&c).unwrap();
    }

    #[test]
    fn warm_start_is_honored_and_never_worse() {
        let c = cost();
        let baseline = optimize_architecture(&c, 12, &ArchitectureOptions::default()).unwrap();
        let widths = baseline.schedule.tam_widths().to_vec();
        let token = CancelToken::never();
        let warm =
            anneal_architecture_with(&c, 12, &AnnealOptions::default(), Some(&widths), &token)
                .unwrap();
        assert!(warm.is_complete());
        warm.architecture.schedule.validate(&c).unwrap();
        // The walk starts at the warm partition; its best can only improve
        // on that starting point.
        assert!(warm.architecture.test_time <= baseline.test_time);
    }

    #[test]
    fn infeasible_warm_start_falls_back_to_baseline() {
        let c = cost();
        // Sums to the wrong total and contains a zero: both must be ignored.
        for bad in [vec![5u32, 5], vec![12, 0]] {
            let search = anneal_architecture_with(
                &c,
                12,
                &AnnealOptions::default(),
                Some(&bad),
                &CancelToken::never(),
            )
            .unwrap();
            search.architecture.schedule.validate(&c).unwrap();
        }
    }

    #[test]
    fn evaluator_matches_greedy_schedule_exactly() {
        // Mixed feasibility: `narrow` only below width 3, `wide` only at 4+.
        let mut m = CostModel::new(6);
        m.push_core(
            "a",
            vec![Some(90), Some(50), Some(40), Some(35), Some(31), Some(30)],
        );
        m.push_core("narrow", vec![Some(70), Some(44), None, None, None, None]);
        m.push_core("wide", vec![None, None, None, Some(25), Some(22), Some(20)]);
        m.push_core(
            "b",
            vec![Some(88), Some(51), Some(40), Some(33), Some(28), Some(26)],
        );
        let mut eval = Evaluator::new(&m);
        let partitions: [&[u32]; 9] = [
            &[6],
            &[3, 3],
            &[1, 5],
            &[2, 4],
            &[1, 1, 4],
            &[2, 2, 2],
            &[4, 2],
            &[5, 1],
            &[3, 3], // repeat: memo path must agree too
        ];
        for widths in partitions {
            let expect = greedy_schedule(&m, widths).ok().map(|s| s.makespan());
            assert_eq!(eval.makespan(widths), expect, "widths {widths:?}");
        }
        // `wide` fits nowhere in an all-narrow partition: infeasible, and
        // the memo caches the verdict.
        assert_eq!(eval.makespan(&[1, 1, 1, 1, 1, 1]), None);
        assert_eq!(eval.makespan(&[1, 1, 1, 1, 1, 1]), None);
    }

    #[test]
    fn zero_budget_rejected() {
        assert!(matches!(
            anneal_architecture(&cost(), 0, &AnnealOptions::default()),
            Err(ScheduleError::BadPartition { .. })
        ));
    }
}
